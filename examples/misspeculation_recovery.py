#!/usr/bin/env python3
"""Misspeculation and the section 4.3 recovery protocol in action.

Injects misspeculation into the 197.parser workload at increasing rates
and reports the cost: run time, the measured recovery-phase breakdown
(ERM / FLQ / SEQ), and the residual pipeline-refill (RFP) overhead —
the same decomposition as the paper's Figure 6.

Run:  python examples/misspeculation_recovery.py
"""

from repro import DSMTXSystem, SystemConfig
from repro.workloads import Parser

CORES = 32


def run_with_rate(rate: float):
    iterations = 1024
    if rate > 0:
        step = max(1, int(round(1.0 / rate)))
        injected = set(range(step - 1, iterations, step))
    else:
        injected = set()
    workload = Parser(iterations=iterations, misspec_iterations=injected)
    system = DSMTXSystem(workload.dsmtx_plan(), SystemConfig(total_cores=CORES))
    result = system.run()
    return system, result


def main() -> None:
    print(f"197.parser on {CORES} cores, with injected misspeculation")
    print()

    _clean_system, clean = run_with_rate(0.0)
    print(f"misspeculation-free run: {clean.elapsed_seconds * 1e3:.2f} ms")
    print()
    header = (f"{'rate':>6}  {'misspecs':>8}  {'time(ms)':>9}  {'slowdown':>8}  "
              f"{'ERM(us)':>8}  {'FLQ(us)':>8}  {'SEQ(us)':>8}  {'RFP(us)':>8}")
    print(header)
    for rate in (0.001, 0.005, 0.02):
        system, result = run_with_rate(rate)
        stats = system.stats
        overhead = result.elapsed_seconds - clean.elapsed_seconds
        accounted = stats.erm_seconds + stats.flq_seconds + stats.seq_seconds
        refill = max(0.0, overhead - accounted)
        print(f"{rate:>6.3f}  {stats.misspeculations:>8}  "
              f"{result.elapsed_seconds * 1e3:>9.2f}  "
              f"{result.elapsed_seconds / clean.elapsed_seconds:>7.2f}x  "
              f"{stats.erm_seconds * 1e6:>8.1f}  {stats.flq_seconds * 1e6:>8.1f}  "
              f"{stats.seq_seconds * 1e6:>8.1f}  {refill * 1e6:>8.1f}")

    print()
    print("RFP (refilling the pipeline after the squash) dominates, as in")
    print("Figure 6: DSMTX processes iterations in order, so everything")
    print("past the misspeculated MTX — including whole batches of queued")
    print("work — is discarded and re-executed.")


if __name__ == "__main__":
    main()
