#!/usr/bin/env python3
"""Scaling the commit unit's COA service with read replicas.

The paper notes (section 3.2) that the speculation-management units'
algorithms are parallelizable.  This example finds the bottleneck with
the built-in utilization report, then shards the hot spot — the commit
unit's Copy-On-Access service for read-only input data — across replica
units and shows the payoff on 197.parser, whose per-worker dictionary
copies are what caps its speedup (section 5.2).

Run:  python examples/scaling_the_commit_unit.py
"""

from repro import DSMTXSystem, SystemConfig
from repro.workloads import Parser

CORES = 96


def run(replicas):
    config = SystemConfig(total_cores=CORES, coa_replicas=replicas)
    workload = Parser()
    sequential = Parser().sequential_seconds(config)
    system = DSMTXSystem(workload.dsmtx_plan(), config)
    result = system.run()
    return system, sequential / result.elapsed_seconds


def main() -> None:
    print(f"197.parser on {CORES} cores: sharding the COA hot spot")
    print()

    system, speedup = run(replicas=0)
    print(f"baseline: {speedup:.1f}x speedup")
    usage = system.stage_utilization()
    for unit, fraction in usage.items():
        bar = "#" * int(40 * fraction)
        print(f"  {unit:<12} {fraction * 100:5.1f}%  {bar}")
    print(f"  COA pages served by the commit unit: "
          f"{system.stats.coa_pages_served}")
    print()
    print("Every worker's first touch of the dictionary pulls 4 KiB pages")
    print("through the commit unit's NIC - the classic single-server choke.")
    print()

    for replicas in (2, 4):
        system, speedup = run(replicas)
        hits = sum(r.hits for r in system.coa_replicas)
        misses = sum(r.misses for r in system.coa_replicas)
        print(f"with {replicas} COA replicas: {speedup:.1f}x "
              f"(replica cache: {hits} hits, {misses} cold fetches; "
              f"{replicas} cores taken from the worker budget)")
    print()
    print("Replicas serve only pages declared read-only at allocation, so")
    print("their caches can never go stale - no invalidation protocol, and")
    print("the speedup is free of correctness risk.")


if __name__ == "__main__":
    main()
