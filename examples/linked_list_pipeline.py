#!/usr/bin/env python3
"""Parallelize the paper's running example end to end.

Figure 1(a) of the paper:

    A: while(node) {
    B:     node = node->next;
    C:     res = work(node);     // "work" may modify the list
    D:     write(res);
       }

This example walks the whole tool chain on that loop:

1. build its Program Dependence Graph and inspect the recurrences;
2. speculate the rarely-manifesting dependences away (Figure 1(b)'s
   X-marked edges) and let the DSWP partitioner carve pipeline stages;
3. compare DOACROSS and DSWP latency tolerance (Figure 1(c,d));
4. define the loop as a Workload — a linked-list traversal over real
   simulated memory — and execute it speculatively on the DSMTX runtime,
   checking the committed result against sequential execution.

Run:  python examples/linked_list_pipeline.py
"""

from repro import DSMTXSystem, PipelineConfig, SystemConfig
from repro.paradigms import (
    doacross_schedule,
    dswp_partition,
    dswp_schedule,
    example_list_loop,
)
from repro.workloads import ParallelPlan, Workload


class LinkedListWork(Workload):
    """The Figure 1(a) loop: traverse a list, work on each node, write.

    The list lives in simulated memory as (value, next-pointer) pairs;
    ``work`` is speculated not to modify it, so traversal (stage 0,
    sequential — it carries the recurrence) decouples from the work
    (stage 1, DOALL) and the output writes (stage 2, sequential).
    """

    name = "linked-list"
    suite = "examples"
    description = "Figure 1(a) list traversal"
    paradigm = "Spec-DSWP+[S,DOALL,S]"
    speculation = ("CFS", "MV")

    work_cycles = 120_000

    def build(self, uva, owner, store):
        self.nodes_base = uva.malloc_page_aligned(owner, self.iterations * 16)
        self.out_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        for i in range(self.iterations):
            store.write(self.nodes_base + 16 * i, 5 * i + 2)  # node->value
            next_address = self.nodes_base + 16 * (i + 1) if i + 1 < self.iterations else 0
            store.write(self.nodes_base + 16 * i + 8, next_address)  # node->next

    def _work(self, value):
        return (value * value + 1) % 1_000_003

    def sequential_body(self, ctx):
        i = ctx.iteration
        value = yield from ctx.load(self.nodes_base + 16 * i)  # B: follow node
        ctx.compute(self.work_cycles)  # C: work(node)
        result = self._work(value)
        yield from ctx.store(self.out_base + 8 * i, result)  # D: write(res)

    # Stage 0 (sequential): the traversal recurrence {A, B}.
    def _stage0(self, ctx):
        i = ctx.iteration
        # Control speculation: the loop is predicted to keep iterating.
        ctx.speculate(not self.injected_misspec(i), "unexpected list end")
        value = yield from ctx.load(self.nodes_base + 16 * i)
        next_ptr = yield from ctx.load(self.nodes_base + 16 * i + 8)
        assert (next_ptr == 0) == (i == self.iterations - 1)
        yield from ctx.produce("node", value)

    # Stage 1 (DOALL): work() on each node, list speculated unmodified.
    def _stage1(self, ctx):
        value = ctx.consume("node")
        ctx.compute(self.work_cycles)
        yield from ctx.produce("res", self._work(value))

    # Stage 2 (sequential): ordered writes of the results.
    def _stage2(self, ctx):
        result = ctx.consume("res")
        yield from ctx.store(self.out_base + 8 * ctx.iteration, result, forward=False)

    def dsmtx_plan(self):
        return ParallelPlan(
            self, "dsmtx", PipelineConfig.from_kinds(["S", "DOALL", "S"]),
            [self._stage0, self._stage1, self._stage2],
            label="Spec-DSWP+[S,DOALL,S]",
        )

    def tls_plan(self):
        raise NotImplementedError("this example only runs the Spec-DSWP plan")


def main() -> None:
    print("=== 1. The PDG of Figure 1(a) ===")
    pdg = example_list_loop()
    print(f"statements: {pdg.statements}")
    print(f"loop-carried dependences: "
          f"{[(d.src, d.dst) for d in pdg.loop_carried()]}")
    print(f"recurrences before speculation: {[sorted(r) for r in pdg.recurrences()]}")

    print()
    print("=== 2. Speculate and partition ===")
    speculated = pdg.speculate()
    print(f"recurrences after speculation:  "
          f"{[sorted(r) for r in speculated.recurrences()]}")
    stages = dswp_partition(speculated, max_stages=3)
    print(f"DSWP stages: {[s.describe() for s in stages]}")

    print()
    print("=== 3. Figure 1(c,d): latency tolerance ===")
    print(f"{'latency':>8}  {'DOACROSS cyc/iter':>18}  {'DSWP cyc/iter':>14}")
    for latency in (1.0, 2.0, 4.0):
        da = doacross_schedule(speculated, cores=2, iterations=200, latency=latency)
        ds, _ = dswp_schedule(speculated, cores=2, iterations=200, latency=latency)
        print(f"{latency:>8.0f}  {da.cycles_per_iteration:>18.2f}  "
              f"{ds.cycles_per_iteration:>14.2f}")

    print()
    print("=== 4. Execute on the DSMTX runtime ===")
    config = SystemConfig(total_cores=16)
    workload = LinkedListWork(iterations=400)
    sequential = workload.sequential_seconds(config)
    system = DSMTXSystem(workload.dsmtx_plan(), config)
    result = system.run()
    print(f"iterations committed: {result.iterations}")
    print(f"sequential {sequential * 1e3:.2f} ms -> parallel "
          f"{result.elapsed_seconds * 1e3:.2f} ms "
          f"({sequential / result.elapsed_seconds:.1f}x on 16 cores)")

    # Verify the committed output against direct computation.
    errors = 0
    for i in range(workload.iterations):
        expected = ((5 * i + 2) ** 2 + 1) % 1_000_003
        if system.commit.master.read(workload.out_base + 8 * i) != expected:
            errors += 1
    print(f"output check: {'OK' if errors == 0 else f'{errors} mismatches'}")


if __name__ == "__main__":
    main()
