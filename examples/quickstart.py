#!/usr/bin/env python3
"""Quickstart: run one benchmark on the simulated cluster.

Prices a PARSEC blackscholes-style workload under DSMTX's
DSWP+[Spec-DOALL,S] parallelization at several core counts and prints
the speedup over sequential execution — one line of Figure 4(i).

Run:  python examples/quickstart.py
"""

from repro import DSMTXSystem, SystemConfig
from repro.workloads import BlackScholes


def main() -> None:
    print("DSMTX quickstart: blackscholes on a simulated 32-node cluster")
    print()

    config = SystemConfig(total_cores=8)
    sequential_seconds = BlackScholes().sequential_seconds(config)
    print(f"sequential execution: {sequential_seconds * 1e3:8.2f} ms (simulated)")
    print()
    print(f"{'cores':>6}  {'parallel (ms)':>14}  {'speedup':>8}")

    for cores in (4, 8, 16, 32, 64, 128):
        workload = BlackScholes()
        system = DSMTXSystem(workload.dsmtx_plan(), config.with_cores(cores))
        result = system.run()
        speedup = sequential_seconds / result.elapsed_seconds
        print(f"{cores:>6}  {result.elapsed_seconds * 1e3:>14.2f}  {speedup:>7.1f}x")

    print()
    print("The parallel stage prices options speculatively in private")
    print("memories; the try-commit unit validates each MTX and the commit")
    print("unit group-commits them in order — all off the critical path.")


if __name__ == "__main__":
    main()
