#!/usr/bin/env python3
"""Cluster compression pipeline: Spec-DSWP vs TLS, with bandwidth.

Runs the 164.gzip workload model — read block / compress in parallel /
write block — under both parallelization schemes and reports speedups
and the communication profile.  gzip is the paper's bandwidth-hungriest
benchmark (Figure 5(a)); its speedup plateaus when the reader stage's
NIC saturates, no matter how many compressor cores are added.

Run:  python examples/compression_cluster.py
"""

from repro import DSMTXSystem, SystemConfig
from repro.analysis import render_series
from repro.baselines import compare_schemes
from repro.workloads import Gzip


def main() -> None:
    config = SystemConfig(total_cores=8)
    print("gzip-style compression pipeline: Spec-DSWP+[S,DOALL,S] vs TLS")
    print()

    series = {"Spec-DSWP": {}, "TLS": {}}
    for cores in (8, 16, 32, 64, 128):
        comparison = compare_schemes(Gzip, config.with_cores(cores))
        series["Spec-DSWP"][cores] = comparison["dsmtx"]
        series["TLS"][cores] = comparison["tls"]
    print(render_series(series, title="164.gzip full-application speedup"))

    print()
    print("Communication profile at 32 cores (Spec-DSWP):")
    workload = Gzip()
    system = DSMTXSystem(workload.dsmtx_plan(), config.with_cores(32))
    result = system.run()
    stats = system.stats
    print(f"  run time:            {result.elapsed_seconds * 1e3:10.2f} ms")
    print(f"  data through DSMTX:  {stats.queue_bytes / 1e6:10.2f} MB")
    print(f"  bandwidth:           {stats.bandwidth_bps() / 1e6:10.2f} MBps")
    for purpose, nbytes in sorted(stats.queue_bytes_by_purpose.items()):
        print(f"    {purpose:<10} {nbytes / 1e6:10.2f} MB")
    print(f"  queue batches sent:  {stats.queue_batches:10d}")
    print(f"  COA pages served:    {stats.coa_pages_served:10d}")
    print()
    print("The block stream dominates: each iteration pushes the whole")
    print("uncompressed block through the pipeline queue, so the reader")
    print("node's NIC caps the pipeline rate — the Figure 4(c) plateau.")


if __name__ == "__main__":
    main()
