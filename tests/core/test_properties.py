"""Property-based tests of the runtime's core guarantee.

Whatever the pipeline shape, core count, batch size, or injected
misspeculation set, the committed master memory after a parallel run
must equal the sequential execution's memory — speculation may only
change *when* things happen, never *what* is computed.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DSMTXSystem, PipelineConfig, SystemConfig
from repro.workloads import ParallelPlan, Workload
from repro.workloads.common import mix


class RandomChain(Workload):
    """A small pipelined workload with a loop-carried accumulator and
    per-iteration outputs, parameterized by a seed."""

    name = "random-chain"
    suite = "tests"
    description = "property-test kernel"
    paradigm = "Spec-DSWP+[S,DOALL,S]"
    speculation = ("CFS",)

    def __init__(self, iterations, seed, misspec_iterations=None):
        super().__init__(iterations, misspec_iterations)
        self.seed = seed

    def build(self, uva, owner, store):
        self.values_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        self.out_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        self.acc_addr = uva.malloc(owner, 8)
        store.write(self.acc_addr, self.seed % 1009)
        for i in range(self.iterations):
            store.write(self.values_base + 8 * i, int(mix(i, self.seed) * 4096))

    def _transform(self, value, i):
        return (value * 37 + i * self.seed) % 104729

    def sequential_body(self, ctx):
        i = ctx.iteration
        value = yield from ctx.load(self.values_base + 8 * i)
        ctx.compute(2_000)
        result = self._transform(value, i)
        yield from ctx.store(self.out_base + 8 * i, result)
        acc = yield from ctx.load(self.acc_addr)
        yield from ctx.store(self.acc_addr, (acc + result) % 999983)

    def _stage0(self, ctx):
        i = ctx.iteration
        value = yield from ctx.load(self.values_base + 8 * i)
        ctx.speculate(not self.injected_misspec(i), "injected")
        yield from ctx.produce("v", value)

    def _stage1(self, ctx):
        value = ctx.consume("v")
        ctx.compute(2_000)
        yield from ctx.produce("r", self._transform(value, ctx.iteration), to_stage=2)

    def _stage2(self, ctx):
        result = ctx.consume("r")
        yield from ctx.store(self.out_base + 8 * ctx.iteration, result, forward=False)
        acc = yield from ctx.load(self.acc_addr)
        yield from ctx.store(self.acc_addr, (acc + result) % 999983, forward=False)

    def dsmtx_plan(self):
        return ParallelPlan(
            self, "dsmtx", PipelineConfig.from_kinds(["S", "DOALL", "S"]),
            [self._stage0, self._stage1, self._stage2],
            label="Spec-DSWP+[S,DOALL,S]",
        )

    def tls_plan(self):
        raise NotImplementedError


def sequential_reference(iterations, seed):
    acc = seed % 1009
    outputs = []
    for i in range(iterations):
        result = (int(mix(i, seed) * 4096) * 37 + i * seed) % 104729
        outputs.append(result)
        acc = (acc + result) % 999983
    return outputs, acc


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    iterations=st.integers(min_value=3, max_value=24),
    seed=st.integers(min_value=1, max_value=10_000),
    cores=st.sampled_from([5, 6, 8, 12]),
    misspec=st.sets(st.integers(min_value=0, max_value=23), max_size=3),
)
def test_parallel_equals_sequential(iterations, seed, cores, misspec):
    misspec = {m for m in misspec if m < iterations}
    workload = RandomChain(iterations, seed, misspec_iterations=misspec)
    system = DSMTXSystem(workload.dsmtx_plan(), SystemConfig(total_cores=cores))
    result = system.run()
    outputs, acc = sequential_reference(iterations, seed)
    assert result.iterations == iterations
    assert system.stats.misspeculations == len(misspec)
    master = system.commit.master
    for i, expected in enumerate(outputs):
        assert master.read(workload.out_base + 8 * i) == expected
    assert master.read(workload.acc_addr) == acc


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    batch_bytes=st.sampled_from([16, 64, 1024, 8192]),
    inflight=st.integers(min_value=1, max_value=4),
)
def test_invariant_under_queue_tunables(batch_bytes, inflight):
    workload = RandomChain(12, seed=7, misspec_iterations={5})
    config = SystemConfig(total_cores=6, batch_bytes=batch_bytes,
                          max_inflight_batches=inflight)
    system = DSMTXSystem(workload.dsmtx_plan(), config)
    system.run()
    outputs, acc = sequential_reference(12, 7)
    master = system.commit.master
    assert master.read(workload.acc_addr) == acc
    for i, expected in enumerate(outputs):
        assert master.read(workload.out_base + 8 * i) == expected


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(placement=st.sampled_from(["pack", "spread"]),
       direct=st.booleans())
def test_invariant_under_placement_and_channel_mode(placement, direct):
    workload = RandomChain(10, seed=3)
    config = SystemConfig(
        total_cores=8, placement=placement,
        channel_mode="direct" if direct else "batched",
    )
    system = DSMTXSystem(workload.dsmtx_plan(), config)
    system.run()
    outputs, acc = sequential_reference(10, 3)
    assert system.commit.master.read(workload.acc_addr) == acc
