"""Toy workloads used by the core runtime tests."""

from repro.core.config import PipelineConfig
from repro.workloads.base import ParallelPlan, Workload


class ToyPipeline(Workload):
    """A minimal [S, DOALL, S] pipeline.

    Stage 0 reads the input element, stage 1 squares it (the parallel
    stage), stage 2 accumulates the running sum — a miniature of the
    compress-style benchmarks.
    """

    name = "toy"
    suite = "tests"
    description = "square-and-sum pipeline"
    paradigm = "Spec-DSWP+[S,DOALL,S]"
    speculation = ("MV",)

    def __init__(self, iterations=20, work_cycles=2000, misspec_iterations=None):
        super().__init__(iterations, misspec_iterations)
        self.work_cycles = work_cycles

    def build(self, uva, owner, store):
        self.input_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        self.result_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        self.sum_addr = uva.malloc(owner, 8)
        store.write_array(self.input_base, [3 * i + 1 for i in range(self.iterations)])
        store.write(self.sum_addr, 0)

    # -- sequential semantics -------------------------------------------------------

    def sequential_body(self, ctx):
        i = ctx.iteration
        x = yield from ctx.load(self.input_base + 8 * i)
        ctx.compute(self.work_cycles)
        y = x * x
        yield from ctx.store(self.result_base + 8 * i, y)
        total = yield from ctx.load(self.sum_addr)
        yield from ctx.store(self.sum_addr, total + y)

    # -- Spec-DSWP plan ----------------------------------------------------------------

    def _stage0(self, ctx):
        i = ctx.iteration
        self_ = self
        x = yield from ctx.load(self_.input_base + 8 * i)
        ctx.speculate(not self_.injected_misspec(i), "injected")
        yield from ctx.produce("x", x)

    def _stage1(self, ctx):
        x = ctx.consume("x")
        ctx.compute(self.work_cycles)
        y = x * x
        yield from ctx.store(self.result_base + 8 * ctx.iteration, y, forward=(2,))

    def _stage2(self, ctx):
        i = ctx.iteration
        y = yield from ctx.load(self.result_base + 8 * i)
        total = yield from ctx.load(self.sum_addr)
        yield from ctx.store(self.sum_addr, total + y, forward=False)

    def dsmtx_plan(self):
        return ParallelPlan(
            self,
            scheme="dsmtx",
            pipeline=PipelineConfig.from_kinds(["S", "DOALL", "S"]),
            stage_bodies=[self._stage0, self._stage1, self._stage2],
            label="Spec-DSWP+[S,DOALL,S]",
        )

    # -- TLS plan -------------------------------------------------------------------------

    def _tls_body(self, ctx):
        i = ctx.iteration
        x = yield from ctx.load(self.input_base + 8 * i)
        ctx.speculate(not self.injected_misspec(i), "injected")
        ctx.compute(self.work_cycles)
        y = x * x
        yield from ctx.store(self.result_base + 8 * i, y, forward=False)
        prev = yield from ctx.sync_recv("sum")
        if prev is None:
            prev = yield from ctx.load(self.sum_addr)
        total = prev + y
        yield from ctx.store(self.sum_addr, total, forward=False)
        yield from ctx.sync_send("sum", total)

    def tls_plan(self):
        return ParallelPlan(
            self,
            scheme="tls",
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[self._tls_body],
            label="TLS",
        )


class ToyDoall(Workload):
    """A pure Spec-DOALL loop: independent element-wise computation."""

    name = "toy-doall"
    suite = "tests"
    description = "independent element-wise kernel"
    paradigm = "Spec-DOALL"
    speculation = ("CFS",)

    def __init__(self, iterations=32, work_cycles=5000, misspec_iterations=None):
        super().__init__(iterations, misspec_iterations)
        self.work_cycles = work_cycles

    def build(self, uva, owner, store):
        self.data_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        self.out_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        store.write_array(self.data_base, [i + 1 for i in range(self.iterations)])

    def sequential_body(self, ctx):
        i = ctx.iteration
        x = yield from ctx.load(self.data_base + 8 * i)
        ctx.compute(self.work_cycles)
        yield from ctx.store(self.out_base + 8 * i, 2 * x + 1)

    def _body(self, ctx):
        i = ctx.iteration
        x = yield from ctx.load(self.data_base + 8 * i)
        ctx.speculate(not self.injected_misspec(i), "injected error condition")
        ctx.compute(self.work_cycles)
        yield from ctx.store(self.out_base + 8 * i, 2 * x + 1, forward=False)

    def dsmtx_plan(self):
        return ParallelPlan(
            self,
            scheme="dsmtx",
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[self._body],
            label="Spec-DOALL",
        )

    def tls_plan(self):
        return ParallelPlan(
            self,
            scheme="tls",
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[self._body],
            label="TLS",
        )
