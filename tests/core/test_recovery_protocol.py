"""Integration tests for the misspeculation recovery protocol.

These exercise the drain -> ERM -> FLQ -> SEQ -> resume sequence of
section 4.3 under varied conditions: different pipeline shapes, core
counts, misspeculation positions, densities, and channel modes.
"""

import pytest

from repro.core import DSMTXSystem, SystemConfig
from tests.core.toys import ToyDoall, ToyPipeline


def run(workload, plan="dsmtx", cores=6, **config_kwargs):
    chosen = workload.dsmtx_plan() if plan == "dsmtx" else workload.tls_plan()
    system = DSMTXSystem(chosen, SystemConfig(total_cores=cores, **config_kwargs))
    result = system.run()
    return system, result


def expected_sum(n):
    return sum((3 * i + 1) ** 2 for i in range(n))


def test_seq_reexecutes_only_the_aborted_iteration():
    # The drain commits everything earlier, so SEQ handles exactly one
    # iteration — the paper's protocol.
    workload = ToyDoall(iterations=64, misspec_iterations={40})
    system, _result = run(workload, cores=8)
    record = system.stats.recoveries[0]
    assert record.reexecuted_iterations == 1
    assert record.misspec_iteration == 40


def test_misspec_at_first_iteration():
    workload = ToyPipeline(iterations=16, misspec_iterations={0})
    system, result = run(workload)
    assert system.stats.misspeculations == 1
    assert result.iterations == 16
    assert system.commit.master.read(workload.sum_addr) == expected_sum(16)


def test_misspec_at_last_iteration():
    workload = ToyPipeline(iterations=16, misspec_iterations={15})
    system, result = run(workload)
    assert system.stats.misspeculations == 1
    assert system.commit.master.read(workload.sum_addr) == expected_sum(16)


def test_adjacent_misspecs():
    workload = ToyPipeline(iterations=24, misspec_iterations={10, 11})
    system, _result = run(workload)
    assert system.stats.misspeculations == 2
    assert system.commit.master.read(workload.sum_addr) == expected_sum(24)


def test_last_iteration_misspec_after_prior_recovery():
    # Found by a scenario campaign sweep: with a two-stage pipeline at
    # 8 cores, a worker-detected misspeculation on the *final*
    # iteration following an earlier recovery used to deadlock.  The
    # reporting worker never sends the aborted iteration's access log,
    # and the try-commit unit — racing ahead of the misspec notice —
    # blocked consuming it with the VALIDATED notices for the earlier
    # iterations still batched, so the drain could never finish.  The
    # commit unit now pings the try-commit unit when a drain begins,
    # and a doomed consume aborts after flushing.
    from repro.workloads import BlackScholes

    workload = BlackScholes(iterations=12, misspec_iterations={5, 11})
    system, _result = run(workload, cores=8)
    assert system.stats.misspeculations == 2
    assert system.stats.committed_mtxs == 12


def test_dense_misspecs():
    workload = ToyDoall(iterations=40, misspec_iterations=set(range(5, 40, 5)))
    system, result = run(workload, cores=8)
    assert system.stats.misspeculations == 7
    assert result.iterations == 40
    master = system.commit.master
    for i in range(40):
        assert master.read(workload.out_base + 8 * i) == 2 * (i + 1) + 1


def test_recovery_in_tls_plan():
    workload = ToyPipeline(iterations=24, misspec_iterations={9})
    system, _result = run(workload, plan="tls")
    assert system.stats.misspeculations == 1
    assert system.commit.master.read(workload.sum_addr) == expected_sum(24)


def test_recovery_at_higher_core_counts():
    for cores in (12, 32, 64):
        workload = ToyDoall(iterations=96, misspec_iterations={50})
        system, result = run(workload, cores=cores)
        assert system.stats.misspeculations == 1
        assert result.iterations == 96


def test_recovery_with_direct_channel_mode():
    workload = ToyPipeline(iterations=16, misspec_iterations={6})
    system, _result = run(workload, channel_mode="direct")
    assert system.stats.misspeculations == 1
    assert system.commit.master.read(workload.sum_addr) == expected_sum(16)


def test_recovery_with_tiny_batches():
    workload = ToyPipeline(iterations=16, misspec_iterations={6})
    system, _result = run(workload, batch_bytes=16)
    assert system.commit.master.read(workload.sum_addr) == expected_sum(16)


def test_recovery_with_single_credit():
    workload = ToyPipeline(iterations=16, misspec_iterations={6})
    system, _result = run(workload, max_inflight_batches=1)
    assert system.commit.master.read(workload.sum_addr) == expected_sum(16)


def test_epoch_advances_per_recovery():
    workload = ToyDoall(iterations=40, misspec_iterations={10, 25})
    system, _result = run(workload, cores=8)
    assert system.state.epoch == 2
    assert system.state.restart_base == 26


def test_recovery_timing_is_accounted():
    workload = ToyDoall(iterations=48, misspec_iterations={20})
    system, _result = run(workload, cores=8)
    record = system.stats.recoveries[0]
    assert record.erm_seconds >= 0
    assert record.flq_seconds > 0
    assert record.seq_seconds > 0
    assert record.accounted_seconds < 1.0  # sane magnitudes (seconds)


def test_misspec_costs_time():
    clean_system, clean = run(ToyDoall(iterations=64, work_cycles=50_000), cores=8)
    dirty_system, dirty = run(
        ToyDoall(iterations=64, work_cycles=50_000, misspec_iterations={32}), cores=8
    )
    assert dirty.elapsed_seconds > clean.elapsed_seconds


def test_word_granular_coa_survives_recovery():
    workload = ToyDoall(iterations=32, misspec_iterations={12})
    system, result = run(workload, cores=8, coa_page_granularity=False)
    assert result.iterations == 32
    master = system.commit.master
    for i in range(32):
        assert master.read(workload.out_base + 8 * i) == 2 * (i + 1) + 1
    assert system.stats.coa_words_served > 0
    assert system.stats.coa_pages_served == 0
