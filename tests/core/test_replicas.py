"""Tests for the COA read-replica extension."""

import pytest

from repro.core import DSMTXSystem, PipelineConfig, SystemConfig
from repro.errors import RecoveryError
from repro.memory import PAGE_BYTES, UnifiedVirtualAddressSpace
from repro.workloads import ParallelPlan, Workload
from repro.workloads.common import touch_pages
from tests.core.toys import ToyDoall


class SharedTableScan(Workload):
    """Every iteration reads from a shared read-only table."""

    name = "shared-scan"
    suite = "tests"
    description = "read-only table scan"
    paradigm = "Spec-DOALL"
    speculation = ()

    table_pages = 6

    def __init__(self, iterations=48, misspec_iterations=None,
                 table_read_only=True):
        super().__init__(iterations, misspec_iterations)
        self.table_read_only = table_read_only

    def build(self, uva, owner, store):
        self.table_base = uva.malloc_page_aligned(
            owner, self.table_pages * PAGE_BYTES, read_only=self.table_read_only)
        self.out_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        for page in range(self.table_pages):
            store.write(self.table_base + page * PAGE_BYTES, 10 + page)

    def sequential_body(self, ctx):
        i = ctx.iteration
        value = yield from touch_pages(ctx, self.table_base, [i % self.table_pages])
        ctx.compute(20_000)
        yield from ctx.store(self.out_base + 8 * i, value * 3, forward=False)

    def _body(self, ctx):
        i = ctx.iteration
        ctx.speculate(not self.injected_misspec(i), "injected")
        value = yield from touch_pages(ctx, self.table_base, [i % self.table_pages])
        ctx.compute(20_000)
        yield from ctx.store(self.out_base + 8 * i, value * 3, forward=False)

    def dsmtx_plan(self):
        return ParallelPlan(self, "dsmtx", PipelineConfig.from_kinds(["DOALL"]),
                            [self._body], label="Spec-DOALL")

    def tls_plan(self):
        return self.dsmtx_plan()


def run(workload, replicas, cores=10, **kwargs):
    config = SystemConfig(total_cores=cores, coa_replicas=replicas, **kwargs)
    system = DSMTXSystem(workload.dsmtx_plan(), config)
    result = system.run()
    return system, result


def check_output(system, workload):
    for i in range(workload.iterations):
        expected = (10 + i % workload.table_pages) * 3
        assert system.commit.master.read(workload.out_base + 8 * i) == expected


def test_replicas_serve_read_only_pages():
    workload = SharedTableScan()
    system, result = run(workload, replicas=2)
    assert result.iterations == workload.iterations
    check_output(system, workload)
    served = sum(r.hits + r.misses for r in system.coa_replicas)
    assert served > 0
    # Each replica fetched each table page at most once.
    assert sum(r.misses for r in system.coa_replicas) <= 2 * workload.table_pages


def test_without_read_only_marking_commit_serves_everything():
    workload = SharedTableScan(table_read_only=False)
    system, _result = run(workload, replicas=2)
    check_output(system, workload)
    assert sum(r.hits + r.misses for r in system.coa_replicas) == 0


def test_replica_units_consume_worker_budget():
    workload = SharedTableScan()
    with_replicas, _ = run(workload, replicas=2, cores=10)
    without, _ = run(SharedTableScan(), replicas=0, cores=10)
    assert len(with_replicas.workers) == len(without.workers) - 2


def test_replicas_survive_recovery():
    workload = SharedTableScan(misspec_iterations={20})
    system, result = run(workload, replicas=2)
    assert system.stats.misspeculations == 1
    assert result.iterations == workload.iterations
    check_output(system, workload)


def test_mutable_pages_still_go_to_commit():
    # ToyDoall declares nothing read-only; with replicas configured the
    # run must still be correct and served entirely by the commit unit.
    workload = ToyDoall(iterations=24)
    config = SystemConfig(total_cores=8, coa_replicas=1)
    system = DSMTXSystem(workload.dsmtx_plan(), config)
    system.run()
    assert sum(r.hits + r.misses for r in system.coa_replicas) == 0
    for i in range(24):
        assert system.commit.master.read(workload.out_base + 8 * i) == 2 * (i + 1) + 1


def test_commit_to_read_only_page_is_rejected():
    class Buggy(SharedTableScan):
        def _body(self, ctx):
            yield from ctx.store(self.table_base, 999, forward=False)

        def dsmtx_plan(self):
            return ParallelPlan(self, "dsmtx", PipelineConfig.from_kinds(["DOALL"]),
                                [self._body], label="Spec-DOALL")

    workload = Buggy(iterations=4)
    config = SystemConfig(total_cores=8, coa_replicas=1)
    system = DSMTXSystem(workload.dsmtx_plan(), config)
    with pytest.raises(RecoveryError, match="read-only"):
        system.run()


def test_uva_read_only_tracking():
    uva = UnifiedVirtualAddressSpace(owners=1)
    ro = uva.malloc_page_aligned(0, 2 * PAGE_BYTES, read_only=True)
    rw = uva.malloc_page_aligned(0, PAGE_BYTES)
    assert uva.page_is_read_only(ro // PAGE_BYTES)
    assert uva.page_is_read_only(ro // PAGE_BYTES + 1)
    assert not uva.page_is_read_only(rw // PAGE_BYTES)
