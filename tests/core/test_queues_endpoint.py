"""Unit tests for RuntimeQueue and Endpoint internals."""

import pytest

from repro.core import DSMTXSystem, SystemConfig
from repro.core.messages import (
    DATA,
    WRITE,
    BatchEnvelope,
    ControlEnvelope,
    END_SUBTX,
    entry_bytes,
)
from tests.core.toys import ToyDoall


def make_system(**config_kwargs):
    workload = ToyDoall(iterations=8)
    config = SystemConfig(total_cores=6, **config_kwargs)
    return DSMTXSystem(workload.dsmtx_plan(), config)


# ---------------------------------------------------------------------------
# entry_bytes
# ---------------------------------------------------------------------------


def test_entry_bytes_defaults():
    assert entry_bytes((WRITE, 0, 1)) == 16
    assert entry_bytes(("R", 0, 1)) == 16
    assert entry_bytes((END_SUBTX, 3, 0)) == 8
    assert entry_bytes((DATA, "label", 42)) == 16


def test_entry_bytes_bulk_write():
    assert entry_bytes((WRITE, 0, 1, 4096)) == 4096


# ---------------------------------------------------------------------------
# RuntimeQueue
# ---------------------------------------------------------------------------


def test_queue_created_lazily_and_cached():
    system = make_system()
    queue_a = system.forward_queue(0, 1)
    queue_b = system.forward_queue(0, 1)
    assert queue_a is queue_b
    assert system.queue_by_name(queue_a.name) is queue_a


def test_queue_batches_by_bytes():
    system = make_system(batch_bytes=64)
    queue = system.forward_queue(0, 1)
    sent = []

    def producer():
        for i in range(8):  # 8 x 16B = 2 batches of 64B
            yield from queue.produce((WRITE, 8 * i, i))
        sent.append(queue.batches_sent)

    system.env.process(producer())
    system.env.run()
    assert sent == [2]


def test_queue_flush_pending_empties_buffer():
    system = make_system()
    queue = system.forward_queue(0, 1)

    def producer():
        yield from queue.produce((WRITE, 0, 1))
        assert queue._buffer
        yield from queue.flush_pending()
        assert not queue._buffer

    system.env.process(producer())
    system.env.run()
    assert queue.batches_sent == 1


def test_queue_credits_bound_inflight():
    system = make_system(batch_bytes=16, max_inflight_batches=2)
    queue = system.forward_queue(0, 1)
    progress = []

    def producer():
        for i in range(5):
            yield from queue.produce((WRITE, 8 * i, i))
            progress.append(i)

    system.env.process(producer())
    system.env.run()
    # Two batches go out; the third blocks on credits since the
    # consumer never accepts anything.
    assert progress == [0, 1]


def test_queue_release_credits_unblocks_producer():
    system = make_system(batch_bytes=16, max_inflight_batches=1)
    queue = system.forward_queue(0, 1)
    progress = []

    def producer():
        for i in range(3):
            yield from queue.produce((WRITE, 8 * i, i))
            progress.append(i)

    def releaser():
        yield system.env.timeout(1.0)
        queue.release_all_credits()
        yield system.env.timeout(1.0)
        queue.release_all_credits()

    system.env.process(producer())
    system.env.process(releaser())
    system.env.run()
    assert progress == [0, 1, 2]


def test_stale_epoch_batch_dropped_but_credit_released():
    system = make_system()
    queue = system.forward_queue(0, 1)
    envelope = BatchEnvelope(queue.name, epoch=99, credit_id=0,
                             entries=((WRITE, 0, 1),), nbytes=16)
    assert queue.accept_batch(envelope) is False
    assert not queue.has_local


def test_current_epoch_batch_accepted():
    system = make_system()
    queue = system.forward_queue(0, 1)
    envelope = BatchEnvelope(queue.name, epoch=0, credit_id=0,
                             entries=((WRITE, 0, 1), (WRITE, 8, 2)), nbytes=32)
    assert queue.accept_batch(envelope) is True
    ok, entry = queue.pop_local()
    assert ok and entry == (WRITE, 0, 1)
    assert queue.pop_local() == (True, (WRITE, 8, 2))
    assert queue.pop_local() == (False, None)


def test_queue_discard_clears_both_sides():
    system = make_system()
    queue = system.forward_queue(0, 1)
    queue._buffer.append((WRITE, 0, 1))
    queue.accept_batch(BatchEnvelope(queue.name, 0, 0, ((WRITE, 8, 2),), 16))
    assert queue.discard() == 2
    assert not queue.has_local
    assert not queue._buffer


def test_direct_mode_sends_per_entry():
    system = make_system(channel_mode="direct")
    queue = system.forward_queue(0, 1)

    def producer():
        for i in range(3):
            yield from queue.produce((WRITE, 8 * i, i))

    system.env.process(producer())
    system.env.run()
    assert queue.batches_sent == 3


# ---------------------------------------------------------------------------
# Endpoint
# ---------------------------------------------------------------------------


def test_endpoint_routes_ctl_by_epoch():
    system = make_system()
    endpoint = system.endpoint_of_unit(0)
    stale = ControlEnvelope("coa_response", epoch=42, sender_tid=1, payload=None)
    fresh = ControlEnvelope("coa_response", epoch=0, sender_tid=1, payload="page")
    endpoint._route(stale, arrival_order=False)
    endpoint._route(fresh, arrival_order=False)
    assert len(endpoint.pending_ctl) == 1
    assert endpoint.pending_ctl[0].payload == "page"


def test_endpoint_arrival_order_routing():
    system = make_system()
    endpoint = system.endpoint_of_unit(system.commit_tid)
    queue = system.clog_queue(0)
    endpoint._route(
        BatchEnvelope(queue.name, 0, 0, ((WRITE, 0, 1),), 16), arrival_order=True
    )
    endpoint._route(
        ControlEnvelope("validated", 0, system.trycommit_tid, 3), arrival_order=True
    )
    kinds = [record[0] for record in endpoint.pending_messages]
    assert kinds == ["batch", "ctl"]


def test_endpoint_clear_counts():
    system = make_system()
    endpoint = system.endpoint_of_unit(0)
    endpoint.pending_ctl.append(ControlEnvelope("x", 0, 1, None))
    endpoint.pending_messages.append(("ctl", None))
    assert endpoint.clear() == 2
    assert not endpoint.pending_ctl
    assert not endpoint.pending_messages
