"""Reliable transport: sequencing, dedup, reorder, ack, retransmit."""

import pytest

from repro.core import DSMTXSystem, SystemConfig
from repro.core.messages import Frame
from repro.core.stats import RunStats
from repro.core.transport import IngestBox
from tests.core.toys import ToyDoall


class FakeTransport:
    """Just enough surface for IngestBox unit tests."""

    def __init__(self):
        self.stats = RunStats()
        self.dead = set()
        self.acks = []
        self.integrity = False

    def is_dead_unit(self, tid):
        return tid in self.dead

    def send_ack(self, src_tid, dst_tid, upto):
        self.acks.append((src_tid, dst_tid, upto))


class FakeInbox:
    def __init__(self):
        self.items = []

    def put_nowait(self, item):
        self.items.append(item)


def make_box():
    transport = FakeTransport()
    inbox = FakeInbox()
    return transport, inbox, IngestBox(transport, dst_tid=9, inbox=inbox)


def frame(seq, payload=None, src=3):
    return Frame(src, 9, seq, payload if payload is not None else f"m{seq}")


def test_in_order_frames_unwrap_into_the_inbox():
    transport, inbox, box = make_box()
    box.put_nowait(frame(0))
    box.put_nowait(frame(1))
    assert inbox.items == ["m0", "m1"]
    # Each ingest acked cumulatively.
    assert transport.acks == [(3, 9, 0), (3, 9, 1)]


def test_duplicate_frames_are_dropped_but_reacked():
    transport, inbox, box = make_box()
    box.put_nowait(frame(0))
    box.put_nowait(frame(0, payload="dup"))
    assert inbox.items == ["m0"]
    assert transport.stats.ft_duplicates_dropped == 1
    # The re-ack lets a sender whose ack was lost clear its buffer.
    assert transport.acks[-1] == (3, 9, 0)


def test_out_of_order_frames_park_and_drain_in_order():
    transport, inbox, box = make_box()
    box.put_nowait(frame(2))
    box.put_nowait(frame(1))
    assert inbox.items == []  # nothing deliverable yet
    assert transport.stats.ft_frames_reordered == 2
    box.put_nowait(frame(0))
    assert inbox.items == ["m0", "m1", "m2"]  # program order restored
    assert transport.acks[-1] == (3, 9, 2)  # cumulative


def test_duplicate_of_a_parked_frame_is_dropped():
    transport, inbox, box = make_box()
    box.put_nowait(frame(2))
    box.put_nowait(frame(2))
    assert transport.stats.ft_duplicates_dropped == 1


def test_sources_are_sequenced_independently():
    _transport, inbox, box = make_box()
    box.put_nowait(frame(0, payload="a0", src=3))
    box.put_nowait(frame(0, payload="b0", src=4))
    assert inbox.items == ["a0", "b0"]


def test_frames_involving_dead_units_are_dropped():
    transport, inbox, box = make_box()
    transport.dead.add(3)
    box.put_nowait(frame(0))
    assert inbox.items == []
    assert transport.stats.ft_frames_from_dead_dropped == 1
    assert transport.acks == []  # the dead hear no acks


def test_forget_source_discards_reorder_state():
    _transport, inbox, box = make_box()
    box.put_nowait(frame(5))
    box.forget_source(3)
    box.put_nowait(frame(0))
    assert inbox.items == ["m0"]  # parked frame 5 is gone


# -- sender side against the real runtime ------------------------------------


def ft_system():
    return DSMTXSystem(
        ToyDoall(iterations=8).dsmtx_plan(),
        SystemConfig(total_cores=8, fault_tolerance=True),
    )


def test_stamp_assigns_per_link_sequence_numbers():
    system = ft_system()
    transport = system.transport
    a = transport.stamp(0, 5, "x", 100)
    b = transport.stamp(0, 5, "y", 100)
    c = transport.stamp(1, 5, "z", 100)
    assert (a.seq, b.seq) == (0, 1)
    assert c.seq == 0  # a different (src, dst) link
    assert a.payload == "x" and a.src_tid == 0 and a.dst_tid == 5


def test_unacked_frames_retransmit_until_giveup():
    system = ft_system()
    transport = system.transport
    # Sever the ack path: the receiver ingests every (re)delivery but
    # the sender never learns, so the timer escalates to give-up.
    transport.send_ack = lambda src, dst, upto: None
    transport.stamp(0, 5, "payload", 100)
    spec = system.cluster
    worst_case = spec.retransmit_timeout_cap_s * (spec.max_retransmits + 2)
    system.env.run(until=system.env.timeout(worst_case))
    assert system.stats.ft_retransmits == spec.max_retransmits
    assert system.stats.ft_retransmit_giveups == 1
    # Every retransmission after the first ingest was deduplicated.
    assert system.stats.ft_duplicates_dropped == spec.max_retransmits - 1


def test_ack_clears_the_retransmit_buffer():
    system = ft_system()
    transport = system.transport
    frame = transport.stamp(0, 5, "p", 64)
    # stamp() only arms the timer; the send path delivers.  Deliver now:
    # the ingest ack clears the buffer well inside one RTO.
    transport.ingest_box(5).put_nowait(frame)
    spec = system.cluster
    system.env.run(until=system.env.timeout(spec.retransmit_timeout_s * 4))
    assert system.stats.ft_retransmits == 0
    assert not transport._links[(0, 5)].unacked


def test_forget_units_stops_retransmits_for_dead_links():
    system = ft_system()
    transport = system.transport
    transport.send_ack = lambda src, dst, upto: None  # acks never arrive
    transport.stamp(0, 5, "p", 64)
    transport.forget_units({5})
    system.env.run(until=system.env.timeout(1.0))
    assert system.stats.ft_retransmits == 0
    assert system.stats.ft_retransmit_giveups == 0


def test_fault_free_mode_constructs_no_transport():
    system = DSMTXSystem(
        ToyDoall(iterations=8).dsmtx_plan(), SystemConfig(total_cores=8)
    )
    assert system.transport is None
    assert system.failure_detector is None
