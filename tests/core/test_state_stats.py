"""Unit tests for SystemState and RunStats."""

import pytest

from repro.core import RunMode, RunStats, SystemState
from repro.core.stats import RecoveryRecord
from repro.errors import RecoveryError


def test_state_starts_running():
    state = SystemState()
    assert state.mode == RunMode.RUN
    assert state.epoch == 0
    assert state.restart_base == 0
    assert not state.in_recovery
    assert not state.done


def test_recovery_cycle_bumps_epoch():
    state = SystemState()
    state.begin_recovery(7)
    assert state.in_recovery
    assert state.misspec_iteration == 7
    state.resume(restart_base=8)
    assert not state.in_recovery
    assert state.epoch == 1
    assert state.restart_base == 8


def test_resume_outside_recovery_rejected():
    state = SystemState()
    with pytest.raises(RecoveryError):
        state.resume(0)


def test_recovery_after_done_rejected():
    state = SystemState()
    state.terminate()
    assert state.done
    with pytest.raises(RecoveryError):
        state.begin_recovery(1)


def test_stats_queue_byte_accounting():
    stats = RunStats()
    stats.record_queue_bytes("forward", 100)
    stats.record_queue_bytes("log", 50)
    stats.record_queue_bytes("forward", 25)
    assert stats.queue_bytes == 175
    assert stats.queue_bytes_by_purpose == {"forward": 125, "log": 50}


def test_stats_bandwidth():
    stats = RunStats()
    stats.record_queue_bytes("data", 1000)
    stats.elapsed_seconds = 2.0
    assert stats.bandwidth_bps() == pytest.approx(500.0)
    empty = RunStats()
    assert empty.bandwidth_bps() == 0.0


def test_recovery_record_aggregation():
    stats = RunStats()
    stats.recoveries.append(
        RecoveryRecord(misspec_iteration=3, detected_at=1.0,
                       erm_seconds=0.1, flq_seconds=0.2, seq_seconds=0.3)
    )
    stats.recoveries.append(
        RecoveryRecord(misspec_iteration=9, detected_at=2.0,
                       erm_seconds=0.1, flq_seconds=0.1, seq_seconds=0.1)
    )
    assert stats.erm_seconds == pytest.approx(0.2)
    assert stats.flq_seconds == pytest.approx(0.3)
    assert stats.seq_seconds == pytest.approx(0.4)
    assert stats.recoveries[0].accounted_seconds == pytest.approx(0.6)
