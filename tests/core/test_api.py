"""Tests exercising the Table 1 API facade."""

import pytest

from repro.core import api
from repro.core.config import SystemConfig
from repro.errors import ConfigurationError
from tests.core.toys import ToyDoall, ToyPipeline


@pytest.fixture(autouse=True)
def session():
    api.DSMTX_Init()
    yield
    try:
        api.DSMTX_Finalize()
    except ConfigurationError:
        pass


def test_init_twice_rejected():
    with pytest.raises(ConfigurationError):
        api.DSMTX_Init()


def test_finalize_without_init_rejected():
    api.DSMTX_Finalize()
    with pytest.raises(ConfigurationError):
        api.DSMTX_Finalize()
    api.DSMTX_Init()  # restore for fixture teardown


def test_new_system_requires_session():
    api.DSMTX_Finalize()
    with pytest.raises(ConfigurationError):
        api.mtx_newDSMTXsystem(6, SystemConfig(total_cores=6), ToyDoall().dsmtx_plan())
    api.DSMTX_Init()


def test_new_system_and_run():
    plan = ToyPipeline(iterations=12).dsmtx_plan()
    system = api.mtx_newDSMTXsystem(6, SystemConfig(total_cores=6), workload=plan)
    result = api.mtx_run(system)
    assert result.iterations == 12
    api.mtx_deleteDSMTXsystem(system)


def test_new_system_requires_workload():
    with pytest.raises(ConfigurationError):
        api.mtx_newDSMTXsystem(6, SystemConfig(total_cores=6))


def test_mtx_spawn_binds_stage_body():
    plan = ToyDoall(iterations=8).dsmtx_plan()
    system = api.mtx_newDSMTXsystem(6, SystemConfig(total_cores=6), workload=plan)

    seen = []

    def replacement(ctx):
        seen.append(ctx.iteration)
        yield from plan.stage_body(0)(ctx)

    api.mtx_spawn(system, replacement, tid=0)
    result = api.mtx_run(system)
    assert result.iterations == 8
    assert sorted(seen) == list(range(8))


def test_mtx_spawn_unknown_tid():
    plan = ToyDoall(iterations=8).dsmtx_plan()
    system = api.mtx_newDSMTXsystem(6, SystemConfig(total_cores=6), workload=plan)
    with pytest.raises(ConfigurationError):
        api.mtx_spawn(system, lambda ctx: None, tid=99)


def test_malloc_free_through_api():
    plan = ToyDoall(iterations=8).dsmtx_plan()
    system = api.mtx_newDSMTXsystem(6, SystemConfig(total_cores=6), workload=plan)
    address = api.dsmtx_malloc(system, tid=0, nbytes=64)
    assert system.uva.owner_of(address) == 0
    api.dsmtx_free(system, address)


def test_write_api_variants_run_inside_bodies():
    """mtx_writeAll / mtx_writeTo / mtx_read used from a stage body."""
    workload = ToyPipeline(iterations=10)
    plan = workload.dsmtx_plan()

    def stage1(ctx):
        x = ctx.consume("x")
        y = x * x
        yield from api.mtx_writeTo(ctx, 2, workload.result_base + 8 * ctx.iteration, y)

    original = plan.stage_body(1)  # noqa: F841 - replaced below
    plan._stage_bodies[1] = stage1
    system = api.mtx_newDSMTXsystem(6, SystemConfig(total_cores=6), workload=plan)
    result = api.mtx_run(system)
    assert result.iterations == 10
    for i in range(10):
        x = 3 * i + 1
        assert system.commit.master.read(workload.result_base + 8 * i) == x * x
