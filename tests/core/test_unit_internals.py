"""Focused tests of worker / commit / try-commit internals, driven
manually against a constructed system."""

import pytest

from repro.core import DSMTXSystem, SystemConfig
from repro.core.messages import (
    BatchEnvelope,
    DATA,
    END_SUBTX,
    VALIDATED,
    WRITE,
)
from repro.memory import Page
from tests.core.toys import ToyDoall, ToyPipeline


def make_system(workload=None, cores=6, **kwargs):
    workload = workload or ToyPipeline(iterations=8)
    plan = workload.dsmtx_plan()
    system = DSMTXSystem(plan, SystemConfig(total_cores=cores, **kwargs))
    system.total_iterations = plan.iterations
    plan.setup(system)
    return system


# ---------------------------------------------------------------------------
# Worker internals
# ---------------------------------------------------------------------------


def test_apply_forwarded_to_absent_page_is_pended():
    system = make_system()
    worker = system.workers[0]
    worker.apply_forwarded(0x1000, "fwd")
    assert worker.foreign_pending  # page not installed yet
    assert not worker.space.has_page(1)


def test_foreign_pending_merges_on_install():
    system = make_system()
    worker = system.workers[0]
    worker.apply_forwarded(8, "fresh")  # page 0, word 1
    page = Page(0, {0: "committed", 1: "stale-committed"})
    worker.space.install_page(page)
    pending = worker.foreign_pending.pop(0)
    for index, value in pending.items():
        page.write(index, value)
    assert worker.space.read(0) == "committed"
    assert worker.space.read(8) == "fresh"  # forwarded value wins


def test_apply_forwarded_to_installed_page_overwrites():
    system = make_system()
    worker = system.workers[0]
    worker.space.install_page(Page(0, {1: "old"}))
    worker.apply_forwarded(8, "new")
    assert worker.space.read(8) == "new"
    assert not worker.foreign_pending


def test_discard_speculative_state_resets_everything():
    system = make_system()
    worker = system.workers[0]
    worker.space.install_page(Page(0))
    worker.space.install_page(Page(1))
    worker.foreign_pending[5] = {0: 1}
    worker.current_log.append((WRITE, 0, 1))
    worker.self_sync["x"] = 2
    dropped = worker.discard_speculative_state()
    assert dropped == 2
    assert not worker.foreign_pending
    assert not worker.current_log
    assert not worker.self_sync


def test_worker_tid_mapping_respects_restart_base():
    system = make_system(ToyPipeline(iterations=20), cores=8)
    # [S, DOALL, S] at 8 cores -> replicas [1, 4, 1].
    assert system.replicas == [1, 4, 1]
    stage1_base = system.stage_base_tid[1]
    assert system.worker_tid_for(1, 0) == stage1_base
    assert system.worker_tid_for(1, 5) == stage1_base + 1
    system.state.begin_recovery(3)
    system.state.resume(restart_base=4)
    # After restarting at 4, iteration 4 maps to replica 0 again.
    assert system.worker_tid_for(1, 4) == stage1_base
    assert system.worker_tid_for(1, 7) == stage1_base + 3


# ---------------------------------------------------------------------------
# Commit unit internals
# ---------------------------------------------------------------------------


def test_drain_queue_groups_entries_across_batches():
    system = make_system(ToyDoall(iterations=8))
    commit = system.commit
    queue = system.clog_queue(0)
    # A subTX's writes split across two batches: grouping must survive.
    queue.accept_batch(BatchEnvelope(queue.name, 0, 0,
                                     ((WRITE, 0, "a"),), 16))
    commit._drain_queue(queue)
    assert not commit.writes_by_iteration  # END not seen yet
    queue.accept_batch(BatchEnvelope(queue.name, 0, 1,
                                     ((WRITE, 8, "b"), (END_SUBTX, 0, 0)), 24))
    commit._drain_queue(queue)
    assert commit.writes_by_iteration[0][0] == [(WRITE, 0, "a"), (WRITE, 8, "b")]
    assert commit.ends_by_iteration[0] == {0}


def test_mtx_complete_requires_all_stages():
    system = make_system(ToyPipeline(iterations=8))  # 3 stages
    commit = system.commit
    commit.ends_by_iteration[0] = {0, 1}
    assert not commit._mtx_complete(0)
    commit.ends_by_iteration[0].add(2)
    assert commit._mtx_complete(0)


def test_validated_entries_accepted_from_batch():
    system = make_system(ToyDoall(iterations=8))
    commit = system.commit
    queue = system.validated_queue()
    queue.accept_batch(BatchEnvelope(queue.name, 0, 0,
                                     ((VALIDATED, 0), (VALIDATED, 1)), 32))
    commit._drain_queue(queue)
    assert commit.validated == {0, 1}


def test_stale_iteration_entries_dropped():
    system = make_system(ToyDoall(iterations=8))
    commit = system.commit
    commit.next_commit = 5
    queue = system.clog_queue(0)
    queue.accept_batch(BatchEnvelope(queue.name, 0, 0,
                                     ((WRITE, 0, "x"), (END_SUBTX, 2, 0)), 24))
    commit._drain_queue(queue)
    assert 2 not in commit.writes_by_iteration  # iteration already passed


def test_coa_serves_snapshot_not_alias():
    system = make_system(ToyDoall(iterations=8))
    commit = system.commit
    commit.master.write(0, "original")
    served = {}

    def requester():
        page = commit.master.get_page(0).snapshot()
        served["page"] = page
        yield system.env.timeout(0)

    system.env.process(requester())
    system.env.run()
    served["page"].write(0, "mutated-by-worker")
    assert commit.master.read(0) == "original"


# ---------------------------------------------------------------------------
# Try-commit internals
# ---------------------------------------------------------------------------


def test_overlay_gives_intra_mtx_visibility():
    system = make_system(ToyDoall(iterations=8))
    unit = system.try_commit
    unit.overlay[64] = "speculative"
    collected = {}

    def check():
        value = yield from unit._sequential_value(64)
        collected["value"] = value

    system.env.process(check())
    system.env.run()
    assert collected["value"] == "speculative"


def test_shadow_miss_falls_back_to_coa():
    # _sequential_value COA-faults the shadow; run inside a live system
    # so the commit unit can serve the page.
    workload = ToyPipeline(iterations=12)
    system = DSMTXSystem(workload.dsmtx_plan(), SystemConfig(total_cores=6))
    system.run()
    assert system.try_commit.shadow.pages_installed >= 0  # exercised path


def test_validation_counts_reads():
    # li performs 4 speculative env loads per script: they must all be
    # checked by the try-commit unit.
    from repro.workloads import Li

    workload = Li(iterations=10)
    system = DSMTXSystem(workload.dsmtx_plan(), SystemConfig(total_cores=6))
    system.run()
    assert system.stats.reads_checked == 4 * 10
