"""Failure detection, barrier deregistration, and the participant
protocol's termination/interruption races."""

import pytest

from repro.core import DSMTXSystem, SystemConfig
from repro.core.messages import CTL_NODE_FAILED
from repro.core.recovery import RecoveryCoordinator
from repro.errors import ClusterFailedError, NodeCrashed, ProcessInterrupt
from tests.core.toys import ToyDoall


def build(cores=8, fault_tolerance=True):
    return DSMTXSystem(
        ToyDoall(iterations=8).dsmtx_plan(),
        SystemConfig(total_cores=cores, fault_tolerance=fault_tolerance),
    )


# -- detection ----------------------------------------------------------------


def test_silent_node_is_declared_within_the_suspicion_timeout():
    system = build()
    detector = system.failure_detector
    detector.start()
    env = system.env
    # Kill node 0's heartbeat emitter: silence without any other change.
    (emitter,) = system.processes_on_node(0)
    cause = NodeCrashed(0)

    def killer():
        yield env.timeout(0.001)
        emitter.interrupt(cause)

    env.process(killer())
    deadline = 0.001 + detector.suspicion_timeout + 3 * detector.period
    env.run(until=env.timeout(deadline))

    ((node, dead_tids, detected_at, last_heard_at),) = (
        system.state.failover_pending
    )
    assert node == 0
    assert dead_tids == (0, 1, 2, 3)
    assert last_heard_at <= 0.001
    assert detected_at <= deadline
    assert system.state.failed_nodes == {0}
    # Dead workers left the barrier protocol at declaration time.
    assert system.recovery.parties == system.num_workers + 2 - 4
    # And the commit unit got its wake-up ping.
    ok, envelope = system.inbox_of(system.commit_tid).try_get()
    assert ok and envelope.kind == CTL_NODE_FAILED and envelope.payload == 0


def test_heartbeats_from_a_crashed_node_stop_at_crash_time():
    """A dead node must fall silent at the instant of the crash: its
    emitter is interrupted with everything else on the node, so its
    last-heard time freezes and the suspicion clock starts from there.
    An emitter that kept beating would mask the failure forever."""
    from repro.chaos import ChaosEngine, FaultPlan, NodeCrash

    system = build(cores=12)  # three nodes: a survivor node beside the victim
    detector = system.failure_detector
    crash_at = 10.5 * detector.period  # mid-interval, several beats in
    engine = ChaosEngine(
        FaultPlan(faults=(NodeCrash(node=0, at_s=crash_at),))
    ).attach(system.env)
    engine.bind_system(system)
    detector.start()
    env = system.env
    env.run(until=env.timeout(crash_at + detector.suspicion_timeout + 5 * detector.period))

    # The node beat while alive, then went silent exactly at the crash.
    assert 0.0 < detector.last_heard[0] <= crash_at
    # Survivors kept beating past the crash.
    assert any(
        heard > crash_at
        for node, heard in detector.last_heard.items()
        if node != 0 and node != detector.commit_node
    )
    # And the silence was eventually declared.
    assert system.state.failed_nodes == {0}


def test_healthy_nodes_are_never_suspected():
    system = build()
    system.failure_detector.start()
    env = system.env
    env.run(until=env.timeout(50 * system.failure_detector.suspicion_timeout))
    assert not system.state.failover_pending
    assert system.stats.ft_heartbeats > 0


def test_losing_the_commit_units_node_is_fatal():
    system = build()
    detector = system.failure_detector
    detector.start()
    # Node 1 hosts the try-commit and commit units under pack placement.
    with pytest.raises(ClusterFailedError, match="unrecoverable"):
        detector._declare(1)


# -- barrier deregistration ---------------------------------------------------


def test_deregister_shrinks_barriers_and_drops_dead_arrivals():
    system = build()
    recovery = system.recovery
    before = recovery.parties
    # Unit 0 died *at* the ERM barrier.
    recovery.erm_barrier.wait(owner=0)
    recovery.deregister([0, 1])
    assert recovery.parties == before - 2
    assert recovery.erm_barrier.arrived == 0  # the ghost arrival is gone
    assert recovery.erm_barrier.parties == before - 2
    # Deregistering the same units again is a no-op.
    recovery.deregister([0, 1])
    assert recovery.parties == before - 2


def test_deregister_releases_a_barrier_the_survivors_completed():
    system = build()
    recovery = system.recovery
    released = []
    # All parties but the (dead) last one have arrived.
    for tid in range(recovery.parties - 1):
        recovery.erm_barrier.wait(owner=tid).callbacks.append(
            lambda _e: released.append(True)
        )
    recovery.deregister([99])
    system.env.run(until=system.env.timeout(0.0))
    assert len(released) == recovery.parties


# -- participant protocol races ----------------------------------------------


def test_participate_returns_when_the_run_terminates_instead():
    """Regression: a unit waiting pre-ERM must not join the barriers if
    the commit unit terminates the run rather than entering recovery —
    the flush that wakes the unit is the *termination* flush, and
    arriving at the ERM barrier then would strand it forever."""
    system = build(fault_tolerance=False)
    env = system.env
    worker = system.workers[0]

    def terminator():
        yield env.timeout(1e-6)
        system.state.terminate()
        system.flush_all_inboxes()

    env.process(terminator())
    proc = env.process(system.recovery.participate(worker))
    env.run(until=proc)
    assert system.recovery.erm_barrier.arrived == 0


def test_participate_survives_flush_churn_before_recovery_begins():
    """ChannelFlushedError in the pre-ERM receive loop is absorbed and
    the loop re-checks the system mode each pass."""
    system = build(fault_tolerance=False)
    env = system.env
    worker = system.workers[0]
    solo = RecoveryCoordinator(system, parties=1)

    def driver():
        # Two spurious flushes while the unit waits, then real recovery.
        for _ in range(2):
            yield env.timeout(1e-6)
            system.flush_all_inboxes()
        yield env.timeout(1e-6)
        system.state.begin_recovery(0)
        system.flush_all_inboxes()

    env.process(driver())
    proc = env.process(solo.participate(worker))
    env.run(until=proc)
    # The unit made it through ERM, FLQ, and resume alone.
    assert solo.erm_barrier.generation == 1
    assert solo.flq_barrier.generation == 1
    assert solo.resume_barrier.generation == 1


def test_participate_joins_immediately_when_already_in_recovery():
    system = build(fault_tolerance=False)
    env = system.env
    worker = system.workers[0]
    solo = RecoveryCoordinator(system, parties=1)
    system.state.begin_recovery(0)
    proc = env.process(solo.participate(worker))
    env.run(until=proc)
    assert solo.resume_barrier.generation == 1


# -- unit main loops under node crashes ---------------------------------------


def test_unit_main_loops_absorb_node_crash_interrupts():
    system = build()
    env = system.env
    worker = system.workers[0]
    system.total_iterations = 8
    system.workload.setup(system)
    process = env.process(worker.run())
    cause = NodeCrashed(0)

    def killer():
        yield env.timeout(1e-6)
        process.interrupt(cause)

    env.process(killer())
    env.run(until=process)  # returns silently, no exception propagates


def test_unit_main_loops_reraise_foreign_interrupts():
    system = build()
    env = system.env
    worker = system.workers[0]
    system.total_iterations = 8
    system.workload.setup(system)
    process = env.process(worker.run())

    def killer():
        yield env.timeout(1e-6)
        process.interrupt("not a crash")

    env.process(killer())
    with pytest.raises(ProcessInterrupt):
        env.run(until=process)
