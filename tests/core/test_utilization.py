"""Tests for per-unit utilization reporting."""

import pytest

from repro.core import DSMTXSystem, SystemConfig
from tests.core.toys import ToyDoall, ToyPipeline


def test_utilization_reports_every_unit():
    system = DSMTXSystem(ToyPipeline(iterations=24).dsmtx_plan(),
                         SystemConfig(total_cores=6))
    system.run()
    report = system.utilization()
    # [S, DOALL, S] at 6 cores: 4 workers + try-commit + commit.
    assert len(report) == 6
    assert "worker[0.0]" in report
    assert "try-commit" in report and "commit" in report
    for fraction in report.values():
        assert 0.0 <= fraction <= 1.0


def test_parallel_stage_workers_are_busy():
    workload = ToyDoall(iterations=128, work_cycles=100_000)
    system = DSMTXSystem(workload.dsmtx_plan(), SystemConfig(total_cores=8))
    system.run()
    report = system.stage_utilization()
    assert report["stage0"] > 0.5  # compute-bound parallel stage
    assert report["commit"] < report["stage0"]


def test_stage_utilization_structure():
    system = DSMTXSystem(ToyPipeline(iterations=24).dsmtx_plan(),
                         SystemConfig(total_cores=8))
    system.run()
    report = system.stage_utilization()
    assert set(report) == {"stage0", "stage1", "stage2", "try-commit", "commit"}


def test_utilization_empty_before_run():
    system = DSMTXSystem(ToyDoall(iterations=8).dsmtx_plan(),
                         SystemConfig(total_cores=6))
    assert system.utilization() == {}


def test_replica_appears_in_utilization():
    system = DSMTXSystem(ToyDoall(iterations=16).dsmtx_plan(),
                         SystemConfig(total_cores=8, coa_replicas=1))
    system.run()
    assert "coa-replica[0]" in system.utilization()
