"""Unit tests for pipeline and system configuration."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import PipelineConfig, StageKind, StageSpec, SystemConfig
from repro.errors import ConfigurationError


def test_stage_kind_validation():
    with pytest.raises(ConfigurationError):
        StageSpec(name="bad", kind="HYPER")


def test_pipeline_from_kinds():
    pipeline = PipelineConfig.from_kinds(["S", "DOALL", "S"])
    assert pipeline.num_stages == 3
    assert pipeline.describe() == "[S,DOALL,S]"
    assert not pipeline.stages[0].is_parallel
    assert pipeline.stages[1].is_parallel


def test_pipeline_needs_stages():
    with pytest.raises(ConfigurationError):
        PipelineConfig(stages=())


def test_min_cores_counts_units():
    pipeline = PipelineConfig.from_kinds(["S", "DOALL", "S"])
    # 3 stage workers + try-commit + commit.
    assert pipeline.min_cores == 5


def test_allocate_gives_parallel_stage_the_remainder():
    pipeline = PipelineConfig.from_kinds(["S", "DOALL", "S"])
    assert pipeline.allocate(8) == [1, 4, 1]
    assert pipeline.allocate(128) == [1, 124, 1]


def test_allocate_splits_between_parallel_stages():
    pipeline = PipelineConfig.from_kinds(["DOALL", "DOALL"])
    assert pipeline.allocate(8) == [3, 3]
    assert pipeline.allocate(9) == [4, 3]


def test_allocate_sequential_only_pipeline():
    pipeline = PipelineConfig.from_kinds(["S", "S"])
    # Spare cores stay idle: DSWP width is fixed by its stages.
    assert pipeline.allocate(10) == [1, 1]


def test_allocate_too_few_cores():
    pipeline = PipelineConfig.from_kinds(["S", "DOALL", "S"])
    with pytest.raises(ConfigurationError):
        pipeline.allocate(4)


def test_system_config_validation():
    with pytest.raises(ConfigurationError):
        SystemConfig(total_cores=2)
    with pytest.raises(ConfigurationError):
        SystemConfig(total_cores=256)  # exceeds the 128-core cluster
    with pytest.raises(ConfigurationError):
        SystemConfig(total_cores=8, max_inflight_batches=0)


def test_system_config_with_cores():
    config = SystemConfig(total_cores=8, batch_bytes=512)
    scaled = config.with_cores(64)
    assert scaled.total_cores == 64
    assert scaled.batch_bytes == 512


def test_effective_batch_bytes_defaults_to_cluster():
    cluster = ClusterSpec(queue_batch_bytes=2048)
    config = SystemConfig(cluster=cluster, total_cores=8)
    assert config.effective_batch_bytes == 2048
    assert SystemConfig(total_cores=8, batch_bytes=64).effective_batch_bytes == 64
