"""End-to-end smoke tests for the DSMTX runtime."""

import pytest

from repro.core import DSMTXSystem, SystemConfig
from tests.core.toys import ToyDoall, ToyPipeline


def run_plan(plan, cores=6, **config_kwargs):
    config = SystemConfig(total_cores=cores, **config_kwargs)
    system = DSMTXSystem(plan, config)
    result = system.run()
    return system, result


def test_pipeline_commits_all_iterations():
    workload = ToyPipeline(iterations=20)
    system, result = run_plan(workload.dsmtx_plan(), cores=6)
    assert result.iterations == 20
    assert system.stats.misspeculations == 0


def test_pipeline_produces_correct_results():
    workload = ToyPipeline(iterations=20)
    system, _result = run_plan(workload.dsmtx_plan(), cores=6)
    master = system.commit.master
    for i in range(20):
        x = 3 * i + 1
        assert master.read(workload.result_base + 8 * i) == x * x
    expected_sum = sum((3 * i + 1) ** 2 for i in range(20))
    assert master.read(workload.sum_addr) == expected_sum


def test_pipeline_elapsed_time_positive():
    workload = ToyPipeline(iterations=10)
    _system, result = run_plan(workload.dsmtx_plan(), cores=6)
    assert result.elapsed_seconds > 0


def test_doall_correctness():
    workload = ToyDoall(iterations=32)
    system, result = run_plan(workload.dsmtx_plan(), cores=8)
    assert result.iterations == 32
    master = system.commit.master
    for i in range(32):
        assert master.read(workload.out_base + 8 * i) == 2 * (i + 1) + 1


def test_tls_correctness():
    workload = ToyPipeline(iterations=20)
    system, result = run_plan(workload.tls_plan(), cores=6)
    assert result.iterations == 20
    master = system.commit.master
    expected_sum = sum((3 * i + 1) ** 2 for i in range(20))
    assert master.read(workload.sum_addr) == expected_sum


def test_parallel_speedup_over_sequential():
    workload = ToyDoall(iterations=64, work_cycles=50_000)
    plan = workload.dsmtx_plan()
    seq = workload.sequential_seconds(SystemConfig(total_cores=10))
    _system, result = run_plan(plan, cores=10)
    speedup = result.speedup_over(seq)
    # 8 workers on an embarrassingly parallel loop: expect real speedup.
    assert speedup > 3.0


def test_more_cores_more_speedup():
    def time_at(cores):
        workload = ToyDoall(iterations=128, work_cycles=50_000)
        _system, result = run_plan(workload.dsmtx_plan(), cores=cores)
        return result.elapsed_seconds

    assert time_at(16) < time_at(4)


def test_misspeculation_recovers_and_result_correct():
    workload = ToyDoall(iterations=32, misspec_iterations={10})
    system, result = run_plan(workload.dsmtx_plan(), cores=6)
    assert system.stats.misspeculations == 1
    assert len(system.stats.recoveries) == 1
    master = system.commit.master
    for i in range(32):
        assert master.read(workload.out_base + 8 * i) == 2 * (i + 1) + 1


def test_multiple_misspeculations():
    workload = ToyPipeline(iterations=30, misspec_iterations={5, 17})
    system, _result = run_plan(workload.dsmtx_plan(), cores=6)
    assert system.stats.misspeculations == 2
    expected_sum = sum((3 * i + 1) ** 2 for i in range(30))
    assert system.commit.master.read(workload.sum_addr) == expected_sum


def test_recovery_records_have_phases():
    workload = ToyDoall(iterations=32, misspec_iterations={8})
    system, _result = run_plan(workload.dsmtx_plan(), cores=6)
    record = system.stats.recoveries[0]
    assert record.misspec_iteration == 8
    assert record.erm_seconds > 0
    assert record.seq_seconds > 0
    assert record.reexecuted_iterations >= 1


def test_coa_pages_are_fetched_once_per_worker_page():
    workload = ToyDoall(iterations=32)
    system, _result = run_plan(workload.dsmtx_plan(), cores=6)
    # 32 iterations x 8 bytes fits one page for input and one for output;
    # misses are per worker, bounded well below one per access.
    assert 0 < system.stats.coa_pages_served <= 4 * 4 + 4


def test_stats_track_queue_traffic():
    workload = ToyPipeline(iterations=20)
    system, _result = run_plan(workload.dsmtx_plan(), cores=6)
    assert system.stats.queue_bytes > 0
    assert system.stats.queue_bytes_by_purpose.get("log", 0) > 0
    assert system.stats.words_committed > 0
