"""Tests for the execution contexts: MasterContext, SequentialMeter,
and MTXContext error paths."""

import pytest

from repro.core import DSMTXSystem, MasterContext, SequentialMeter, SystemConfig
from repro.errors import TransactionError
from repro.memory import AddressSpace
from repro.workloads import run_body
from repro.workloads.base import WriteThroughStore
from tests.core.toys import ToyDoall, ToyPipeline


# ---------------------------------------------------------------------------
# SequentialMeter
# ---------------------------------------------------------------------------


def test_meter_accumulates_cycles():
    meter = SequentialMeter(SystemConfig(total_cores=8))
    meter.compute(1000)
    meter.compute(500)
    assert meter.cycles >= 1500
    assert meter.seconds == pytest.approx(meter.cycles / 3.0e9)


def test_meter_charges_memory_accesses():
    config = SystemConfig(total_cores=8)
    meter = SequentialMeter(config)
    before = meter.cycles
    run_body(meter.store(0, 1))
    run_body(meter.load(0))
    per_access = config.access_instructions / config.cluster.instructions_per_cycle
    assert meter.cycles == pytest.approx(before + 2 * per_access)


def test_meter_memory_round_trip():
    meter = SequentialMeter(SystemConfig(total_cores=8))
    run_body(meter.store(64, "v"))
    values = []

    def body():
        values.append((yield from meter.load(64)))

    run_body(body())
    assert values == ["v"]


def test_meter_dataflow_is_local():
    meter = SequentialMeter(SystemConfig(total_cores=8))
    run_body(meter.produce("q", 41))
    assert meter.peek_count("q") == 1
    assert meter.consume("q") == 41
    with pytest.raises(TransactionError):
        meter.consume("q")


def test_meter_sync_round_trip():
    meter = SequentialMeter(SystemConfig(total_cores=8))
    run_body(meter.sync_send("s", 7))
    values = []

    def body():
        values.append((yield from meter.sync_recv("s")))
        values.append((yield from meter.sync_recv("s")))

    run_body(body())
    assert values == [7, None]


def test_meter_speculation_is_noop():
    meter = SequentialMeter(SystemConfig(total_cores=8))
    meter.speculate(False, "ignored sequentially")
    meter.misspec("also ignored")
    meter.mispredict(0, "ignored")


# ---------------------------------------------------------------------------
# MasterContext
# ---------------------------------------------------------------------------


def make_master_context():
    workload = ToyDoall(iterations=4)
    system = DSMTXSystem(workload.dsmtx_plan(), SystemConfig(total_cores=6))
    space = AddressSpace("master-test")
    return MasterContext(system, space, system.commit.core), space


def test_master_context_direct_memory():
    ctx, space = make_master_context()
    run_body(ctx.store(8, 123))
    assert space.read(8) == 123
    values = []

    def body():
        values.append((yield from ctx.load(8)))

    run_body(body())
    assert values == [123]


def test_master_context_dataflow_local():
    ctx, _space = make_master_context()
    run_body(ctx.produce("x", "payload"))
    assert ctx.consume("x") == "payload"
    with pytest.raises(TransactionError):
        ctx.consume("x")


def test_master_context_never_misspeculates():
    ctx, _space = make_master_context()
    ctx.speculate(False, "sequential execution ignores this")
    ctx.misspec("and this")


# ---------------------------------------------------------------------------
# MTXContext error paths (driven through a live system)
# ---------------------------------------------------------------------------


def test_consume_without_produce_is_a_bug():
    workload = ToyPipeline(iterations=4)
    plan = workload.dsmtx_plan()

    def broken_stage1(ctx):
        ctx.consume("never-produced")
        yield from ()

    plan._stage_bodies[1] = broken_stage1
    system = DSMTXSystem(plan, SystemConfig(total_cores=6))
    with pytest.raises(TransactionError, match="no data"):
        system.run()


def test_produce_to_invalid_stage_is_a_bug():
    workload = ToyPipeline(iterations=4)
    plan = workload.dsmtx_plan()

    def broken_stage0(ctx):
        yield from ctx.produce("x", 1, to_stage=0)  # not a later stage

    plan._stage_bodies[0] = broken_stage0
    system = DSMTXSystem(plan, SystemConfig(total_cores=6))
    with pytest.raises(TransactionError, match="invalid stage"):
        system.run()
