"""Property suite for the write_min reservation table.

The reservation table is the arbitration primitive of the
``speculative_for`` paradigm: whatever order reservations arrive in,
whatever worker they came from, the lowest iteration index holds every
slot it asked for at the end of the round.  The properties here drive
arbitrary interleavings against a plain-dict reference model (mirroring
``tests/memory/test_blocks.py``) and pin the three guarantees the round
protocol builds on: lowest-iteration-wins, idempotent re-reservation,
and worker-count-independent winners.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ReservationCommitService, ReservationTable
from repro.core.reservations import EMPTY
from repro.errors import UnmappedAddressError

_SLOTS = 16
_SLOT = st.integers(0, _SLOTS - 1)
_ITER = st.integers(0, 63)
_PAIRS = st.lists(st.tuples(_SLOT, _ITER), max_size=60)


def _reference(pairs):
    """Plain-dict write_min model: slot -> lowest iteration offered."""
    model = {}
    for slot, iteration in pairs:
        if slot not in model or iteration < model[slot]:
            model[slot] = iteration
    return model


@settings(max_examples=200, deadline=None)
@given(pairs=_PAIRS)
def test_any_interleaving_yields_lowest_iteration_wins(pairs):
    table = ReservationTable(_SLOTS)
    for slot, iteration in pairs:
        table.reserve(slot, iteration)
    model = _reference(pairs)
    for slot in range(_SLOTS):
        if slot in model:
            assert table.holder(slot) == model[slot]
        else:
            assert table.holder(slot) is None


@settings(max_examples=200, deadline=None)
@given(pairs=_PAIRS)
def test_check_holds_iff_reference_winner(pairs):
    table = ReservationTable(_SLOTS)
    for slot, iteration in pairs:
        table.reserve(slot, iteration)
    model = _reference(pairs)
    for slot, iteration in pairs:
        assert table.check(slot, iteration) == (model[slot] == iteration)


@settings(max_examples=200, deadline=None)
@given(pairs=_PAIRS)
def test_re_reservation_is_idempotent(pairs):
    """Replaying the whole pair list (in any rotation) changes nothing:
    write_min is idempotent and commutative."""
    once = ReservationTable(_SLOTS)
    for slot, iteration in pairs:
        once.reserve(slot, iteration)
    twice = ReservationTable(_SLOTS)
    for slot, iteration in pairs + pairs[::-1]:
        twice.reserve(slot, iteration)
    for slot in range(_SLOTS):
        assert once.holder(slot) == twice.holder(slot)


@settings(max_examples=200, deadline=None)
@given(pairs=_PAIRS, workers=st.integers(1, 8))
def test_winners_independent_of_worker_partition(pairs, workers):
    """Dealing the pairs round-robin across W 'workers' and applying the
    per-worker batches in worker order (the service's gather order)
    yields the same holders as the sequential reference for every W."""
    service = ReservationCommitService(_SLOTS)
    batches = [pairs[w::workers] for w in range(workers)]
    for batch in batches:
        service.apply_reservations(
            [(slot, iteration) for slot, iteration in batch])
    model = _reference(pairs)
    for slot in range(_SLOTS):
        if slot in model:
            assert service.table.holder(slot) == model[slot]
        else:
            assert service.table.holder(slot) is None


@settings(max_examples=100, deadline=None)
@given(pairs=_PAIRS)
def test_reset_restores_empty(pairs):
    table = ReservationTable(_SLOTS)
    for slot, iteration in pairs:
        table.reserve(slot, iteration)
    table.reset()
    for slot in range(_SLOTS):
        assert table.holder(slot) is None


def test_reserve_returns_current_winner():
    table = ReservationTable(4)
    assert table.reserve(2, 7) == 7
    assert table.reserve(2, 3) == 3
    assert table.reserve(2, 5) == 3  # loses; winner reported back
    assert table.holder(2) == 3
    assert table.reservations == 3
    assert table.lost == 1


def test_write_min_rejects_nonpositive_values():
    from repro.memory import AddressSpace

    space = AddressSpace("t")
    with pytest.raises(UnmappedAddressError):
        space.write_min(0, 0)
    with pytest.raises(UnmappedAddressError):
        space.write_min(0, -3)


def test_release_and_check_reset():
    table = ReservationTable(4)
    table.reserve(1, 5)
    assert table.check(1, 5)
    table.release(1)
    assert table.holder(1) is None
    table.reserve(1, 2)
    assert table.check_reset(1, 2)
    assert table.holder(1) is None
