"""End-to-end equivalence of the per-word shim and the batched access
paths.

The batch APIs (``load_block``/``store_block``/``compute_batch``) must
be *indistinguishable* from the per-word calls they amortize: same
access-log observations after run-length expansion, same forwarded
values, same simulated cycle charges, same committed memory, same
validation counts, and the same bytes on the replication stream.  These
tests pin each of those equivalences — at the context level, through
full DSMTX runs of the word/block workload legs, through the try-commit
value checks of ``READ_BLOCK`` records, and through hot-standby
replication of ``WRITE_BLOCK`` records.
"""

import pytest

from repro.analysis import memory_fingerprint
from repro.core import DSMTXSystem, SystemConfig
from repro.core.config import PipelineConfig
from repro.core.context import MTXContext
from repro.core.messages import READ, READ_BLOCK, WRITE, WRITE_BLOCK
from repro.errors import ConfigurationError
from repro.memory import Page
from repro.workloads import BENCHMARKS
from repro.workloads.base import ParallelPlan, Workload
from tests.core.toys import ToyDoall


def make_system(workload, **kwargs):
    plan = workload.dsmtx_plan()
    kwargs.setdefault("total_cores", 8)
    system = DSMTXSystem(plan, SystemConfig(**kwargs))
    system.total_iterations = plan.iterations
    plan.setup(system)
    return system


def drive(gen):
    """Exhaust a context generator that must not block on the simulator."""
    try:
        while True:
            next(gen)
            raise AssertionError("context op unexpectedly yielded a sim event")
    except StopIteration as stop:
        return stop.value


def expand(entries):
    """Run-length-expand WB/RB records into per-word W/R records."""
    flat = []
    for entry in entries:
        kind = entry[0]
        if kind == WRITE_BLOCK:
            flat.extend(
                (WRITE, entry[1] + (offset << 3), value)
                for offset, value in enumerate(entry[2])
            )
        elif kind == READ_BLOCK:
            flat.extend(
                (READ, entry[1] + (offset << 3), value)
                for offset, value in enumerate(entry[2])
            )
        else:
            flat.append(entry)
    return flat


# ---------------------------------------------------------------------------
# Context level: the shim and the batch path log and charge identically
# ---------------------------------------------------------------------------


def test_batch_and_per_word_paths_produce_identical_access_logs():
    """ISSUE satellite: one worker stores/loads word by word, another via
    the block APIs; after run-length expansion the access logs, forwards
    and cycle charges must be equal — including across a page split."""
    system = make_system(ToyDoall(iterations=8))
    word_worker, block_worker = system.workers[0], system.workers[1]
    values = ["a", -3, 2.5, "d", 0, 7, "g", 1]
    base = 4096 - 3 * 8  # last 3 words of page 0, first 5 of page 1
    for worker in (word_worker, block_worker):
        worker.space.install_page(Page(0))
        worker.space.install_page(Page(1))
    word_ctx = MTXContext(word_worker)
    block_ctx = MTXContext(block_worker)
    word_ctx.begin_iteration(0)
    block_ctx.begin_iteration(0)

    for offset, value in enumerate(values):
        drive(word_ctx.store(base + (offset << 3), value))
    drive(block_ctx.store_block(base, values))

    word_read = [
        drive(word_ctx.load(base + (offset << 3), speculative=True))
        for offset in range(len(values))
    ]
    block_read = drive(block_ctx.load_block(base, len(values), speculative=True))
    assert block_read == word_read == values

    word_ctx.compute(500.0)
    word_ctx.compute(500.0)
    block_ctx.compute_batch(500.0, 2)

    # One WB + one RB record expand to exactly the per-word log.
    assert len(block_worker.current_log) == 2
    assert expand(block_worker.current_log) == word_worker.current_log

    # Forwarding parity: the single WB forward stands for N word forwards.
    word_entries = [entry for entry, _targets in word_worker.pending_forwards]
    block_entries = [entry for entry, _targets in block_worker.pending_forwards]
    assert len(block_entries) == 1
    assert expand(block_entries) == word_entries
    assert all(t is None for _e, t in block_worker.pending_forwards)

    # Identical simulated cost: batching amortizes Python calls only.
    assert block_worker.core.busy_cycles == word_worker.core.busy_cycles

    # Identical memory effect, word for word.
    assert block_worker.space.read_block(base, len(values)) == values
    assert dict(block_worker.space.dirty_words()) == dict(
        word_worker.space.dirty_words()
    )


# ---------------------------------------------------------------------------
# Workload legs: word vs block A/B pairs commit identical memory
# ---------------------------------------------------------------------------

LEG_ITERATIONS = {"crc32": 12, "456.hmmer": 16, "164.gzip": 12, "blackscholes": 12}


def run_leg(name, access, scheme="dsmtx", **overrides):
    workload = BENCHMARKS[name](iterations=LEG_ITERATIONS[name], access=access)
    plan = workload.dsmtx_plan() if scheme == "dsmtx" else workload.tls_plan()
    system = DSMTXSystem(plan, SystemConfig(total_cores=8, **overrides))
    result = system.run()
    assert result.iterations == LEG_ITERATIONS[name]
    return system, result


@pytest.mark.parametrize("name", sorted(LEG_ITERATIONS))
def test_word_and_block_legs_commit_identical_memory(name):
    word_system, word_result = run_leg(name, "word")
    block_system, block_result = run_leg(name, "block")
    assert memory_fingerprint(block_system.commit.master) == memory_fingerprint(
        word_system.commit.master
    )
    assert block_result.stats.words_committed == word_result.stats.words_committed
    assert block_result.stats.reads_checked == word_result.stats.reads_checked
    assert block_result.stats.misspeculations == 0
    assert word_result.stats.misspeculations == 0


def test_crc32_tls_legs_commit_identical_memory():
    # crc32's body is shared between plans, so its A/B pair also runs
    # under TLS; the other legs are DSMTX-plan-only.
    word_system, _ = run_leg("crc32", "word", scheme="tls")
    block_system, _ = run_leg("crc32", "block", scheme="tls")
    assert memory_fingerprint(block_system.commit.master) == memory_fingerprint(
        word_system.commit.master
    )


@pytest.mark.parametrize("name", ["456.hmmer", "164.gzip", "blackscholes"])
def test_non_paged_tls_plans_are_rejected(name):
    workload = BENCHMARKS[name](iterations=4, access="block")
    with pytest.raises(ConfigurationError):
        workload.tls_plan()


# ---------------------------------------------------------------------------
# Validation: READ_BLOCK records are value-checked word for word
# ---------------------------------------------------------------------------


class BlockReader(Workload):
    """Spec-DOALL toy: each iteration block-loads its seeded input run
    speculatively and stores the sum.  ``misspec_iterations`` corrupts
    the logged block observation so the try-commit value check — not the
    worker — must detect the misspeculation."""

    name = "toy-block-reader"
    suite = "tests"
    description = "speculative block loads"
    paradigm = "Spec-DOALL"
    speculation = ("MVS",)

    block_words = 6

    def build(self, uva, owner, store):
        self.data_base = uva.malloc_page_aligned(
            owner, self.iterations * self.block_words * 8
        )
        self.out_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        for i in range(self.iterations):
            for k in range(self.block_words):
                store.write(self.data_base + 8 * (i * self.block_words + k), i + 7 * k)

    def _input_base(self, iteration):
        return self.data_base + 8 * self.block_words * iteration

    def sequential_body(self, ctx):
        i = ctx.iteration
        values = yield from ctx.load_block(self._input_base(i), self.block_words)
        yield from ctx.store(self.out_base + 8 * i, sum(values))

    def _body(self, ctx):
        i = ctx.iteration
        values = yield from ctx.load_block(
            self._input_base(i), self.block_words, speculative=True
        )
        if self.injected_misspec(i):
            # Corrupt the logged RB observation (the block-granular
            # analogue of ctx.mispredict): detection must happen at the
            # try-commit unit's value check, delayed by log batching.
            # Recovery re-executes under MasterContext, which keeps no
            # log — hence the getattr guard.
            worker = getattr(ctx, "_worker", None)
            if worker is not None:
                kind, address, observed = worker.current_log[-1]
                worker.current_log[-1] = (
                    kind, address, tuple(value + 1 for value in observed),
                )
        yield from ctx.store(self.out_base + 8 * i, sum(values), forward=False)

    def dsmtx_plan(self):
        return ParallelPlan(
            self,
            scheme="dsmtx",
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[self._body],
            label="Spec-DOALL",
        )

    def tls_plan(self):
        return ParallelPlan(
            self,
            scheme="tls",
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[self._body],
            label="TLS",
        )


def test_speculative_block_loads_are_value_checked():
    workload = BlockReader(iterations=10)
    system = DSMTXSystem(workload.dsmtx_plan(), SystemConfig(total_cores=8))
    system.run()
    # Every word of every RB record was checked, none mismatched.
    assert system.stats.reads_checked == 10 * BlockReader.block_words
    assert system.stats.misspeculations == 0


def test_corrupted_block_observation_triggers_recovery():
    clean = BlockReader(iterations=10)
    clean_system = DSMTXSystem(clean.dsmtx_plan(), SystemConfig(total_cores=8))
    clean_system.run()

    workload = BlockReader(iterations=10, misspec_iterations={4})
    system = DSMTXSystem(workload.dsmtx_plan(), SystemConfig(total_cores=8))
    result = system.run()
    assert system.stats.misspeculations == 1
    assert result.iterations == 10
    assert memory_fingerprint(system.commit.master) == memory_fingerprint(
        clean_system.commit.master
    )


# ---------------------------------------------------------------------------
# Forwarding: WRITE_BLOCK entries reach later stages word for word
# ---------------------------------------------------------------------------


class ForwardingPipeline(Workload):
    """[DOALL, S] toy: the parallel stage block-stores a scratch run
    with forwarding on; the sequential stage loads the words back and
    folds them — exercising WB expansion at ``mtx_begin``."""

    name = "toy-block-forward"
    suite = "tests"
    description = "forwarded block stores"
    paradigm = "DSWP+[Spec-DOALL,S]"
    speculation = ("MV",)

    block_words = 4

    def build(self, uva, owner, store):
        self.scratch_base = uva.malloc_page_aligned(
            owner, self.iterations * self.block_words * 8
        )
        self.out_base = uva.malloc_page_aligned(owner, self.iterations * 8)

    def _values(self, iteration):
        return [(3 * iteration + k) * (k + 1) for k in range(self.block_words)]

    def _scratch(self, iteration):
        return self.scratch_base + 8 * self.block_words * iteration

    def sequential_body(self, ctx):
        i = ctx.iteration
        yield from ctx.store_block(self._scratch(i), self._values(i))
        values = yield from ctx.load_block(self._scratch(i), self.block_words)
        yield from ctx.store(self.out_base + 8 * i, sum(values))

    def _stage0(self, ctx):
        i = ctx.iteration
        yield from ctx.store_block(self._scratch(i), self._values(i), forward=True)

    def _stage1(self, ctx):
        i = ctx.iteration
        total = 0
        for k in range(self.block_words):
            value = yield from ctx.load(self._scratch(i) + 8 * k)
            total += value
        yield from ctx.store(self.out_base + 8 * i, total, forward=False)

    def dsmtx_plan(self):
        return ParallelPlan(
            self,
            scheme="dsmtx",
            pipeline=PipelineConfig.from_kinds(["DOALL", "S"]),
            stage_bodies=[self._stage0, self._stage1],
            label="DSWP+[Spec-DOALL,S]",
        )

    def tls_plan(self):
        raise ConfigurationError("forwarding toy is pipeline-only")


def test_forwarded_block_stores_reach_later_stages():
    workload = ForwardingPipeline(iterations=24)
    system = DSMTXSystem(workload.dsmtx_plan(), SystemConfig(total_cores=8))
    result = system.run()
    assert result.iterations == 24
    assert system.stats.misspeculations == 0
    master = system.commit.master
    for i in range(24):
        expected = workload._values(i)
        assert master.read_block(workload._scratch(i), workload.block_words) == expected
        assert master.read(workload.out_base + 8 * i) == sum(expected)


# ---------------------------------------------------------------------------
# Replication: WRITE_BLOCK entries stream to the standby word for word
# ---------------------------------------------------------------------------

REPL_CONFIG = dict(
    total_cores=8,
    fault_tolerance=True,
    commit_replication=True,
    placement="spread",
    batch_bytes=64,
    checkpoint_interval_mtxs=8,
)


def test_standby_expands_write_block_records():
    """The replication sink must turn one WB record into word-ordered
    replay pairs so folds and promotion stay per-word."""
    from collections import deque
    from types import SimpleNamespace

    from repro.core.messages import REPL_CHECKPOINT, REPL_FRONTIER

    system = make_system(ToyDoall(iterations=8), **REPL_CONFIG)
    standby = system.standby
    queue = SimpleNamespace(
        delivered=deque([
            (WRITE, 0, "a"),
            (WRITE_BLOCK, 4088, ("b", "c", "d")),  # straddles pages 0/1
            (REPL_FRONTIER, 2),
            (WRITE_BLOCK, 8, (7,)),
            (REPL_FRONTIER, 3),
        ])
    )

    def feed():
        # Drive the drain generator directly: its memory effects are
        # synchronous, the yielded events are just simulated time.
        for _event in standby._drain_repl(queue):
            pass

    feed()
    assert standby.frontier == 3
    assert standby.replay_log == [
        (0, "a"), (4088, "b"), (4096, "c"), (4104, "d"), (8, 7),
    ]
    assert system.stats.ft_repl_words == 5

    # A checkpoint marker folds the expanded pairs into the base image.
    queue.delivered.append((REPL_CHECKPOINT, 3))
    feed()
    assert standby.replay_log == []
    assert standby.image.read_block(4088, 3) == ["b", "c", "d"]
    assert standby.image.read(0) == "a"
    assert standby.image.read(8) == 7


def test_block_leg_failover_commits_identical_memory():
    """Losing the commit node mid-run on the *block* leg must finish via
    standby promotion with memory identical to the fault-free block-leg
    run — WB records survive streaming, folding and promotion replay."""
    from repro.chaos import ChaosEngine, FaultPlan, NodeCrash

    def build(plan=None):
        workload = BENCHMARKS["456.hmmer"](iterations=16, access="block")
        system = DSMTXSystem(workload.dsmtx_plan(), SystemConfig(**REPL_CONFIG))
        if plan is not None:
            ChaosEngine(plan).attach(system.env)
        return system

    reference = build()
    ref_result = reference.run()
    assert reference.stats.ft_repl_words > 0  # the stream really ran

    crash_node = reference.cluster.node_of_core(
        reference._core_indices[reference.commit_tid]
    )
    plan = FaultPlan(
        faults=(NodeCrash(node=crash_node, at_s=0.7 * ref_result.elapsed_seconds),),
        seed=7,
    )
    system = build(plan)
    result = system.run()
    assert result.stats.ft_promotions == 1
    assert result.stats.committed_mtxs == ref_result.stats.committed_mtxs
    assert memory_fingerprint(system.commit.master) == memory_fingerprint(
        reference.commit.master
    )
