"""Tests for the metrics registry: counters, gauges, histograms."""

import pytest

from repro.obs.metrics import (
    BYTES_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_accumulates():
    counter = Counter("c")
    counter.inc()
    counter.inc(41)
    assert counter.value == 42


def test_counter_rejects_decrease():
    counter = Counter("c")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_counter_is_overflow_free():
    counter = Counter("c")
    huge = 2**64
    counter.inc(huge)
    counter.inc(huge)
    assert counter.value == 2 * huge  # Python ints: exact at any scale


def test_gauge_moves_both_ways():
    gauge = Gauge("g")
    gauge.set(3.5)
    gauge.add(-1.0)
    assert gauge.value == 2.5


def test_histogram_bucketing():
    hist = Histogram("h", buckets=(10, 100, 1000))
    for value in (1, 9, 10, 11, 100, 999, 1000, 5000):
        hist.observe(value)
    # bisect_left on upper bounds: value <= bound lands in that bucket.
    assert hist.counts == [3, 2, 2, 1]
    assert hist.total == 8
    assert hist.sum == 1 + 9 + 10 + 11 + 100 + 999 + 1000 + 5000
    assert hist.cumulative() == [3, 5, 7, 8]


def test_histogram_boundary_values_inclusive():
    hist = Histogram("h", buckets=(16, 64))
    hist.observe(16)
    hist.observe(64)
    assert hist.counts == [1, 1, 0]


def test_histogram_overflow_slot():
    hist = Histogram("h", buckets=(1,))
    hist.observe(10**12)
    assert hist.counts == [0, 1]


def test_histogram_mean():
    hist = Histogram("h", buckets=(100,))
    assert hist.mean == 0.0
    hist.observe(10)
    hist.observe(30)
    assert hist.mean == 20.0


def test_histogram_validates_buckets():
    with pytest.raises(ValueError):
        Histogram("h", buckets=())
    with pytest.raises(ValueError):
        Histogram("h", buckets=(10, 10))
    with pytest.raises(ValueError):
        Histogram("h", buckets=(100, 10))


def test_registry_get_or_create_shares_instances():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.histogram("h").buckets == BYTES_BUCKETS
    assert len(registry) == 2
    assert "a" in registry and "missing" not in registry


def test_registry_rejects_kind_mismatch():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    with pytest.raises(TypeError):
        registry.histogram("x")


def test_registry_snapshot_and_render():
    registry = MetricsRegistry()
    registry.counter("c").inc(7)
    registry.gauge("g").set(1.5)
    registry.histogram("h", buckets=(10,)).observe(3)
    snap = registry.snapshot()
    assert snap["c"] == 7
    assert snap["g"] == 1.5
    assert snap["h"]["total"] == 1 and snap["h"]["counts"] == [1, 0]
    text = registry.render()
    assert "c" in text and "n=1" in text
