"""Tier-1 guard: observability is free when disabled.

Three claims, strongest first:

1. An uninstrumented run records nothing anywhere (no events can leak
   through a stale hook).
2. Instrumentation does not perturb the simulation: an instrumented run
   reproduces the uninstrumented run's simulated results *exactly* —
   the hooks only read the clock.
3. The disabled hooks' wall-clock cost is in the noise: a run without
   instrumentation is no more than 5% slower than the same run with it
   (the instrumented run does strictly more work, so this bounds the
   disabled-path overhead without comparing two noisy equals).
"""

import time

from repro.core import DSMTXSystem, SystemConfig
from repro.obs import detach, instrument
from repro.workloads import Crc32


def _build(instrumented):
    workload = Crc32(iterations=24, misspec_iterations={12})
    system = DSMTXSystem(workload.dsmtx_plan(), SystemConfig(total_cores=8))
    hub = instrument(system) if instrumented else None
    return system, hub


def _fingerprint(system):
    stats = system.stats
    return (
        stats.elapsed_seconds,
        stats.committed_mtxs,
        stats.misspeculations,
        stats.queue_bytes,
        stats.queue_batches,
        stats.coa_pages_served,
        stats.words_committed,
        system.env.events_processed,
        tuple((r.misspec_iteration, r.erm_seconds, r.flq_seconds, r.seq_seconds)
              for r in stats.recoveries),
    )


def test_disabled_records_zero_events():
    system, _ = _build(instrumented=False)
    system.run()
    assert system.obs is None
    assert system.env.obs is None
    assert system.stats.observer is None
    for worker in system.workers:
        assert worker.space.obs is None


def test_detach_stops_recording():
    system, hub = _build(instrumented=True)
    detach(system)
    system.run()
    assert len(hub.tracer) == 0
    assert len(hub.metrics) == 0


def test_instrumentation_is_timing_invariant():
    plain, _ = _build(instrumented=False)
    plain.run()
    traced, hub = _build(instrumented=True)
    traced.run()
    assert _fingerprint(plain) == _fingerprint(traced)
    assert len(hub.tracer) > 0  # and it actually recorded something


def test_fused_loop_reports_every_event_to_step_listeners():
    # The fused run() loop keeps a local alias of the step-listener
    # list; it must still observe every processed event — including the
    # fast-path timeouts created by env.sleep() — when instrumentation
    # is attached before the run.
    system, _ = _build(instrumented=True)
    seen = []
    system.env.add_step_listener(lambda event: seen.append(event))
    system.run()
    assert len(seen) == system.env.events_processed


def test_listener_attached_mid_run_sees_remaining_events():
    # add/remove_step_listener mutate the list in place, so attaching a
    # listener from inside a step takes effect within the fused loop.
    from repro.sim import Environment

    env = Environment()
    seen = []

    def late():
        yield env.sleep(1.0)
        env.add_step_listener(lambda event: seen.append(event))
        yield env.sleep(1.0)
        yield env.sleep(1.0)

    env.process(late())
    env.run()
    # Listeners are notified after an event's callbacks run, so the
    # attaching event itself is seen too: the sleep that attached, the
    # two later sleeps, and the process-completion event.
    assert len(seen) == 4


def test_disabled_wall_clock_overhead_under_5_percent():
    def best_of(instrumented, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            system, _ = _build(instrumented)
            begin = time.perf_counter()
            system.run()
            best = min(best, time.perf_counter() - begin)
        return best

    disabled = best_of(False)
    enabled = best_of(True)
    # The enabled run does strictly more work, so the disabled hooks'
    # cost is bounded by any margin the enabled run needs.
    assert disabled <= enabled * 1.05, (disabled, enabled)
