"""Exporter tests: trace_event JSON schema validity and CSV flattening,
over a real instrumented run."""

import csv
import io
import json

import pytest

from repro.core import DSMTXSystem, SystemConfig
from repro.obs import chrome_trace, instrument, trace_csv, write_chrome_trace
from repro.obs.export import CSV_COLUMNS
from repro.workloads import Crc32

REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")


@pytest.fixture(scope="module")
def traced_run():
    """One instrumented crc32 run with an injected misspeculation."""
    workload = Crc32(iterations=48, misspec_iterations={24})
    system = DSMTXSystem(workload.dsmtx_plan(), SystemConfig(total_cores=8))
    hub = instrument(system)
    system.run()
    hub.finalize(system)
    return hub


def test_trace_json_is_valid_and_schema_complete(traced_run):
    text = json.dumps(chrome_trace(traced_run.tracer, metadata={"bench": "crc32"}))
    doc = json.loads(text)  # round-trips: valid JSON
    events = doc["traceEvents"]
    assert len(events) > 100
    for event in events:
        for key in REQUIRED_KEYS:
            assert key in event, f"event missing {key!r}: {event}"
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["bench"] == "crc32"


def test_trace_covers_all_subsystems(traced_run):
    categories = traced_run.tracer.categories()
    assert len(categories) >= 5
    # MPI, commit, memory-fault and recovery activity must all appear.
    assert {"mpi.send", "mpi.recv", "queue", "commit", "page_fault",
            "worker.compute"} <= categories
    assert {"recovery.drain", "recovery.erm", "recovery.flq",
            "recovery.seq"} <= categories


def test_trace_event_phases(traced_run):
    doc = chrome_trace(traced_run.tracer)
    by_phase = {}
    for event in doc["traceEvents"]:
        by_phase.setdefault(event["ph"], []).append(event)
    for span in by_phase["X"]:
        assert "dur" in span and span["dur"] >= 0
    for instant in by_phase["i"]:
        assert instant["s"] == "t"
    # Track-name metadata is emitted for Perfetto.
    names = {e["name"] for e in by_phase["M"]}
    assert names == {"process_name", "thread_name"}


def test_events_sorted_by_timestamp(traced_run):
    doc = chrome_trace(traced_run.tracer)
    stamps = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
    assert stamps == sorted(stamps)


def test_write_chrome_trace_loads_back(traced_run, tmp_path):
    path = tmp_path / "out.json"
    write_chrome_trace(traced_run.tracer, path, metadata={"k": "v"})
    doc = json.loads(path.read_text())
    assert doc["otherData"]["k"] == "v"
    assert len(doc["traceEvents"]) == (
        len(traced_run.tracer.events)
        + len(traced_run.tracer.process_names)
        + len(traced_run.tracer.thread_names)
    )


def test_trace_csv_flattens_every_event(traced_run):
    text = trace_csv(traced_run.tracer.events)
    rows = list(csv.reader(io.StringIO(text)))
    assert tuple(rows[0]) == CSV_COLUMNS
    assert len(rows) == len(traced_run.tracer.events) + 1
    categories = {row[3] for row in rows[1:]}
    assert "mpi.send" in categories and "commit" in categories


def test_metrics_snapshot_embeds_run_stats(traced_run):
    snap = traced_run.metrics.snapshot()
    assert snap["run.committed_mtxs"] == 48
    assert snap["run.misspeculations"] == 1
    assert snap["recovery.episodes"] == 1
    assert snap["mpi.sends"] > 0
    assert snap["queue.bytes.forward"] > 0
