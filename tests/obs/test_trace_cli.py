"""Smoke tests for the `repro trace` CLI subcommand."""

import json

from repro.cli import main


def test_trace_crc32_writes_perfetto_file(tmp_path, capsys):
    out = tmp_path / "crc32.trace.json"
    assert main(["trace", "crc32", "--cores", "8", "--out", str(out)]) == 0

    doc = json.loads(out.read_text())
    events = doc["traceEvents"]
    assert len(events) > 100
    for event in events:
        for key in ("ph", "ts", "pid", "tid", "name"):
            assert key in event
    categories = {e.get("cat") for e in events if e["ph"] not in ("M",)}
    assert len(categories) >= 5
    # The default injected misspeculation makes recovery visible.
    assert {"mpi.send", "commit", "page_fault", "recovery.seq"} <= categories
    assert doc["otherData"]["benchmark"] == "crc32"
    assert doc["otherData"]["metrics"]["run.misspeculations"] == 1

    printed = capsys.readouterr().out
    assert "time attribution" in printed
    assert "timeline" in printed
    assert "legend:" in printed


def test_trace_no_misspec_skips_recovery(tmp_path, capsys):
    out = tmp_path / "clean.json"
    assert main(["trace", "crc32", "--cores", "8", "--out", str(out),
                 "--no-misspec"]) == 0
    doc = json.loads(out.read_text())
    categories = {e.get("cat") for e in doc["traceEvents"]}
    assert not any(c and c.startswith("recovery.") for c in categories)
    capsys.readouterr()


def test_trace_csv_option(tmp_path, capsys):
    out = tmp_path / "t.json"
    csv_path = tmp_path / "t.csv"
    assert main(["trace", "crc32", "--cores", "8", "--iterations", "16",
                 "--out", str(out), "--csv", str(csv_path)]) == 0
    header = csv_path.read_text().splitlines()[0]
    assert header.startswith("ts_us,dur_us,ph,category,name")
    capsys.readouterr()
