"""Tests for the span tracer."""

import pytest

from repro.obs.tracer import (
    ALL_CATEGORIES,
    CAT_COMMIT,
    CAT_QUEUE,
    PID_RUNTIME,
    SpanTracer,
)
from repro.sim import Environment


def test_complete_span_converts_to_microseconds():
    env = Environment()
    tracer = SpanTracer(env)

    def proc():
        start = env.now
        yield env.timeout(0.001)
        tracer.complete(CAT_QUEUE, "push:q", PID_RUNTIME, 3, start, bytes=64)

    env.process(proc())
    env.run()
    (event,) = tracer.events
    assert event.ph == "X"
    assert event.ts == 0.0
    assert event.dur == pytest.approx(1000.0)  # 1 ms -> 1000 us
    assert event.args == {"bytes": 64}
    assert tracer.last_ts() == pytest.approx(1000.0)


def test_complete_span_with_explicit_end():
    env = Environment()
    tracer = SpanTracer(env)
    tracer.complete(CAT_COMMIT, "x", PID_RUNTIME, 0, 0.5, end_s=0.75)
    (event,) = tracer.events
    assert event.ts == pytest.approx(500_000.0)
    assert event.dur == pytest.approx(250_000.0)


def test_span_context_manager_records_on_exception():
    env = Environment()
    tracer = SpanTracer(env)
    with pytest.raises(RuntimeError):
        with tracer.span(CAT_QUEUE, "work", PID_RUNTIME, 1):
            raise RuntimeError("boom")
    assert len(tracer) == 1


def test_instant_and_counter_phases():
    env = Environment()
    tracer = SpanTracer(env)
    tracer.instant(CAT_QUEUE, "marker", PID_RUNTIME, 0, page=3)
    tracer.counter_sample("committed", PID_RUNTIME, 0, mtxs=7)
    phases = {e.ph for e in tracer.events}
    assert phases == {"i", "C"}
    # Counter samples are not a category of their own.
    assert tracer.categories() == {CAT_QUEUE}
    assert tracer.spans() == []


def test_capacity_bounds_and_counts_drops():
    env = Environment()
    tracer = SpanTracer(env, capacity=2)
    for _ in range(5):
        tracer.instant(CAT_QUEUE, "m", PID_RUNTIME, 0)
    assert len(tracer) == 2
    assert tracer.dropped == 3


def test_capacity_validation():
    with pytest.raises(ValueError):
        SpanTracer(Environment(), capacity=0)


def test_track_names():
    tracer = SpanTracer(Environment())
    tracer.set_process_name(PID_RUNTIME, "units")
    tracer.set_thread_name(PID_RUNTIME, 2, "worker[0.2]")
    assert tracer.process_names[PID_RUNTIME] == "units"
    assert tracer.thread_names[(PID_RUNTIME, 2)] == "worker[0.2]"


def test_category_constants_are_distinct():
    assert len(set(ALL_CATEGORIES)) == len(ALL_CATEGORIES) == 16
