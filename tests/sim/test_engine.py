"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.errors import (
    DeadlockError,
    EventAlreadyTriggered,
    ProcessInterrupt,
    SimulationError,
)
from repro.sim import Environment


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    times = []

    def proc():
        yield env.timeout(3.0)
        times.append(env.now)
        yield env.timeout(2.0)
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [3.0, 5.0]


def test_timeout_value_is_delivered():
    env = Environment()
    got = []

    def proc():
        value = yield env.timeout(1.0, value="hello")
        got.append(value)

    env.process(proc())
    env.run()
    assert got == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_process_return_value_via_run_until():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        return 42

    result = env.run(until=env.process(proc()))
    assert result == 42


def test_process_exception_propagates_from_run():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        env.run(until=env.process(proc()))


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(10.0)

    env.process(proc())
    env.run(until=25.0)
    assert env.now == 25.0


def test_run_until_past_time_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def test_event_succeed_once_only():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(EventAlreadyTriggered):
        event.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    event = env.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_event_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_process_waits_on_manual_event():
    env = Environment()
    gate = env.event()
    log = []

    def waiter():
        value = yield gate
        log.append((env.now, value))

    def opener():
        yield env.timeout(7.0)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert log == [(7.0, "open")]


def test_failed_event_raises_inside_process():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    def failer():
        yield env.timeout(1.0)
        gate.fail(ValueError("bad"))

    env.process(waiter())
    env.process(failer())
    env.run()
    assert caught == ["bad"]


def test_unhandled_failed_event_surfaces():
    env = Environment()
    gate = env.event()

    def failer():
        yield env.timeout(1.0)
        gate.fail(ValueError("nobody catches me"))

    env.process(failer())
    with pytest.raises(ValueError, match="nobody catches me"):
        env.run()


def test_unhandled_failure_after_handled_one_still_surfaces():
    # The _defused flag is per-event: one event with a handler must not
    # defuse a different unhandled failure.
    env = Environment()
    handled = env.event()
    unhandled = env.event()
    caught = []

    def waiter():
        try:
            yield handled
        except ValueError as exc:
            caught.append(str(exc))

    def failer():
        yield env.timeout(1.0)
        handled.fail(ValueError("handled"))
        unhandled.fail(ValueError("nobody catches me"))

    env.process(waiter())
    env.process(failer())
    with pytest.raises(ValueError, match="nobody catches me"):
        env.run()
    assert caught == ["handled"]


def test_sleep_fast_path_matches_timeout():
    env = Environment()
    times = []

    def proc():
        yield env.sleep(3.0)
        times.append(env.now)
        yield env.sleep(0.0)
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [3.0, 3.0]


def test_sleep_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.sleep(-0.5)


def test_sleep_and_timeout_share_fifo_order():
    # sleep() is an allocation fast path, not a different event kind:
    # it must interleave with timeout() in strict creation order.
    env = Environment()
    order = []

    def via_timeout(name):
        yield env.timeout(1.0)
        order.append(name)

    def via_sleep(name):
        yield env.sleep(1.0)
        order.append(name)

    env.process(via_timeout("a"))
    env.process(via_sleep("b"))
    env.process(via_timeout("c"))
    env.run()
    assert order == ["a", "b", "c"]


def test_events_processed_counts_every_event():
    env = Environment()

    def proc():
        for _ in range(5):
            yield env.timeout(1.0)

    env.process(proc())
    env.run()
    # 1 Initialize + 5 timeouts + 1 process-completion event.
    assert env.events_processed == 7


def test_yield_non_event_is_error():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_same_time_events_fifo_order():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(1.0)
        order.append(name)

    for name in ["a", "b", "c"]:
        env.process(proc(name))
    env.run()
    assert order == ["a", "b", "c"]


def test_yield_already_processed_event_resumes():
    env = Environment()
    done = env.event()
    done.succeed("early")
    log = []

    def proc():
        value = yield done
        log.append(value)

    env.process(proc())
    env.run()
    assert log == ["early"]


def test_all_of_collects_values_in_order():
    env = Environment()
    results = []

    def proc():
        events = [env.timeout(3.0, "slow"), env.timeout(1.0, "fast")]
        values = yield env.all_of(events)
        results.append((env.now, values))

    env.process(proc())
    env.run()
    assert results == [(3.0, ["slow", "fast"])]


def test_all_of_empty_succeeds_immediately():
    env = Environment()
    results = []

    def proc():
        values = yield env.all_of([])
        results.append(values)

    env.process(proc())
    env.run()
    assert results == [[]]


def test_any_of_returns_first():
    env = Environment()
    results = []

    def proc():
        index, value = yield env.any_of([env.timeout(3.0, "slow"), env.timeout(1.0, "fast")])
        results.append((env.now, index, value))

    env.process(proc())
    env.run()
    assert results == [(1.0, 1, "fast")]


def test_interrupt_raises_inside_process():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100.0)
        except ProcessInterrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def attacker(target):
        yield env.timeout(5.0)
        target.interrupt(cause="misspec")

    target = env.process(victim())
    env.process(attacker(target))
    env.run()
    assert log == [(5.0, "misspec")]


def test_process_cannot_interrupt_itself():
    # Regression: the guard must compare the Process object itself, not
    # its resume-target event — interrupting another process from inside
    # a process is legal, interrupting yourself is not.
    env = Environment()
    errors = []

    def selfish():
        yield env.timeout(1.0)
        try:
            handle.interrupt(cause="oops")
        except SimulationError as exc:
            errors.append(str(exc))

    handle = env.process(selfish())
    env.run()
    assert errors == ["a process cannot interrupt itself"]


def test_process_can_interrupt_other_at_same_instant():
    # Companion to the self-interrupt guard: a *different* process is
    # interruptible even while the interrupter is the active process.
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100.0)
        except ProcessInterrupt as interrupt:
            log.append(interrupt.cause)

    def attacker(target):
        yield env.timeout(1.0)
        target.interrupt(cause="ok")

    target = env.process(victim())
    env.process(attacker(target))
    env.run()
    assert log == ["ok"]


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100.0)
        except ProcessInterrupt:
            pass
        yield env.timeout(1.0)
        log.append(env.now)

    def attacker(target):
        yield env.timeout(5.0)
        target.interrupt()

    target = env.process(victim())
    env.process(attacker(target))
    env.run()
    assert log == [6.0]


def test_run_until_event_that_never_triggers_deadlocks():
    env = Environment()
    never = env.event()

    def quick():
        yield env.timeout(1.0)

    env.process(quick())
    with pytest.raises(DeadlockError):
        env.run(until=never)


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(DeadlockError):
        env.step()


def test_nested_process_waits_for_child():
    env = Environment()
    log = []

    def child():
        yield env.timeout(2.0)
        return "child-result"

    def parent():
        result = yield env.process(child())
        log.append((env.now, result))

    env.process(parent())
    env.run()
    assert log == [(2.0, "child-result")]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(4.0)
    assert env.peek() == 4.0


def test_peek_empty_is_infinite():
    env = Environment()
    assert env.peek() == float("inf")


def test_deadlock_error_names_blocked_processes():
    """The deadlock report names every live process, where its generator
    is suspended, and what it waits on — the debuggability contract for
    hangs introduced by dropped or misrouted messages."""
    env = Environment()
    never = env.event()

    def consumer():
        yield never

    def idler():
        yield env.timeout(1.0)
        yield env.event()

    env.process(consumer(), name="commit-inbox-reader")
    env.process(idler())  # unnamed: falls back to the generator name
    with pytest.raises(DeadlockError) as excinfo:
        env.run(until=env.event())  # "run to completion" that never comes
    message = str(excinfo.value)
    assert "2 process(es) still blocked" in message
    assert "commit-inbox-reader" in message
    assert "idler" in message  # generator-name fallback
    assert "waiting on" in message
    assert "consumer:" in message  # suspension site of the named process


def test_deadlock_report_walks_into_nested_generators():
    env = Environment()

    def inner():
        yield env.event()

    def outer():
        yield from inner()

    env.process(outer(), name="outer-unit")
    with pytest.raises(DeadlockError) as excinfo:
        env.run(until=env.event())
    # The innermost suspended frame is reported, not the delegating one.
    assert "inner:" in str(excinfo.value)


def test_deadlock_report_caps_its_length():
    env = Environment()

    def blocked():
        yield env.event()

    for index in range(20):
        env.process(blocked(), name=f"p{index}")
    report = env.blocked_report(limit=16)
    assert "... and 4 more" in report


def test_blocked_report_is_empty_without_processes():
    assert Environment().blocked_report() == ""
