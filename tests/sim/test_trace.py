"""Tests for the simulation tracer."""

import pytest

from repro.sim import Environment
from repro.sim.trace import Tracer


def run_some_events(env):
    def proc():
        for _ in range(5):
            yield env.timeout(1.0)

    env.process(proc())
    env.run()


def test_tracer_records_events():
    env = Environment()
    tracer = Tracer(env)
    run_some_events(env)
    assert tracer.total_events > 0
    assert tracer.counts["Timeout"] == 5
    assert "Process" in tracer.counts


def test_tracer_ring_buffer_bounds_memory():
    env = Environment()
    tracer = Tracer(env, capacity=3)
    run_some_events(env)
    assert len(tracer.records) == 3
    assert tracer.total_events > 3


def test_tracer_tail_and_render():
    env = Environment()
    tracer = Tracer(env)
    run_some_events(env)
    tail = tracer.tail(2)
    assert len(tail) == 2
    text = tracer.render_tail(3)
    assert "Timeout" in text or "Process" in text
    assert "time (us)" in text


def test_tracer_records_failures():
    env = Environment()
    tracer = Tracer(env)
    gate = env.event()

    def failer():
        yield env.timeout(1.0)
        gate.fail(ValueError("boom"))

    def catcher():
        try:
            yield gate
        except ValueError:
            pass

    env.process(catcher())
    env.process(failer())
    env.run()
    assert any(not record.ok for record in tracer.records)


def test_tracer_detach_stops_recording():
    env = Environment()
    tracer = Tracer(env)
    run_some_events(env)
    before = tracer.total_events
    tracer.detach()
    run_some_events(env)
    assert tracer.total_events == before


def test_tracer_summary():
    env = Environment()
    tracer = Tracer(env)
    run_some_events(env)
    summary = tracer.summary()
    assert summary["total"] == tracer.total_events
    assert summary["Timeout"] == 5


def test_tracer_capacity_validation():
    with pytest.raises(ValueError):
        Tracer(Environment(), capacity=0)


def test_tracer_on_empty_run():
    env = Environment()
    tracer = Tracer(env)
    assert tracer.tail() == []
    assert tracer.summary() == {"total": 0}


def test_tracer_context_manager_scopes_recording():
    env = Environment()
    with Tracer(env) as tracer:
        run_some_events(env)
        inside = tracer.total_events
        assert inside > 0
    run_some_events(env)
    assert tracer.total_events == inside


def test_tracer_attach_detach_idempotent():
    env = Environment()
    tracer = Tracer(env)
    tracer.attach()  # second attach must not double-register
    run_some_events(env)
    assert tracer.counts["Timeout"] == 5
    tracer.detach()
    tracer.detach()  # second detach is a no-op
    run_some_events(env)
    assert tracer.counts["Timeout"] == 5


def test_tracer_reattach_resumes():
    env = Environment()
    tracer = Tracer(env)
    run_some_events(env)
    tracer.detach()
    before = tracer.total_events
    tracer.attach()
    run_some_events(env)
    assert tracer.total_events > before


def test_two_listeners_coexist():
    env = Environment()
    first, second = Tracer(env), Tracer(env)
    run_some_events(env)
    assert first.counts["Timeout"] == 5
    assert second.counts["Timeout"] == 5
    first.detach()
    run_some_events(env)
    assert first.counts["Timeout"] == 5
    assert second.counts["Timeout"] == 10
