"""Golden-digest determinism suite.

The hot-path refactor contract: optimizations may change how fast the
simulator runs, never *what* it simulates.  This suite runs a small
matrix of configurations — including one with injected misspeculation
and one with COA read replicas — reduces every ``RunStats`` field that
describes simulated behaviour (times, bytes, counts, per-phase recovery
breakdowns) to a canonical string, hashes it, and compares against
digests recorded from the pre-refactor engine
(``tests/sim/golden_digests.json``).

If a change to the kernel, queues, MPI layer, or memory system alters
any simulated result, the digest moves and this suite fails.  To
re-record after an *intentional* semantic change::

    PYTHONPATH=src python tests/sim/test_determinism.py --regenerate

and justify the new digests in the PR description.
"""

import hashlib
import json
import pathlib

import pytest

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_digests.json"


def _crc32(iterations=24, misspec=None):
    from repro.workloads import Crc32

    return Crc32(iterations=iterations, misspec_iterations=misspec)


def _blackscholes(iterations=64):
    from repro.workloads import BlackScholes

    return BlackScholes(iterations=iterations)


def _crash_node0_plan():
    from repro.chaos import FaultPlan, NodeCrash

    return FaultPlan(faults=(NodeCrash(node=0, at_s=0.005),), seed=7)


def _crash_commit_node_plan():
    # Node 6 hosts the commit unit under spread placement at 8 cores;
    # the crash lands mid-stream (after ~a third of the commits), so
    # the pinned episode covers checkpoint folding, replay, promotion,
    # and the degraded-mode resume from the replicated frontier.
    from repro.chaos import FaultPlan, NodeCrash

    return FaultPlan(faults=(NodeCrash(node=6, at_s=0.036754),), seed=11)


def _irregular(name, iterations=32, density=0.7):
    def factory():
        from repro.workloads import ALL_BENCHMARKS

        return ALL_BENCHMARKS[name](iterations=iterations, density=density)

    return factory


def _specfor_configs():
    """speculative_for golden configs: every irregular workload at 1, 4,
    and 8 workers.  The paradigm's guarantee — winners, rounds, and the
    committed image are functions of the iteration space alone — means a
    workload's three fingerprints differ only in timing and traffic
    lines; the round counts, reservation stats, and master-image line
    are identical (tests/paradigms/test_specfor.py asserts exactly
    that)."""
    configs = {}
    for name, short in (("spanning_forest", "sf"),
                        ("maximal_independent_set", "mis"),
                        ("list_contraction", "lc")):
        for workers in (1, 4, 8):
            configs[f"specfor_{short}_{workers}w"] = (
                _irregular(name), "specfor", {"workers": workers})
    return configs


def _sf_worker_crash_plan():
    # Spread placement at 6 cores seats worker 1 on node 1; the crash
    # lands mid-round, so the pinned episode covers suspicion, the
    # in-flight round abort, and re-partitioning over the survivors.
    from repro.chaos import FaultPlan, NodeCrash

    return FaultPlan(faults=(NodeCrash(node=1, at_s=0.00015),), seed=3)


def _sf_service_crash_plan():
    # Node 4 hosts the reservation service (tid 4 of 6 units, spread);
    # the crash covers standby promotion: shadow replay, the full-image
    # re-broadcast, and re-execution of the unreplicated rounds.
    from repro.chaos import FaultPlan, NodeCrash

    return FaultPlan(faults=(NodeCrash(node=4, at_s=0.00015),), seed=3)


def _specfor_ft_configs():
    """Fault-tolerant speculative_for goldens: the framed-transport
    fault-free run plus one worker-crash and one service-crash episode.
    The specfor_* stats lines and the master-image line of all three
    match the plain ``specfor_sf_4w`` fingerprint exactly (the paradigm
    survives crashes byte-deterministically); only timing, traffic, and
    ft_* lines differ.  tests/chaos/test_specfor_failover.py asserts the
    cross-config equality; these digests pin each episode's bytes."""
    def cfg(extra=None):
        kwargs = {
            "workers": 4,
            "config_kwargs": {
                "total_cores": 6, "fault_tolerance": True,
                "commit_replication": True, "placement": "spread",
            },
        }
        if extra:
            kwargs.update(extra)
        return kwargs

    factory = _irregular("spanning_forest", iterations=48)
    return {
        "specfor_ft_sf_4w": (factory, "specfor", cfg()),
        "specfor_ft_crashworker_sf_4w": (
            factory, "specfor", cfg({"chaos_plan": _sf_worker_crash_plan})),
        "specfor_ft_crashservice_sf_4w": (
            factory, "specfor", cfg({"chaos_plan": _sf_service_crash_plan})),
    }


#: name -> (workload factory, scheme, SystemConfig kwargs).  The extra
#: ``chaos_plan`` key (popped before SystemConfig sees it) attaches a
#: fault-injection plan: the failover episode itself must be
#: byte-reproducible, so it is pinned here like any other config.
#: Scheme ``specfor`` runs on the reservations runtime instead; its
#: kwargs hold the worker count, plus an optional ``config_kwargs``
#: dict built into the SystemConfig (fault-tolerant configs).
CONFIGS = {
    "crc32_dsmtx_8c": (lambda: _crc32(), "dsmtx", {"total_cores": 8}),
    "crc32_misspec_8c": (lambda: _crc32(misspec={12}), "dsmtx", {"total_cores": 8}),
    "crc32_replicas_8c": (lambda: _crc32(), "dsmtx",
                          {"total_cores": 8, "coa_replicas": 1}),
    "crc32_tls_8c": (lambda: _crc32(), "tls", {"total_cores": 8}),
    "blackscholes_16c": (lambda: _blackscholes(), "dsmtx", {"total_cores": 16}),
    "crc32_chaos_crash_8c": (lambda: _crc32(), "dsmtx",
                             {"total_cores": 8, "fault_tolerance": True,
                              "chaos_plan": _crash_node0_plan}),
    "crc32_failover_8c": (lambda: _crc32(iterations=96), "dsmtx",
                          {"total_cores": 8, "fault_tolerance": True,
                           "commit_replication": True, "placement": "spread",
                           "batch_bytes": 64, "checkpoint_interval_mtxs": 8,
                           "chaos_plan": _crash_commit_node_plan}),
}
CONFIGS.update(_specfor_configs())
CONFIGS.update(_specfor_ft_configs())


def run_fingerprint(name: str) -> str:
    """Canonical text of every simulated result of one config.

    Floats are rendered with ``repr`` (shortest round-trip), so any
    drift — even in the last ulp — changes the digest.
    """
    from repro.core import DSMTXSystem, SystemConfig

    factory, scheme, kwargs = CONFIGS[name]
    workload = factory()
    kwargs = dict(kwargs)
    chaos_factory = kwargs.pop("chaos_plan", None)
    if scheme == "specfor":
        from repro.paradigms import SpecForSystem

        config_kwargs = kwargs.pop("config_kwargs", None)
        if config_kwargs is not None:
            kwargs["config"] = SystemConfig(**config_kwargs)
        system = SpecForSystem(workload, **kwargs)
    else:
        plan = (workload.dsmtx_plan() if scheme == "dsmtx"
                else workload.tls_plan())
        system = DSMTXSystem(plan, SystemConfig(**kwargs))
    if chaos_factory is not None:
        from repro.chaos import ChaosEngine

        ChaosEngine(chaos_factory()).attach(system.env)
    result = system.run()
    stats = result.stats
    lines = [
        f"elapsed_seconds={stats.elapsed_seconds!r}",
        f"committed_mtxs={stats.committed_mtxs}",
        f"misspeculations={stats.misspeculations}",
        f"coa_pages_served={stats.coa_pages_served}",
        f"coa_words_served={stats.coa_words_served}",
        f"queue_bytes={stats.queue_bytes}",
        f"queue_batches={stats.queue_batches}",
        f"reads_checked={stats.reads_checked}",
        f"words_committed={stats.words_committed}",
    ]
    for purpose in sorted(stats.queue_bytes_by_purpose):
        lines.append(f"queue_bytes[{purpose}]={stats.queue_bytes_by_purpose[purpose]}")
    # Reservation-runtime lines appear only under scheme specfor, so the
    # pipeline configs' fingerprints are untouched.  The committed image
    # rides along: byte-reproducibility across worker counts is the
    # paradigm's headline claim, so the digest must pin it.
    if stats.specfor_rounds:
        from repro.analysis.resilience import memory_fingerprint

        lines.append(f"specfor_rounds={stats.specfor_rounds}")
        lines.append(f"specfor_reservations={stats.specfor_reservations}")
        lines.append(
            f"specfor_reservation_failures={stats.specfor_reservation_failures}")
        lines.append(f"specfor_commit_failures={stats.specfor_commit_failures}")
        lines.append(f"specfor_carried={stats.specfor_carried}")
        lines.append(f"master={memory_fingerprint(system.commit.master)}")
    for record in stats.recoveries:
        lines.append(
            "recovery("
            f"iter={record.misspec_iteration}, "
            f"detected_at={record.detected_at!r}, "
            f"drain={record.drain_seconds!r}, "
            f"erm={record.erm_seconds!r}, "
            f"flq={record.flq_seconds!r}, "
            f"seq={record.seq_seconds!r}, "
            f"squashed={record.squashed_iterations}, "
            f"reexecuted={record.reexecuted_iterations})"
        )
    # Fault-tolerance lines appear only when the machinery ran, so the
    # fingerprints (and golden digests) of plain configs are unchanged.
    if stats.ft_heartbeats or stats.failures:
        lines.append(f"ft_heartbeats={stats.ft_heartbeats}")
        lines.append(f"ft_acks={stats.ft_acks}")
        lines.append(f"ft_retransmits={stats.ft_retransmits}")
        lines.append(f"ft_duplicates_dropped={stats.ft_duplicates_dropped}")
        lines.append(f"ft_frames_reordered={stats.ft_frames_reordered}")
    # Commit-replication lines likewise appear only when a standby ran.
    if stats.ft_repl_words or stats.ft_promotions:
        lines.append(f"ft_repl_words={stats.ft_repl_words}")
        lines.append(f"ft_repl_folded_words={stats.ft_repl_folded_words}")
        lines.append(f"ft_promotions={stats.ft_promotions}")
        lines.append(f"ft_replayed_words={stats.ft_replayed_words}")
    # Own conditional line: only specfor worker crashes set it, so every
    # pre-existing digest (including pipeline failovers) is unchanged.
    if stats.ft_round_reexecutions:
        lines.append(f"ft_round_reexecutions={stats.ft_round_reexecutions}")
    for record in stats.failures:
        line = (
            "failure("
            f"node={record.node}, "
            f"dead_tids={record.dead_tids}, "
            f"last_heard_at={record.last_heard_at!r}, "
            f"detected_at={record.detected_at!r}, "
            f"resumed_at={record.resumed_at!r}, "
            f"restart_base={record.restart_base}, "
            f"lost={record.lost_iterations}, "
            f"survivors={record.surviving_workers}"
        )
        if record.promoted_tid >= 0:
            line += (
                f", promoted={record.promoted_tid}"
                f", promotion_s={record.promotion_seconds!r}"
                f", replayed={record.replayed_words}"
                f", recommitted={record.recommitted_iterations}"
            )
        lines.append(line + ")")
    for record in stats.checkpoints:
        lines.append(
            f"checkpoint(iter={record.iteration}, words={record.words}, "
            f"at={record.at!r})"
        )
    return "\n".join(lines)


def run_digest(name: str) -> str:
    return hashlib.sha256(run_fingerprint(name).encode()).hexdigest()


def _golden() -> dict:
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_matches_golden_digest(name):
    golden = _golden()
    assert name in golden, (
        f"no golden digest recorded for {name!r}; run "
        "'PYTHONPATH=src python tests/sim/test_determinism.py --regenerate'"
    )
    assert run_digest(name) == golden[name], (
        f"simulated results of {name!r} changed: the refactor altered "
        "behaviour, not just speed (see tests/sim/test_determinism.py)"
    )


def test_digest_is_repeatable():
    """Two runs of the same config in one process agree exactly."""
    name = "crc32_misspec_8c"
    assert run_fingerprint(name) == run_fingerprint(name)


def _regenerate() -> None:
    digests = {}
    for name in sorted(CONFIGS):
        digests[name] = run_digest(name)
        print(f"{name}: {digests[name]}")
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(digests, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
