"""Unit tests for Resource, Store, and Barrier."""

import pytest

from repro.errors import ChannelFlushedError, SimulationError
from repro.sim import Barrier, Environment, Resource, Store


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------


def test_resource_grants_up_to_capacity():
    env = Environment()
    resource = Resource(env, capacity=2)
    r1, r2, r3 = resource.request(), resource.request(), resource.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert resource.count == 2
    assert resource.queue_length == 1


def test_resource_release_wakes_waiter():
    env = Environment()
    resource = Resource(env, capacity=1)
    r1 = resource.request()
    r2 = resource.request()
    assert not r2.triggered
    resource.release(r1)
    assert r2.triggered


def test_resource_fifo_order():
    env = Environment()
    resource = Resource(env, capacity=1)
    order = []

    def user(name, hold):
        request = resource.request()
        yield request
        order.append(name)
        yield env.timeout(hold)
        resource.release(request)

    for name in ["a", "b", "c"]:
        env.process(user(name, 1.0))
    env.run()
    assert order == ["a", "b", "c"]


def test_resource_cancel_waiting_request():
    env = Environment()
    resource = Resource(env, capacity=1)
    r1 = resource.request()
    r2 = resource.request()
    resource.release(r2)  # cancel while still waiting
    assert resource.queue_length == 0
    resource.release(r1)
    assert resource.count == 0


def test_resource_bogus_release_raises():
    env = Environment()
    resource = Resource(env, capacity=1)
    with pytest.raises(SimulationError):
        resource.release(env.event())


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    log = []

    def producer():
        yield store.put("x")

    def consumer():
        item = yield store.get()
        log.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert log == ["x"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    log = []

    def consumer():
        item = yield store.get()
        log.append((env.now, item))

    def producer():
        yield env.timeout(5.0)
        yield store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert log == [(5.0, "late")]


def test_store_fifo_ordering():
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for i in range(5):
            yield store.put(i)

    def consumer():
        for _ in range(5):
            item = yield store.get()
            received.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == [0, 1, 2, 3, 4]


def test_store_bounded_put_blocks():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        yield store.put("b")
        log.append(("produced-b", env.now))

    def consumer():
        yield env.timeout(3.0)
        item = yield store.get()
        log.append(("got", item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert ("got", "a", 3.0) in log
    assert ("produced-b", 3.0) in log
    assert store.level == 1


def test_store_try_get():
    env = Environment()
    store = Store(env)
    ok, item = store.try_get()
    assert not ok and item is None
    store.put("x")
    ok, item = store.try_get()
    assert ok and item == "x"


def test_store_flush_discards_and_fails_getters():
    env = Environment()
    store = Store(env)
    caught = []

    def consumer():
        try:
            yield store.get()
        except ChannelFlushedError:
            caught.append(env.now)

    env.process(consumer())

    def flusher():
        yield env.timeout(2.0)
        store.put("doomed")
        # The waiting getter consumed "doomed" immediately, so re-add items.
        store.items.append("leftover-1")
        store.items.append("leftover-2")
        discarded = store.flush()
        caught.append(("discarded", discarded))

    env.process(flusher())
    env.run()
    # The consumer got "doomed" before flush, so only leftovers discarded.
    assert ("discarded", 2) in caught


def test_store_flush_fails_blocked_getter():
    env = Environment()
    store = Store(env)
    caught = []

    def consumer():
        try:
            yield store.get()
        except ChannelFlushedError:
            caught.append("flushed")

    def flusher():
        yield env.timeout(1.0)
        store.flush()

    env.process(consumer())
    env.process(flusher())
    env.run()
    assert caught == ["flushed"]


def test_store_flush_fails_blocked_putter():
    env = Environment()
    store = Store(env, capacity=1)
    caught = []

    def producer():
        yield store.put("a")
        try:
            yield store.put("b")
        except ChannelFlushedError:
            caught.append("flushed")

    def flusher():
        yield env.timeout(1.0)
        store.flush()

    env.process(producer())
    env.process(flusher())
    env.run()
    assert caught == ["flushed"]
    assert store.level == 0


def test_store_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


# ---------------------------------------------------------------------------
# Barrier
# ---------------------------------------------------------------------------


def test_barrier_releases_all_when_full():
    env = Environment()
    barrier = Barrier(env, parties=3)
    released = []

    def party(name, delay):
        yield env.timeout(delay)
        yield barrier.wait()
        released.append((name, env.now))

    env.process(party("a", 1.0))
    env.process(party("b", 2.0))
    env.process(party("c", 5.0))
    env.run()
    assert sorted(released) == [("a", 5.0), ("b", 5.0), ("c", 5.0)]


def test_barrier_is_reusable():
    env = Environment()
    barrier = Barrier(env, parties=2)
    generations = []

    def party():
        for _ in range(3):
            generation = yield barrier.wait()
            generations.append(generation)

    env.process(party())
    env.process(party())
    env.run()
    assert sorted(generations) == [0, 0, 1, 1, 2, 2]


def test_barrier_single_party_never_blocks():
    env = Environment()
    barrier = Barrier(env, parties=1)
    log = []

    def party():
        yield barrier.wait()
        log.append(env.now)

    env.process(party())
    env.run()
    assert log == [0.0]


def test_barrier_arrived_count():
    env = Environment()
    barrier = Barrier(env, parties=3)
    barrier.wait()
    barrier.wait()
    assert barrier.arrived == 2


def test_barrier_parties_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Barrier(env, parties=0)
