"""Tests for the baselines package."""

import pytest

from repro.baselines import compare_schemes, run_dsmtx, run_tls
from repro.core import SystemConfig
from repro.errors import ConfigurationError
from repro.workloads import ParallelPlan
from tests.core.toys import ToyDoall, ToyPipeline


def test_run_tls_executes_tls_plan():
    result = run_tls(ToyPipeline(iterations=16), SystemConfig(total_cores=6))
    assert result.iterations == 16


def test_run_dsmtx_executes_best_plan():
    result = run_dsmtx(ToyPipeline(iterations=16), SystemConfig(total_cores=6))
    assert result.iterations == 16


def test_run_tls_rejects_mislabeled_plan():
    workload = ToyPipeline(iterations=8)
    dsmtx_plan = workload.dsmtx_plan()

    class Lying(ToyPipeline):
        def tls_plan(self):
            return dsmtx_plan  # scheme == "dsmtx"

    with pytest.raises(ConfigurationError):
        run_tls(Lying(iterations=8), SystemConfig(total_cores=6))


def test_compare_schemes_reports_both():
    comparison = compare_schemes(lambda: ToyDoall(iterations=48, work_cycles=40_000),
                                 SystemConfig(total_cores=8))
    assert comparison["dsmtx"] > 1.0
    assert comparison["tls"] > 1.0
    assert comparison["best"] == max(comparison["dsmtx"], comparison["tls"])
    assert comparison["sequential_seconds"] > 0


def test_tls_slower_than_dsmtx_on_pipelined_workload():
    # ToyPipeline's TLS plan carries the sum through a cyclic sync chain;
    # at moderate core counts the Spec-DSWP plan should be at least
    # competitive.
    comparison = compare_schemes(lambda: ToyPipeline(iterations=64, work_cycles=100_000),
                                 SystemConfig(total_cores=12))
    assert comparison["dsmtx"] >= 0.8 * comparison["tls"]
