"""Cross-paradigm equivalence for the irregular (reservation-site)
workloads.

The three PBBS-style workloads are the only benchmarks runnable under
*both* execution paradigms, which buys the strongest correctness check
in the repo: for every workload, at every conflict density, sequential
execution, the DSMTX pipeline, the TLS pipeline, and the
``speculative_for`` reservations runtime must all leave the identical
observable output regions behind.
"""

import pytest

from repro.core import DSMTXSystem, SystemConfig
from repro.core.context import SequentialMeter
from repro.errors import ConfigurationError
from repro.memory import UnifiedVirtualAddressSpace
from repro.paradigms import SpecForSystem
from repro.workloads import (
    ALL_BENCHMARKS,
    BENCHMARKS,
    IRREGULAR,
    irregular_rows,
    run_body,
)
from repro.workloads.base import WriteThroughStore

#: Observable output regions: (attribute, word-count function).
OUTPUT_REGIONS = {
    "spanning_forest": [
        ("parents_base", lambda w: w.num_vertices),
        ("in_forest_base", lambda w: w.iterations),
    ],
    "maximal_independent_set": [("flags_base", lambda w: w.iterations)],
    "list_contraction": [
        ("prev_base", lambda w: w.iterations),
        ("next_base", lambda w: w.iterations),
        ("value_base", lambda w: w.iterations),
        ("out_base", lambda w: w.iterations),
    ],
}

ITERATIONS = 32
DENSITIES = (0.2, 0.8)


def _read_outputs(workload, read):
    outputs = {}
    for attr, count in OUTPUT_REGIONS[workload.name]:
        base = getattr(workload, attr)
        for index in range(count(workload)):
            outputs[(attr, index)] = read(base + 8 * index)
    return outputs


def sequential_outputs(name, density):
    workload = IRREGULAR[name](iterations=ITERATIONS, density=density)
    meter = SequentialMeter(SystemConfig(total_cores=8))
    uva = UnifiedVirtualAddressSpace(owners=1)
    workload.build(uva, 0, WriteThroughStore(meter._space))
    for iteration in range(ITERATIONS):
        meter.begin_iteration(iteration)
        run_body(workload.sequential_body(meter))
    return _read_outputs(workload, meter._space.read)


def pipeline_outputs(name, density, scheme, cores=8):
    workload = IRREGULAR[name](iterations=ITERATIONS, density=density)
    plan = workload.dsmtx_plan() if scheme == "dsmtx" else workload.tls_plan()
    system = DSMTXSystem(plan, SystemConfig(total_cores=cores))
    result = system.run()
    assert result.iterations == ITERATIONS
    return _read_outputs(workload, system.commit.master.read), system


def specfor_outputs(name, density, workers=4):
    workload = IRREGULAR[name](iterations=ITERATIONS, density=density)
    system = SpecForSystem(workload, workers=workers)
    result = system.run()
    assert result.iterations == ITERATIONS
    return _read_outputs(workload, system.commit.master.read), system


@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("name", sorted(IRREGULAR))
def test_dsmtx_matches_sequential(name, density):
    expected = sequential_outputs(name, density)
    actual, _system = pipeline_outputs(name, density, "dsmtx")
    assert actual == expected


@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("name", sorted(IRREGULAR))
def test_tls_matches_sequential(name, density):
    expected = sequential_outputs(name, density)
    actual, _system = pipeline_outputs(name, density, "tls")
    assert actual == expected


@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("name", sorted(IRREGULAR))
def test_specfor_matches_sequential(name, density):
    expected = sequential_outputs(name, density)
    actual, system = specfor_outputs(name, density)
    assert actual == expected
    assert system.service.stats.committed == ITERATIONS


@pytest.mark.parametrize("name", sorted(IRREGULAR))
def test_specfor_matches_pipelines_at_any_worker_count(name):
    expected = sequential_outputs(name, 0.6)
    for workers in (1, 8):
        actual, _system = specfor_outputs(name, 0.6, workers=workers)
        assert actual == expected


def test_conflict_density_drives_misspeculation():
    """Under the speculative pipelines the density knob is real: denser
    conflict structure forces more misspeculation work."""
    _outputs, sparse = pipeline_outputs("list_contraction", 0.2, "dsmtx")
    _outputs, dense = pipeline_outputs("list_contraction", 0.8, "dsmtx")
    assert sparse.stats.misspeculations > 0
    assert dense.stats.misspeculations > sparse.stats.misspeculations


def test_conflict_density_drives_reservation_failures():
    """Same knob, reservations side: denser structure loses more
    write_min races and carries more iterations."""
    _outputs, sparse = specfor_outputs("list_contraction", 0.2)
    _outputs, dense = specfor_outputs("list_contraction", 0.8)
    assert dense.service.stats.reservation_failures \
        > sparse.service.stats.reservation_failures
    assert dense.service.stats.num_rounds >= sparse.service.stats.num_rounds


def test_registry_shape():
    assert set(IRREGULAR) == {
        "spanning_forest", "maximal_independent_set", "list_contraction",
    }
    assert not set(IRREGULAR) & set(BENCHMARKS)
    assert set(ALL_BENCHMARKS) == set(BENCHMARKS) | set(IRREGULAR)
    rows = irregular_rows()
    assert len(rows) == 3
    for workload in IRREGULAR.values():
        assert workload(iterations=4).reservation_site() is not None


def test_density_is_validated():
    for bad in (-0.1, 1.5):
        with pytest.raises(ConfigurationError):
            IRREGULAR["spanning_forest"](iterations=4, density=bad)
