"""Correctness tests for the 11 benchmark workloads.

The strongest property the runtime offers: for every benchmark, under
both the DSMTX plan and the TLS plan, at any core count, the committed
master memory must equal what sequential execution produces.
"""

import pytest

from repro.core import DSMTXSystem, SystemConfig
from repro.core.context import SequentialMeter
from repro.memory import UnifiedVirtualAddressSpace
from repro.workloads import BENCHMARKS, run_body
from repro.workloads.base import WriteThroughStore

#: Observable output regions per benchmark: (attribute, words) with
#: words=None meaning one word per iteration.
OUTPUT_REGIONS = {
    "052.alvinn": [("partials_base", None)],
    "130.li": [("results_base", None)],
    "164.gzip": [("output_base", None)],
    "179.art": [("matches_base", None)],
    "197.parser": [("results_base", None)],
    "256.bzip2": [("output_base", None)],
    "456.hmmer": [("hist_base", 64), ("max_addr", 1)],
    "464.h264ref": [("bitstream_base", None)],
    "crc32": [("checksums_base", None)],
    "blackscholes": [("prices_base", None), ("total_addr", 1)],
    "swaptions": [("prices_base", None)],
}

#: Small-but-representative iteration counts for tests.
TEST_ITERATIONS = {
    "052.alvinn": 48,
    "130.li": 40,
    "164.gzip": 24,
    "179.art": 40,
    "197.parser": 40,
    "256.bzip2": 24,
    "456.hmmer": 48,
    "464.h264ref": 10,
    "crc32": 12,
    "blackscholes": 48,
    "swaptions": 24,
}


def sequential_outputs(name, iterations):
    """Run the workload sequentially; return {(attr, index): value}."""
    workload = BENCHMARKS[name](iterations=iterations)
    config = SystemConfig(total_cores=8)
    meter = SequentialMeter(config)
    uva = UnifiedVirtualAddressSpace(owners=1)
    workload.build(uva, 0, WriteThroughStore(meter._space))
    for iteration in range(iterations):
        meter.begin_iteration(iteration)
        run_body(workload.sequential_body(meter))
    outputs = {}
    for attr, words in OUTPUT_REGIONS[name]:
        base = getattr(workload, attr)
        count = iterations if words is None else words
        for index in range(count):
            outputs[(attr, index)] = meter._space.read(base + 8 * index)
    return outputs


def parallel_outputs(name, iterations, scheme, cores=8):
    workload = BENCHMARKS[name](iterations=iterations)
    plan = workload.dsmtx_plan() if scheme == "dsmtx" else workload.tls_plan()
    system = DSMTXSystem(plan, SystemConfig(total_cores=cores))
    result = system.run()
    assert result.iterations == iterations
    outputs = {}
    for attr, words in OUTPUT_REGIONS[name]:
        base = getattr(workload, attr)
        count = iterations if words is None else words
        for index in range(count):
            outputs[(attr, index)] = system.commit.master.read(base + 8 * index)
    return outputs, system


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_dsmtx_matches_sequential(name):
    iterations = TEST_ITERATIONS[name]
    expected = sequential_outputs(name, iterations)
    actual, system = parallel_outputs(name, iterations, "dsmtx")
    assert actual == expected
    assert system.stats.misspeculations == 0


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_tls_matches_sequential(name):
    iterations = TEST_ITERATIONS[name]
    expected = sequential_outputs(name, iterations)
    actual, _system = parallel_outputs(name, iterations, "tls")
    assert actual == expected


@pytest.mark.parametrize("name", ["164.gzip", "456.hmmer", "blackscholes"])
def test_dsmtx_correct_at_higher_core_count(name):
    iterations = TEST_ITERATIONS[name]
    expected = sequential_outputs(name, iterations)
    actual, _system = parallel_outputs(name, iterations, "dsmtx", cores=24)
    assert actual == expected


@pytest.mark.parametrize("name", ["179.art", "197.parser", "swaptions"])
def test_misspeculation_recovery_preserves_results(name):
    iterations = TEST_ITERATIONS[name]
    expected = sequential_outputs(name, iterations)
    workload = BENCHMARKS[name](
        iterations=iterations, misspec_iterations={iterations // 3}
    )
    system = DSMTXSystem(workload.dsmtx_plan(), SystemConfig(total_cores=8))
    result = system.run()
    assert system.stats.misspeculations == 1
    assert result.iterations == iterations
    for (attr, index), value in expected.items():
        base = getattr(workload, attr)
        assert system.commit.master.read(base + 8 * index) == value


def test_hmmer_tls_recovery_with_value_chain():
    # The TLS histogram chain must survive a rollback: after recovery
    # the chain restarts from committed memory.
    name = "456.hmmer"
    iterations = TEST_ITERATIONS[name]
    expected = sequential_outputs(name, iterations)
    workload = BENCHMARKS[name](iterations=iterations, misspec_iterations={7})
    system = DSMTXSystem(workload.tls_plan(), SystemConfig(total_cores=8))
    system.run()
    assert system.stats.misspeculations == 1
    for (attr, index), value in expected.items():
        base = getattr(workload, attr)
        assert system.commit.master.read(base + 8 * index) == value
