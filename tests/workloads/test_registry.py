"""Tests for the benchmark registry (Table 2)."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    BENCHMARKS,
    SPECULATION_LEGEND,
    all_benchmarks,
    table2_rows,
    workload_class,
)


def test_registry_has_all_eleven_benchmarks():
    assert len(BENCHMARKS) == 11


def test_registry_order_matches_table2():
    assert list(BENCHMARKS) == [
        "052.alvinn", "130.li", "164.gzip", "179.art", "197.parser",
        "256.bzip2", "456.hmmer", "464.h264ref", "crc32",
        "blackscholes", "swaptions",
    ]


def test_table2_metadata_complete():
    for row in table2_rows():
        assert row["suite"]
        assert row["description"]
        assert row["paradigm"]
        assert row["speculation"]


def test_table2_paper_values_spot_check():
    rows = {row["benchmark"]: row for row in table2_rows()}
    assert rows["052.alvinn"]["paradigm"] == "Spec-DOALL"
    assert rows["052.alvinn"]["speculation"] == "MV"
    assert rows["130.li"]["paradigm"] == "DSWP+[Spec-DOALL,S]"
    assert rows["130.li"]["speculation"] == "CFS/MVS/MV"
    assert rows["164.gzip"]["paradigm"] == "Spec-DSWP+[S,DOALL,S]"
    assert rows["256.bzip2"]["speculation"] == "CFS/MV"
    assert rows["456.hmmer"]["paradigm"] == "Spec-DSWP+[DOALL,S]"
    assert rows["blackscholes"]["speculation"] == "CFS"
    assert rows["swaptions"]["paradigm"] == "Spec-DOALL"


def test_speculation_legend():
    assert SPECULATION_LEGEND["CFS"] == "Control Flow Speculation"
    assert SPECULATION_LEGEND["MVS"] == "Memory Value Speculation"
    assert SPECULATION_LEGEND["MV"] == "Memory Versioning"


def test_workload_class_lookup():
    cls = workload_class("164.gzip")
    assert cls.name == "164.gzip"
    with pytest.raises(ConfigurationError):
        workload_class("999.unknown")


def test_all_benchmarks_factories_construct():
    for name, factory in all_benchmarks():
        workload = factory(iterations=8)
        assert workload.name == name
        assert workload.iterations == 8


def test_plan_labels_match_paradigms():
    # The DSMTX plan label is the Table 2 paradigm string.
    for name, factory in all_benchmarks():
        workload = factory(iterations=8)
        assert workload.dsmtx_plan().label == workload.paradigm
        assert workload.tls_plan().label == "TLS"


def test_identical_parallelizations_for_alvinn_and_swaptions():
    # Section 5.1: for 052.alvinn and swaptions the DSMTX and TLS
    # parallelizations are the same (Spec-DOALL, no communication).
    for name in ("052.alvinn", "swaptions"):
        workload = BENCHMARKS[name](iterations=8)
        dsmtx = workload.dsmtx_plan()
        tls = workload.tls_plan()
        assert dsmtx.pipeline().describe() == tls.pipeline().describe() == "[DOALL]"
        assert dsmtx.stage_body(0) == tls.stage_body(0)
