"""Tests of the workloads' modelled profiles: determinism, relative
communication volumes, and structural properties the figures rely on."""

import pytest

from repro.core import DSMTXSystem, SystemConfig
from repro.workloads import BENCHMARKS, Bzip2, Gzip, Swaptions

SMALL = {
    "052.alvinn": 48, "130.li": 32, "164.gzip": 16, "179.art": 32,
    "197.parser": 32, "256.bzip2": 12, "456.hmmer": 32, "464.h264ref": 8,
    "crc32": 12, "blackscholes": 32, "swaptions": 16,
}


def run_stats(name, cores=8):
    workload = BENCHMARKS[name](iterations=SMALL[name])
    system = DSMTXSystem(workload.dsmtx_plan(), SystemConfig(total_cores=cores))
    result = system.run()
    return result, system.stats


def test_sequential_seconds_deterministic():
    config = SystemConfig(total_cores=8)
    for name, factory in BENCHMARKS.items():
        workload_a = factory(iterations=SMALL[name])
        workload_b = factory(iterations=SMALL[name])
        assert workload_a.sequential_seconds(config) == pytest.approx(
            workload_b.sequential_seconds(config)), name


def test_parallel_runs_deterministic():
    a, stats_a = run_stats("197.parser")
    b, stats_b = run_stats("197.parser")
    assert a.elapsed_seconds == b.elapsed_seconds
    assert stats_a.queue_bytes == stats_b.queue_bytes


def test_gzip_moves_more_data_per_iteration_than_others():
    _result, gzip_stats = run_stats("164.gzip")
    _result, hmmer_stats = run_stats("456.hmmer")
    gzip_per_iter = gzip_stats.queue_bytes / SMALL["164.gzip"]
    hmmer_per_iter = hmmer_stats.queue_bytes / SMALL["456.hmmer"]
    assert gzip_per_iter > 20 * hmmer_per_iter


def test_bzip2_computes_more_per_byte_than_gzip():
    config = SystemConfig(total_cores=8)
    gzip_seq = Gzip(iterations=16).sequential_seconds(config) / 16
    bzip_seq = Bzip2(iterations=16).sequential_seconds(config) / 16
    assert bzip_seq > 2 * gzip_seq  # "the amount of computation is much more"


def test_art_iterations_are_imbalanced():
    from repro.workloads import Art

    art = Art(iterations=64)
    cycles = [art._match_cycles(i) for i in range(64)]
    assert max(cycles) > 3 * min(cycles)


def test_crc32_file_sizes_vary():
    from repro.workloads import Crc32

    crc = Crc32(iterations=24)
    assert max(crc._file_pages) > 2 * min(crc._file_pages)
    # File layout is contiguous and non-overlapping.
    for index in range(1, 24):
        assert (crc._file_first_page[index]
                == crc._file_first_page[index - 1] + crc._file_pages[index - 1])


def test_h264_iterations_model_gops():
    from repro.workloads import H264Ref

    h264 = H264Ref()
    assert h264.iterations == 40  # speedup limited by GoP count
    assert h264.encode_cycles > 10 * Swaptions.simulate_cycles


def test_speculative_read_traffic_only_where_mvs():
    # Only li and parser declare memory value speculation; only they
    # should generate read-validation traffic.
    for name in ("130.li", "197.parser"):
        _result, stats = run_stats(name)
        assert stats.reads_checked > 0, name
    for name in ("164.gzip", "blackscholes", "swaptions"):
        _result, stats = run_stats(name)
        assert stats.reads_checked == 0, name


def test_workload_requires_positive_iterations():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        Gzip(iterations=0)
