"""FaultPlan construction, validation, and seeded generation."""

import pytest

from repro.chaos import (
    FaultPlan,
    LinkDegrade,
    MessageCorruption,
    MessageDuplication,
    MessageLoss,
    NodeCrash,
    NodeStall,
    StateCorruption,
)
from repro.errors import ChaosError


def test_empty_plan_is_fault_free():
    plan = FaultPlan()
    assert plan.faults == ()
    assert plan.crashes == ()
    assert not plan.needs_random_draws
    assert plan.describe() == "fault-free"


def test_faults_are_normalized_to_a_tuple():
    plan = FaultPlan(faults=[NodeCrash(node=1, at_s=0.01)])
    assert isinstance(plan.faults, tuple)
    assert plan.crashes == plan.faults


def test_probabilistic_faults_need_draws():
    assert FaultPlan(faults=(MessageLoss(probability=0.1),)).needs_random_draws
    assert FaultPlan(
        faults=(MessageDuplication(probability=0.1),)
    ).needs_random_draws
    assert not FaultPlan(faults=(NodeCrash(node=1, at_s=0.01),)).needs_random_draws


@pytest.mark.parametrize("bad", [
    NodeCrash(node=-1, at_s=0.01),
    NodeCrash(node=0, at_s=-1.0),
    LinkDegrade(at_s=-1.0, duration_s=0.1),
    LinkDegrade(at_s=0.0, duration_s=0.0),
    LinkDegrade(at_s=0.0, duration_s=0.1, latency_factor=0.5),
    LinkDegrade(at_s=0.0, duration_s=0.1, bandwidth_factor=0.9),
    NodeStall(node=0, at_s=0.0, duration_s=-0.1),
    MessageLoss(probability=1.5),
    MessageLoss(probability=-0.1),
    MessageLoss(probability=0.5, start_s=0.2, end_s=0.1),
    MessageDuplication(probability=2.0),
    MessageCorruption(probability=1.5),
    MessageCorruption(probability=-0.01),
    MessageCorruption(probability=0.1, start_s=0.2, end_s=0.1),
    StateCorruption("memory", at_s=-1.0),
    StateCorruption("memory", at_s=0.01, words=0),
    StateCorruption("memory", at_s=0.01, words=1.5),
    "not a fault",
])
def test_invalid_faults_are_rejected(bad):
    with pytest.raises(ChaosError):
        FaultPlan(faults=(bad,))


@pytest.mark.parametrize("bad", [
    NodeCrash(node=0, at_s=float("nan")),
    NodeCrash(node=0, at_s=float("inf")),
    LinkDegrade(at_s=float("nan"), duration_s=0.1),
    LinkDegrade(at_s=0.0, duration_s=float("nan")),
    LinkDegrade(at_s=0.0, duration_s=float("inf")),
    LinkDegrade(at_s=0.0, duration_s=0.1, latency_factor=float("nan")),
    NodeStall(node=0, at_s=float("nan"), duration_s=0.1),
    NodeStall(node=0, at_s=0.0, duration_s=float("nan")),
    NodeStall(node=0, at_s=0.0, duration_s=0.0),
    MessageLoss(probability=0.5, start_s=float("nan")),
    MessageLoss(probability=float("nan")),
    MessageCorruption(probability=float("nan")),
    MessageCorruption(probability=0.1, start_s=float("nan")),
    StateCorruption("memory", at_s=float("nan")),
    StateCorruption("memory", at_s=float("inf")),
])
def test_non_finite_and_zero_length_windows_are_rejected(bad):
    # NaN fails every comparison, so naive `x < 0` validation lets it
    # through; these pin the requirement-style checks.
    with pytest.raises(ChaosError):
        FaultPlan(faults=(bad,))


def test_certain_probability_gets_a_did_you_mean_hint():
    # 1.0 is a partition, not a fault model; the message must say so.
    for kind in (MessageLoss, MessageDuplication, MessageCorruption):
        with pytest.raises(ChaosError, match=r"did you\s+mean 0\.999"):
            FaultPlan(faults=(kind(probability=1.0),))


def test_unknown_corruption_target_names_the_valid_ones():
    with pytest.raises(
        ChaosError, match="memory, checkpoint, speculative"
    ):
        FaultPlan(faults=(StateCorruption("master", at_s=0.01),))


def test_corruption_faults_need_draws_but_scheduled_flips_do_not():
    assert FaultPlan(
        faults=(MessageCorruption(probability=0.1),)
    ).needs_random_draws
    # A scheduled state flip seeds its own RNG from the plan; it is not
    # a per-message draw.
    assert not FaultPlan(
        faults=(StateCorruption("memory", at_s=0.01),)
    ).needs_random_draws


def test_state_corruptions_property_filters_the_schedule():
    flips = (
        StateCorruption("memory", at_s=0.01),
        StateCorruption("checkpoint", at_s=0.02, words=3),
    )
    plan = FaultPlan(faults=flips + (NodeCrash(node=1, at_s=0.03),))
    assert plan.state_corruptions == flips


def test_overlapping_degrade_windows_are_rejected():
    with pytest.raises(ChaosError, match="overlapping link-degradation"):
        FaultPlan(faults=(
            LinkDegrade(at_s=0.0, duration_s=0.010),
            LinkDegrade(at_s=0.005, duration_s=0.010),
        ))
    # Order in the faults tuple must not matter.
    with pytest.raises(ChaosError, match="overlapping"):
        FaultPlan(faults=(
            LinkDegrade(at_s=0.005, duration_s=0.010),
            LinkDegrade(at_s=0.0, duration_s=0.010),
        ))


def test_identical_degrade_windows_are_rejected_as_overlapping():
    window = LinkDegrade(at_s=0.001, duration_s=0.002)
    with pytest.raises(ChaosError, match="overlapping"):
        FaultPlan(faults=(window, window))


def test_back_to_back_degrade_windows_are_allowed():
    plan = FaultPlan(faults=(
        LinkDegrade(at_s=0.0, duration_s=0.005),
        LinkDegrade(at_s=0.005, duration_s=0.005, latency_factor=8.0),
    ))
    assert len(plan.faults) == 2


def test_stall_windows_on_different_nodes_may_overlap():
    # The overlap rule is about the shared fabric (LinkDegrade);
    # per-node stalls on different nodes are independent gray failures.
    plan = FaultPlan(faults=(
        NodeStall(node=0, at_s=0.0, duration_s=0.01),
        NodeStall(node=1, at_s=0.005, duration_s=0.01),
    ))
    assert len(plan.faults) == 2


def test_random_plan_is_seed_deterministic():
    a = FaultPlan.random(42, nodes=4, horizon_s=0.02, crashes=2,
                         degrade_windows=1, stalls=1, loss=0.01, duplication=0.01)
    b = FaultPlan.random(42, nodes=4, horizon_s=0.02, crashes=2,
                         degrade_windows=1, stalls=1, loss=0.01, duplication=0.01)
    assert a == b
    c = FaultPlan.random(43, nodes=4, horizon_s=0.02, crashes=2)
    assert c.crashes != a.crashes


def test_random_plan_never_generates_overlapping_degrades():
    # Many windows in a short horizon would overlap if placed naively;
    # random() must lay them out disjointly (validation would reject
    # the plan otherwise).
    for seed in range(16):
        plan = FaultPlan.random(seed, nodes=4, horizon_s=0.01,
                                crashes=0, degrade_windows=5)
        windows = sorted(
            (f for f in plan.faults if isinstance(f, LinkDegrade)),
            key=lambda f: f.at_s,
        )
        assert len(windows) == 5
        for earlier, later in zip(windows, windows[1:]):
            assert later.at_s >= earlier.at_s + earlier.duration_s


def test_random_plan_spares_node_zero_by_default():
    # Node 0 conventionally hosts the commit unit under pack placement.
    for seed in range(8):
        plan = FaultPlan.random(seed, nodes=3, horizon_s=0.01, crashes=2)
        assert all(crash.node != 0 for crash in plan.crashes)


def test_random_plan_respects_crashable_nodes():
    plan = FaultPlan.random(1, nodes=8, horizon_s=0.01, crashes=3,
                            crashable_nodes=[5])
    assert [crash.node for crash in plan.crashes] == [5]


def test_random_plan_crash_times_land_mid_run():
    plan = FaultPlan.random(3, nodes=4, horizon_s=1.0, crashes=3)
    for crash in plan.crashes:
        assert 0.2 <= crash.at_s <= 0.7


def test_random_plan_rejects_degenerate_inputs():
    with pytest.raises(ChaosError):
        FaultPlan.random(0, nodes=1, horizon_s=1.0)
    with pytest.raises(ChaosError):
        FaultPlan.random(0, nodes=4, horizon_s=0.0)


def test_describe_lists_faults_in_schedule_order():
    plan = FaultPlan(faults=(
        NodeCrash(node=2, at_s=0.02),
        LinkDegrade(at_s=0.001, duration_s=0.002),
        MessageLoss(probability=0.1, start_s=0.005, end_s=0.01),
    ))
    lines = plan.describe().splitlines()
    assert "LinkDegrade" in lines[0]
    assert "MessageLoss" in lines[1]
    assert "NodeCrash" in lines[2]
