"""FaultPlan construction, validation, and seeded generation."""

import pytest

from repro.chaos import (
    FaultPlan,
    LinkDegrade,
    MessageDuplication,
    MessageLoss,
    NodeCrash,
    NodeStall,
)
from repro.errors import ChaosError


def test_empty_plan_is_fault_free():
    plan = FaultPlan()
    assert plan.faults == ()
    assert plan.crashes == ()
    assert not plan.needs_random_draws
    assert plan.describe() == "fault-free"


def test_faults_are_normalized_to_a_tuple():
    plan = FaultPlan(faults=[NodeCrash(node=1, at_s=0.01)])
    assert isinstance(plan.faults, tuple)
    assert plan.crashes == plan.faults


def test_probabilistic_faults_need_draws():
    assert FaultPlan(faults=(MessageLoss(probability=0.1),)).needs_random_draws
    assert FaultPlan(
        faults=(MessageDuplication(probability=0.1),)
    ).needs_random_draws
    assert not FaultPlan(faults=(NodeCrash(node=1, at_s=0.01),)).needs_random_draws


@pytest.mark.parametrize("bad", [
    NodeCrash(node=-1, at_s=0.01),
    NodeCrash(node=0, at_s=-1.0),
    LinkDegrade(at_s=-1.0, duration_s=0.1),
    LinkDegrade(at_s=0.0, duration_s=0.0),
    LinkDegrade(at_s=0.0, duration_s=0.1, latency_factor=0.5),
    LinkDegrade(at_s=0.0, duration_s=0.1, bandwidth_factor=0.9),
    NodeStall(node=0, at_s=0.0, duration_s=-0.1),
    MessageLoss(probability=1.5),
    MessageLoss(probability=-0.1),
    MessageLoss(probability=0.5, start_s=0.2, end_s=0.1),
    MessageDuplication(probability=2.0),
    "not a fault",
])
def test_invalid_faults_are_rejected(bad):
    with pytest.raises(ChaosError):
        FaultPlan(faults=(bad,))


def test_random_plan_is_seed_deterministic():
    a = FaultPlan.random(42, nodes=4, horizon_s=0.02, crashes=2,
                         degrade_windows=1, stalls=1, loss=0.01, duplication=0.01)
    b = FaultPlan.random(42, nodes=4, horizon_s=0.02, crashes=2,
                         degrade_windows=1, stalls=1, loss=0.01, duplication=0.01)
    assert a == b
    c = FaultPlan.random(43, nodes=4, horizon_s=0.02, crashes=2)
    assert c.crashes != a.crashes


def test_random_plan_spares_node_zero_by_default():
    # Node 0 conventionally hosts the commit unit under pack placement.
    for seed in range(8):
        plan = FaultPlan.random(seed, nodes=3, horizon_s=0.01, crashes=2)
        assert all(crash.node != 0 for crash in plan.crashes)


def test_random_plan_respects_crashable_nodes():
    plan = FaultPlan.random(1, nodes=8, horizon_s=0.01, crashes=3,
                            crashable_nodes=[5])
    assert [crash.node for crash in plan.crashes] == [5]


def test_random_plan_crash_times_land_mid_run():
    plan = FaultPlan.random(3, nodes=4, horizon_s=1.0, crashes=3)
    for crash in plan.crashes:
        assert 0.2 <= crash.at_s <= 0.7


def test_random_plan_rejects_degenerate_inputs():
    with pytest.raises(ChaosError):
        FaultPlan.random(0, nodes=1, horizon_s=1.0)
    with pytest.raises(ChaosError):
        FaultPlan.random(0, nodes=4, horizon_s=0.0)


def test_describe_lists_faults_in_schedule_order():
    plan = FaultPlan(faults=(
        NodeCrash(node=2, at_s=0.02),
        LinkDegrade(at_s=0.001, duration_s=0.002),
        MessageLoss(probability=0.1, start_s=0.005, end_s=0.01),
    ))
    lines = plan.describe().splitlines()
    assert "LinkDegrade" in lines[0]
    assert "MessageLoss" in lines[1]
    assert "NodeCrash" in lines[2]
