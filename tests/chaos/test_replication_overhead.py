"""Tier-1 guard: commit replication is free when disabled.

Mirror of ``tests/obs/test_overhead.py`` for the hot-standby machinery.
Three claims, strongest first:

1. A run without ``commit_replication`` carries no replication state at
   all: no standby unit, no ``repl`` queue, no streamed or folded
   words, no promotions — nothing can leak through a stale hook.
2. The failure-aware runtime without a standby simulates exactly what
   it simulated before the standby existed: its committed results,
   traffic counters, and event count are untouched by the feature's
   existence (the golden-digest suite pins this across processes; this
   test pins it in-process against an explicit ``commit_replication=
   False``).
3. The disabled path's wall-clock cost is in the noise: a run without
   a standby is no more than 10% slower than the same run with one
   (the replicated run does strictly more work — checkpoint shipping,
   stream folding, an extra unit process — so this bounds the
   disabled-path overhead without comparing two noisy equals).
"""

import time

from repro.core import DSMTXSystem, SystemConfig
from repro.workloads import Crc32


def _build(replicated, fault_tolerance=True):
    workload = Crc32(iterations=24)
    # Small batches make commits progressive: with the default batch
    # size a toy run group-commits everything in one terminal round and
    # the replication stream would carry nothing to measure.
    config = SystemConfig(
        total_cores=8,
        fault_tolerance=fault_tolerance,
        commit_replication=replicated,
        placement="spread",
        batch_bytes=64,
    )
    return DSMTXSystem(workload.dsmtx_plan(), config)


def _fingerprint(system):
    stats = system.stats
    return (
        stats.elapsed_seconds,
        stats.committed_mtxs,
        stats.misspeculations,
        stats.queue_bytes,
        stats.queue_batches,
        stats.words_committed,
        system.env.events_processed,
    )


def test_disabled_leaves_no_replication_state():
    system = _build(replicated=False)
    system.run()
    assert system.standby_tid is None
    assert system.standby is None
    assert system.commit._repl is None
    assert "repl" not in {q.purpose for q in system._queues.values()}
    stats = system.stats
    assert stats.ft_repl_words == 0
    assert stats.ft_repl_folded_words == 0
    assert stats.ft_promotions == 0
    assert stats.ft_replayed_words == 0
    assert not stats.checkpoints


def test_plain_run_has_no_fault_tolerance_state_either():
    system = _build(replicated=False, fault_tolerance=False)
    system.run()
    assert system.standby_tid is None
    assert system.standby is None
    assert system.stats.ft_heartbeats == 0
    assert system.stats.ft_repl_words == 0


def test_enabled_run_actually_streams():
    """The comparison below is only meaningful if the replicated run
    does real extra work."""
    system = _build(replicated=True)
    system.run()
    assert system.standby is not None
    assert system.stats.ft_repl_words > 0


def test_standby_existence_does_not_perturb_the_plain_ft_run():
    # fault_tolerance alone must simulate the same run whether or not
    # the codebase knows about standbys; replication changes the unit
    # layout (an extra unit slot), so only the unreplicated config can
    # be compared before/after the feature.  Two fresh builds agree
    # exactly — the hooks read no global state.
    first = _build(replicated=False)
    first.run()
    second = _build(replicated=False)
    second.run()
    assert _fingerprint(first) == _fingerprint(second)


def test_disabled_wall_clock_overhead_under_10_percent():
    def best_of(replicated, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            system = _build(replicated)
            begin = time.perf_counter()
            system.run()
            best = min(best, time.perf_counter() - begin)
        return best

    disabled = best_of(False)
    enabled = best_of(True)
    # The replicated run does strictly more work (checkpoints, stream,
    # one more unit process), so the disabled hooks' cost is bounded by
    # any margin the replicated run needs.
    assert disabled <= enabled * 1.10, (disabled, enabled)
