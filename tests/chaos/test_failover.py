"""Commit-unit failover end-to-end: hot-standby promotion.

The acceptance bar for commit replication: a run that loses the commit
unit's node mid-flight must finish via standby promotion with committed
memory byte-identical to the fault-free run, the whole episode must be
byte-reproducible from the plan's seed, and the unreplicated loss modes
(try-commit node, commit node with a dead standby) must still fail
loudly instead of hanging.

The fault-free reference uses the *same* replicated configuration:
workload addresses derive from the unit layout (the standby reserves a
unit slot), so only a layout-identical run is byte-comparable.
"""

import pytest

from repro.analysis import memory_fingerprint, run_digest
from repro.chaos import ChaosEngine, FaultPlan, NodeCrash
from repro.core import DSMTXSystem, SystemConfig
from repro.errors import ClusterFailedError
from tests.core.toys import ToyDoall

ITERATIONS = 96

# Small batches so worker write logs flush (and the primary group-commits)
# throughout the run rather than once at drain time: the crash then lands
# between commits and the replication stream is genuinely exercised.
CONFIG = dict(
    total_cores=8,
    fault_tolerance=True,
    commit_replication=True,
    placement="spread",
    batch_bytes=64,
    checkpoint_interval_mtxs=16,
)


def build(plan=None, **overrides):
    config = dict(CONFIG)
    config.update(overrides)
    workload = ToyDoall(iterations=ITERATIONS)
    system = DSMTXSystem(workload.dsmtx_plan(), SystemConfig(**config))
    if plan is not None:
        ChaosEngine(plan).attach(system.env)
    return workload, system


@pytest.fixture(scope="module")
def reference():
    """Fault-free run of the same replicated configuration."""
    workload, system = build()
    result = system.run()
    return workload, system, result


def node_of(system, tid):
    return system.cluster.node_of_core(system._core_indices[tid])


def crash_commit_plan(reference, fraction, seed=7):
    _workload, system, result = reference
    return FaultPlan(
        faults=(
            NodeCrash(
                node=node_of(system, system.commit_tid),
                at_s=fraction * result.elapsed_seconds,
            ),
        ),
        seed=seed,
    )


def assert_same_results(system, result, reference):
    _workload, ref_system, ref_result = reference
    assert result.stats.committed_mtxs == ref_result.stats.committed_mtxs
    assert memory_fingerprint(system.commit.master) == memory_fingerprint(
        ref_system.commit.master
    )


# -- the happy path: promotion ------------------------------------------------


def test_commit_node_crash_promotes_the_standby(reference):
    _w, ref_system, _r = reference
    standby_tid = ref_system.standby_tid
    plan = crash_commit_plan(reference, fraction=0.7)
    workload, system = build(plan)
    result = system.run()

    # The standby took over as the commit unit and the run finished.
    assert system.commit_tid == standby_tid
    assert system.commit.master is system.standby.image
    assert result.stats.ft_promotions == 1
    assert_same_results(system, result, reference)

    # The failover was recorded with its promotion accounting.
    (record,) = result.stats.failures
    assert record.promoted_tid == standby_tid
    assert record.promotion_seconds > 0
    assert record.detected_at > record.last_heard_at
    assert record.replayed_words == result.stats.ft_replayed_words >= 0
    assert record.recommitted_iterations >= 0


def test_streaming_replication_bounds_the_restart(reference):
    """A late crash must resume from the replicated frontier, not from
    iteration zero: the standby's checkpoint image plus replay log carry
    every commit the stream delivered before the primary died."""
    plan = crash_commit_plan(reference, fraction=0.7)
    _workload, system = build(plan)
    result = system.run()
    (record,) = result.stats.failures
    assert result.stats.ft_repl_words > 0  # the stream actually flowed
    assert record.restart_base > 0  # and promotion resumed mid-loop
    assert record.restart_base <= ITERATIONS
    assert_same_results(system, result, reference)


def test_crash_before_any_commit_replays_nothing_and_still_converges(reference):
    """An early crash finds an empty replay log: promotion restarts from
    the seeded initial image (the epoch-0 checkpoint) and the survivors
    re-execute everything — slower, never wrong."""
    plan = crash_commit_plan(reference, fraction=0.1)
    _workload, system = build(plan)
    result = system.run()
    (record,) = result.stats.failures
    assert record.restart_base == 0
    assert result.stats.ft_promotions == 1
    assert_same_results(system, result, reference)


def test_failover_is_byte_reproducible(reference):
    plan = crash_commit_plan(reference, fraction=0.7)
    digests = set()
    for _ in range(2):
        _workload, system = build(plan)
        result = system.run()
        digests.add(
            run_digest(result.stats, master=system.commit.master,
                       chaos=system.env.chaos)
        )
    assert len(digests) == 1


def test_fault_free_replicated_run_streams_and_commits_everything(reference):
    _workload, system, result = reference
    assert result.stats.committed_mtxs == ITERATIONS
    assert result.stats.ft_repl_words > 0
    assert result.stats.ft_repl_folded_words > 0
    assert result.stats.ft_promotions == 0
    assert not result.stats.failures
    assert system.commit_tid != system.standby_tid


# -- the loss modes that stay fatal -------------------------------------------


def test_try_commit_node_loss_is_still_fatal(reference):
    """The validation pipeline has no replica: losing its node must
    raise, with a message saying exactly which unit was lost."""
    _w, ref_system, ref_result = reference
    plan = FaultPlan(
        faults=(
            NodeCrash(
                node=node_of(ref_system, ref_system.trycommit_tid),
                at_s=0.5 * ref_result.elapsed_seconds,
            ),
        ),
        seed=7,
    )
    _workload, system = build(plan)
    with pytest.raises(ClusterFailedError, match="try-commit"):
        system.run()


def test_standby_node_crash_degrades_to_an_unreplicated_run(reference):
    """Losing the standby itself is survivable: the primary detects the
    silence, stops streaming (the replication queue would otherwise
    block on credits a dead consumer can never return), and finishes
    the run unreplicated."""
    _w, ref_system, ref_result = reference
    plan = FaultPlan(
        faults=(
            NodeCrash(node=node_of(ref_system, ref_system.standby_tid),
                      at_s=0.3 * ref_result.elapsed_seconds),
        ),
        seed=7,
    )
    _workload, system = build(plan)
    result = system.run()
    assert result.stats.ft_promotions == 0
    assert system.commit._repl is None  # streaming stopped at declaration
    assert_same_results(system, result, reference)


def test_commit_crash_with_a_dead_standby_is_still_fatal(reference):
    """Replication only helps while the standby lives: kill its node
    first, then the primary's — the second crash must fail loudly."""
    _w, ref_system, ref_result = reference
    elapsed = ref_result.elapsed_seconds
    plan = FaultPlan(
        faults=(
            NodeCrash(node=node_of(ref_system, ref_system.standby_tid),
                      at_s=0.3 * elapsed),
            NodeCrash(node=node_of(ref_system, ref_system.commit_tid),
                      at_s=0.6 * elapsed),
        ),
        seed=7,
    )
    _workload, system = build(plan)
    with pytest.raises(ClusterFailedError, match="standby"):
        system.run()
