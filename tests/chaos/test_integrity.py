"""End-to-end data integrity under injected silent corruption.

The acceptance bar for the integrity layer (docs/RESILIENCE.md):

* **Wire.**  Under probabilistic frame corruption, an ``integrity``
  run finishes with committed memory byte-identical to the fault-free
  run — checksums convert each corrupted frame into *loss*, and the
  reliable transport's retransmit machinery re-delivers the intact
  original.  The same plan without ``integrity`` commits silently
  wrong results, which is the hazard the checksums exist for.
* **Committed memory.**  The periodic scrubber audits the commit
  unit's pages against their digest table, detects flipped words, and
  repairs them from the hot standby's replicated image.
* **Durable state.**  A standby whose checkpoint image fails its
  digest check refuses promotion (fail-stop) instead of resurrecting
  corrupted state as the new truth.
* **Speculative state.**  A flipped clean word in a worker's cache is
  caught by value-based read validation on the next speculative load
  and repaired through ordinary misspeculation recovery.
* **Zero cost off.**  A run without ``integrity`` carries no
  integrity state at all.

Every episode is seed-deterministic: the same plan reproduces the
same run digest, corruption and repair included.
"""

import pytest

from repro.analysis import memory_fingerprint, run_digest
from repro.chaos import (
    ChaosEngine,
    FaultPlan,
    MessageCorruption,
    NodeCrash,
    StateCorruption,
)
from repro.core import DSMTXSystem, SystemConfig
from repro.core.config import PipelineConfig
from repro.errors import ClusterFailedError
from repro.workloads.base import ParallelPlan
from tests.core.toys import ToyDoall

ITERATIONS = 96

# Small batches so commits are progressive and the replication stream
# is genuinely exercised; spread placement so runtime traffic crosses
# node boundaries, where the chaos engine adjudicates corruption.
CONFIG = dict(
    total_cores=8,
    fault_tolerance=True,
    commit_replication=True,
    placement="spread",
    batch_bytes=64,
    checkpoint_interval_mtxs=16,
    integrity=True,
)


class SharedReader(ToyDoall):
    """Every iteration speculatively reads one shared seed word.

    ``ToyDoall`` never issues a *speculative* load, so its read set is
    empty and value-based validation has nothing to check.  This
    variant routes one shared word through ``ctx.load(...,
    speculative=True)`` per iteration — the footprint the
    ``"speculative"`` corruption target needs to be observable.
    """

    name = "shared-reader"
    description = "speculative shared-seed reader"
    speculation = ("MV",)

    def build(self, uva, owner, store):
        self.seed_addr = uva.malloc_page_aligned(owner, 8)
        self.out_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        store.write(self.seed_addr, 1000)

    def sequential_body(self, ctx):
        i = ctx.iteration
        seed = yield from ctx.load(self.seed_addr)
        ctx.compute(self.work_cycles)
        yield from ctx.store(self.out_base + 8 * i, seed + i)

    def _body(self, ctx):
        i = ctx.iteration
        seed = yield from ctx.load(self.seed_addr, speculative=True)
        ctx.compute(self.work_cycles)
        yield from ctx.store(self.out_base + 8 * i, seed + i, forward=False)

    def dsmtx_plan(self):
        return ParallelPlan(
            self,
            scheme="dsmtx",
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[self._body],
            label="Spec-DOALL",
        )

    tls_plan = dsmtx_plan


def build(plan=None, workload_cls=ToyDoall, **overrides):
    config = dict(CONFIG)
    config.update(overrides)
    workload = workload_cls(iterations=ITERATIONS)
    system = DSMTXSystem(workload.dsmtx_plan(), SystemConfig(**config))
    engine = None
    if plan is not None:
        engine = ChaosEngine(plan).attach(system.env)
    return system, engine


@pytest.fixture(scope="module")
def reference():
    """Fault-free run of the same integrity-enabled configuration."""
    system, _ = build()
    result = system.run()
    return system, result


def node_of(system, tid):
    return system.cluster.node_of_core(system._core_indices[tid])


def corruption_plan(probability=0.05, seed=7):
    return FaultPlan(
        faults=(MessageCorruption(probability=probability),), seed=seed)


def assert_same_results(system, result, reference):
    ref_system, ref_result = reference
    assert result.stats.committed_mtxs == ref_result.stats.committed_mtxs
    assert memory_fingerprint(system.commit.master) == memory_fingerprint(
        ref_system.commit.master
    )


# -- wire corruption: detect, drop, retransmit ------------------------------------


def test_wire_corruption_is_repaired_end_to_end(reference):
    system, engine = build(corruption_plan())
    result = system.run()
    # The plan must have actually corrupted frames for this to mean
    # anything, and every detection must have been absorbed.
    assert engine.messages_corrupted > 0
    assert result.stats.ft_corruptions_detected > 0
    assert result.stats.ft_corruptions_unrepairable == 0
    assert_same_results(system, result, reference)


def test_corruption_episode_is_seed_deterministic():
    digests = []
    for _ in range(2):
        system, engine = build(corruption_plan())
        system.run()
        digests.append(
            run_digest(system.stats, master=system.commit.master, chaos=engine))
    assert digests[0] == digests[1]


def test_detected_counts_at_least_match_repairs(reference):
    # A corrupted duplicate of an already-delivered frame is detected
    # and dropped but repairs nothing (nothing was lost), so detected
    # >= repaired always; equality holds when every corruption hit a
    # first delivery.
    system, _ = build(corruption_plan())
    result = system.run()
    stats = result.stats
    assert stats.ft_corruptions_detected >= stats.ft_corruptions_repaired
    assert stats.ft_corruptions_repaired > 0


def test_without_integrity_corruption_commits_silently(reference):
    # The hazard run: same fault plan, checksums off.  The corrupted
    # values sail through the transport and commit; nothing detects
    # anything, and committed memory is silently wrong.
    system, engine = build(corruption_plan(), integrity=False)
    result = system.run()
    assert engine.messages_corrupted > 0
    assert result.stats.ft_corruptions_detected == 0
    ref_system, _ref_result = reference
    assert memory_fingerprint(system.commit.master) != memory_fingerprint(
        ref_system.commit.master
    )


@pytest.mark.parametrize("cores", [8, 12, 16])
def test_repair_holds_at_any_worker_count(cores):
    # The repair property is a property of the transport, not of one
    # lucky layout: whatever the worker count, the corrupted run's
    # memory matches its own fault-free reference.
    ref_system, _ = build(total_cores=cores)
    ref_result = ref_system.run()
    system, engine = build(corruption_plan(), total_cores=cores)
    result = system.run()
    assert engine.messages_corrupted > 0
    assert_same_results(system, result, (ref_system, ref_result))


# -- committed memory: the scrubber -----------------------------------------------


def test_scrubber_detects_and_repairs_memory_corruption():
    # The simulated run lasts tens of microseconds, so the audit
    # cadence must be far below the 5 ms default for sweeps to fire.
    interval = dict(scrub_interval_s=5e-6)
    ref_system, _ = build(**interval)
    ref_result = ref_system.run()
    plan = FaultPlan(
        faults=(StateCorruption(
            "memory", at_s=0.5 * ref_result.elapsed_seconds, words=2),),
        seed=7,
    )
    system, engine = build(plan, **interval)
    result = system.run()
    stats = result.stats
    assert engine.state_corruption_log  # the flip actually landed
    assert stats.ft_scrub_rounds > 0
    assert stats.ft_scrub_pages > 0
    assert stats.ft_corruptions_detected >= 1
    assert stats.ft_corruptions_repaired >= 1
    assert stats.ft_corruptions_unrepairable == 0
    assert_same_results(system, result, (ref_system, ref_result))


def test_scrubber_is_quiet_on_a_clean_run():
    system, _ = build(scrub_interval_s=5e-6)
    result = system.run()
    assert result.stats.ft_scrub_rounds > 0
    assert result.stats.ft_corruptions_detected == 0
    assert result.stats.ft_corruptions_repaired == 0


# -- durable state: promotion refusal ---------------------------------------------


def test_corrupt_checkpoint_image_refuses_promotion(reference):
    # Flip a word in the standby's image just before the commit node
    # dies: the standby must refuse to promote corrupted state into
    # the new truth, failing the run loudly instead.
    ref_system, ref_result = reference
    elapsed = ref_result.elapsed_seconds
    plan = FaultPlan(
        faults=(
            StateCorruption("checkpoint", at_s=0.89 * elapsed, words=1),
            NodeCrash(node=node_of(ref_system, ref_system.commit_tid),
                      at_s=0.9 * elapsed),
        ),
        seed=7,
    )
    system, _ = build(plan)
    with pytest.raises(ClusterFailedError, match="refuses promotion"):
        system.run()
    stats = system.stats
    assert stats.ft_corruptions_unrepairable == 1
    assert stats.failures and stats.failures[-1].corrupt_image


def test_clean_promotion_still_succeeds_under_integrity(reference):
    # Integrity must not get in the way of a legitimate failover: with
    # an intact image the standby's digests verify and promotion
    # completes with byte-identical results.
    ref_system, ref_result = reference
    plan = FaultPlan(
        faults=(NodeCrash(node=node_of(ref_system, ref_system.commit_tid),
                          at_s=0.5 * ref_result.elapsed_seconds),),
        seed=7,
    )
    system, _ = build(plan)
    result = system.run()
    assert result.stats.ft_promotions == 1
    assert result.stats.ft_corruptions_unrepairable == 0
    assert_same_results(system, result, reference)


# -- speculative state: read validation --------------------------------------------


def test_speculative_read_corruption_misspeculates_and_repairs():
    ref_system, _ = build(workload_cls=SharedReader)
    ref_result = ref_system.run()
    # The reference must actually validate reads, or the "detection"
    # below would be vacuous (ToyDoall's read set is empty).
    assert ref_result.stats.reads_checked > 0
    # words=10_000 flips every clean resident word in every live
    # worker cache — deterministically including the shared seed copy,
    # whatever else the caches hold at that instant.
    plan = FaultPlan(
        faults=(StateCorruption(
            "speculative", at_s=0.4 * ref_result.elapsed_seconds,
            words=10_000),),
        seed=5,
    )
    system, engine = build(plan, workload_cls=SharedReader)
    result = system.run()
    assert engine.state_corruption_log[0][2] > 0  # words actually flipped
    assert result.stats.misspeculations >= 1
    assert_same_results(system, result, (ref_system, ref_result))


# -- zero cost when disabled -------------------------------------------------------


def test_integrity_off_leaves_no_integrity_state():
    system, _ = build(integrity=False)
    result = system.run()
    stats = result.stats
    assert stats.ft_corruptions_detected == 0
    assert stats.ft_corruptions_repaired == 0
    assert stats.ft_corruptions_unrepairable == 0
    assert stats.ft_scrub_rounds == 0
    assert stats.ft_scrub_pages == 0


def test_plain_ft_run_is_untouched_by_the_feature():
    # Two fresh integrity-off builds simulate the exact same run — the
    # integrity hooks read no global state and schedule no processes
    # when disabled (the golden-digest suite pins this across
    # versions; this pins it in-process).
    fingerprints = []
    for _ in range(2):
        system, _ = build(integrity=False)
        result = system.run()
        fingerprints.append((
            result.stats.elapsed_seconds,
            result.stats.committed_mtxs,
            result.stats.queue_bytes,
            system.env.events_processed,
        ))
    assert fingerprints[0] == fingerprints[1]
