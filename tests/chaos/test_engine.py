"""ChaosEngine unit behaviour on a bare simulation environment."""

import pytest

from repro.chaos import (
    DELIVER,
    DROP,
    DUPLICATE,
    ChaosEngine,
    FaultPlan,
    LinkDegrade,
    MessageDuplication,
    MessageLoss,
    NodeCrash,
    NodeStall,
)
from repro.errors import ChaosError
from repro.sim import Environment


def attached(plan):
    env = Environment()
    return env, ChaosEngine(plan).attach(env)


def advance(env, until):
    env.run(until=env.timeout(until - env.now))


def test_attach_installs_on_env():
    env, engine = attached(FaultPlan())
    assert env.chaos is engine


def test_engine_is_single_use():
    env, engine = attached(FaultPlan())
    with pytest.raises(ChaosError):
        engine.attach(Environment())
    with pytest.raises(ChaosError):
        ChaosEngine(FaultPlan()).attach(env)  # env already has one


def test_empty_plan_delivers_untouched():
    _env, engine = attached(FaultPlan())
    assert engine.on_wire(0, 1, 1e-5, 1e9) == (DELIVER, 1e-5, 1e9)


def test_crash_marks_node_dead_and_drops_its_traffic():
    env, engine = attached(FaultPlan(faults=(NodeCrash(node=1, at_s=0.01),)))
    assert engine.on_wire(0, 1, 1e-5, 1e9)[0] == DELIVER
    advance(env, 0.02)
    assert engine.is_dead_node(1)
    assert engine.crash_log == [(1, 0.01)]
    assert engine.on_wire(0, 1, 1e-5, 1e9)[0] == DROP  # to the dead node
    assert engine.on_wire(1, 0, 1e-5, 1e9)[0] == DROP  # from the dead node
    assert engine.on_wire(0, 2, 1e-5, 1e9)[0] == DELIVER  # bystanders fine
    assert engine.messages_dropped == 2


def test_degrade_window_scales_wire_parameters_inside_window_only():
    plan = FaultPlan(faults=(
        LinkDegrade(at_s=0.01, duration_s=0.01, latency_factor=3.0,
                    bandwidth_factor=2.0),
    ))
    env, engine = attached(plan)
    assert engine.on_wire(0, 1, 1e-5, 1e9) == (DELIVER, 1e-5, 1e9)  # before
    advance(env, 0.015)
    verdict, latency, bandwidth = engine.on_wire(0, 1, 1e-5, 1e9)
    assert verdict == DELIVER
    assert latency == pytest.approx(3e-5)
    assert bandwidth == pytest.approx(5e8)
    advance(env, 0.025)
    assert engine.on_wire(0, 1, 1e-5, 1e9) == (DELIVER, 1e-5, 1e9)  # after
    assert engine.messages_delayed == 1


def test_stall_holds_messages_until_the_window_closes():
    plan = FaultPlan(faults=(NodeStall(node=2, at_s=0.01, duration_s=0.004),))
    env, engine = attached(plan)
    advance(env, 0.011)
    _verdict, latency, _bw = engine.on_wire(2, 0, 1e-5, 1e9)
    # Remaining window (3 ms) is added to the latency.
    assert latency == pytest.approx(0.003 + 1e-5)
    # Other node pairs are unaffected.
    assert engine.on_wire(0, 1, 1e-5, 1e9)[1] == 1e-5


def test_loss_and_duplication_draws_are_seed_deterministic():
    plan = FaultPlan(
        faults=(MessageLoss(probability=0.3), MessageDuplication(probability=0.3)),
        seed=11,
    )
    _env1, engine1 = attached(plan)
    _env2, engine2 = attached(plan)
    verdicts1 = [engine1.on_wire(0, 1, 1e-5, 1e9)[0] for _ in range(200)]
    verdicts2 = [engine2.on_wire(0, 1, 1e-5, 1e9)[0] for _ in range(200)]
    assert verdicts1 == verdicts2
    assert DROP in verdicts1 and DUPLICATE in verdicts1 and DELIVER in verdicts1
    assert engine1.messages_dropped == verdicts1.count(DROP)
    assert engine1.messages_duplicated == verdicts1.count(DUPLICATE)


def test_loss_window_bounds_the_draws():
    plan = FaultPlan(
        faults=(MessageLoss(probability=0.999999, start_s=0.01, end_s=0.02),),
        seed=1,
    )
    env, engine = attached(plan)
    assert engine.on_wire(0, 1, 1e-5, 1e9)[0] == DELIVER  # before the window
    advance(env, 0.015)
    assert engine.on_wire(0, 1, 1e-5, 1e9)[0] == DROP  # inside
    advance(env, 0.025)
    assert engine.on_wire(0, 1, 1e-5, 1e9)[0] == DELIVER  # after


def test_crash_is_idempotent():
    plan = FaultPlan(faults=(
        NodeCrash(node=1, at_s=0.01), NodeCrash(node=1, at_s=0.012),
    ))
    env, engine = attached(plan)
    advance(env, 0.02)
    assert engine.crash_log == [(1, 0.01)]


def test_summary_reports_counters():
    plan = FaultPlan(faults=(NodeCrash(node=1, at_s=0.001),))
    env, engine = attached(plan)
    advance(env, 0.002)
    engine.on_wire(0, 1, 1e-5, 1e9)
    assert engine.summary() == {
        "crashes": [(1, 0.001)],
        "dead_nodes": [1],
        "messages_dropped": 1,
        "messages_duplicated": 0,
        "messages_delayed": 0,
    }


def test_crash_plan_requires_fault_tolerant_runtime():
    from repro.core import DSMTXSystem, SystemConfig
    from tests.core.toys import ToyDoall

    system = DSMTXSystem(
        ToyDoall(iterations=8).dsmtx_plan(), SystemConfig(total_cores=8)
    )
    ChaosEngine(FaultPlan(faults=(NodeCrash(node=0, at_s=0.001),))).attach(
        system.env
    )
    with pytest.raises(ChaosError, match="fault_tolerance"):
        system.run()
