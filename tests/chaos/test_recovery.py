"""End-to-end fault injection against the fault-tolerant runtime.

The acceptance bar for the whole subsystem: a run that loses a node (or
suffers a lossy/duplicating fabric) mid-flight must finish with exactly
the committed results of the fault-free run, and the whole episode must
be byte-reproducible from the plan's seed.
"""

import pytest

from repro.analysis import memory_fingerprint, run_digest
from repro.chaos import (
    ChaosEngine,
    FaultPlan,
    LinkDegrade,
    MessageDuplication,
    MessageLoss,
    NodeCrash,
)
from repro.core import DSMTXSystem, SystemConfig
from repro.errors import ClusterFailedError
from tests.core.toys import ToyDoall

ITERATIONS = 32


def build(fault_tolerance=False, cores=8):
    workload = ToyDoall(iterations=ITERATIONS)
    return workload, DSMTXSystem(
        workload.dsmtx_plan(),
        SystemConfig(total_cores=cores, fault_tolerance=fault_tolerance),
    )


def run_chaotic(plan, cores=8):
    workload, system = build(fault_tolerance=True, cores=cores)
    engine = ChaosEngine(plan).attach(system.env)
    result = system.run()
    return workload, system, result, engine


@pytest.fixture(scope="module")
def reference():
    """Fault-free run of the same workload (module-cached)."""
    workload, system = build()
    result = system.run()
    return workload, system, result


def assert_same_results(system, result, reference):
    _workload, ref_system, ref_result = reference
    assert result.stats.committed_mtxs == ref_result.stats.committed_mtxs
    assert memory_fingerprint(system.commit.master) == memory_fingerprint(
        ref_system.commit.master
    )


def crash_plan(reference, node=0, fraction=0.4, seed=7):
    """Crash ``node`` mid-run (at ``fraction`` of the fault-free time)."""
    _workload, _system, ref_result = reference
    return FaultPlan(
        faults=(NodeCrash(node=node, at_s=fraction * ref_result.elapsed_seconds),),
        seed=seed,
    )


def test_node_crash_recovers_with_identical_results(reference):
    plan = crash_plan(reference)
    _workload, system, result, engine = run_chaotic(plan)
    assert engine.dead_nodes == {0}
    assert_same_results(system, result, reference)
    # The failover was recorded with its cost accounting.
    (record,) = result.stats.failures
    assert record.node == 0
    assert record.dead_tids == (0, 1, 2, 3)
    assert record.surviving_workers == 2
    assert record.recovery_seconds > 0
    assert record.detected_at > record.last_heard_at
    assert result.stats.lost_iterations == record.lost_iterations >= 0
    # Survivors carried the re-partitioned iteration space.
    assert system.live_by_stage == [[4, 5]]
    assert system.dead_tids == {0, 1, 2, 3}


def test_chaotic_run_is_byte_deterministic(reference):
    plan = crash_plan(reference)
    digests = set()
    for _ in range(2):
        _workload, system, result, engine = run_chaotic(plan)
        digests.add(
            run_digest(result.stats, master=system.commit.master, chaos=engine)
        )
    assert len(digests) == 1


def test_message_loss_is_absorbed_by_retransmission(reference):
    plan = FaultPlan(faults=(MessageLoss(probability=0.05),), seed=3)
    _workload, system, result, engine = run_chaotic(plan)
    assert engine.messages_dropped > 0
    assert result.stats.ft_retransmits > 0
    assert_same_results(system, result, reference)


def test_message_duplication_is_deduplicated(reference):
    plan = FaultPlan(faults=(MessageDuplication(probability=0.10),), seed=5)
    _workload, system, result, engine = run_chaotic(plan)
    assert engine.messages_duplicated > 0
    assert result.stats.ft_duplicates_dropped > 0
    assert_same_results(system, result, reference)


def test_link_degradation_slows_but_does_not_corrupt(reference):
    _workload, _system, ref_result = reference
    plan = FaultPlan(faults=(
        LinkDegrade(at_s=0.0, duration_s=1.0, latency_factor=10.0,
                    bandwidth_factor=10.0),
    ))
    _workload, system, result, engine = run_chaotic(plan)
    assert engine.messages_delayed > 0
    assert result.elapsed_seconds > ref_result.elapsed_seconds
    assert_same_results(system, result, reference)


def test_commit_node_crash_is_unrecoverable(reference):
    # Pack placement puts the commit unit on the last node (node 1 here);
    # master memory has no replica, so this must fail loudly, not hang.
    plan = crash_plan(reference, node=1)
    with pytest.raises(ClusterFailedError, match="commit"):
        run_chaotic(plan)


def test_fault_tolerant_mode_alone_preserves_results(reference):
    # FT machinery on, no faults: acks/heartbeats flow, results identical.
    workload, system = build(fault_tolerance=True)
    result = system.run()
    assert result.stats.ft_acks > 0
    assert result.stats.ft_heartbeats > 0
    assert result.stats.ft_retransmit_giveups == 0
    assert not result.stats.failures
    assert_same_results(system, result, reference)
