"""Reservation-service failover end-to-end: crash-survivable specfor.

The acceptance bar for fault-tolerant deterministic reservations: a
``speculative_for`` run that loses a worker node or the reservation
service's node mid-round must finish with winners, round statistics,
and committed memory byte-identical to the fault-free run — at every
worker count, under every seeded crash schedule.  The property test
below drives exactly that claim with hypothesis; the directed tests
pin the individual episodes (worker-round re-execution, standby
promotion, standby-death degradation) and the loss modes that must
stay fatal.

The byte-identity reference is the *plain* (non-fault-tolerant) run:
unlike the DSMTX pipeline, specfor workload addresses do not derive
from the unit layout, so the fault-tolerant runs — whatever their
standby seat — are directly comparable to the unreplicated run.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import memory_fingerprint
from repro.chaos import ChaosEngine, FaultPlan, NodeCrash
from repro.core import SystemConfig
from repro.errors import ClusterFailedError
from repro.paradigms import SpecForSystem
from repro.workloads import ALL_BENCHMARKS

ITERATIONS = 48
DENSITY = 0.7
WORKER_COUNTS = (2, 3, 4, 6)


def build(workers, plan=None, fault_tolerance=True, commit_replication=True):
    workload = ALL_BENCHMARKS["spanning_forest"](
        iterations=ITERATIONS, density=DENSITY)
    # Spread placement seats every unit on its own node: workers on
    # nodes 0..N-1, the reservation service on node N, the standby on
    # node N+1 — so a single-node crash takes out exactly one unit.
    config = SystemConfig(
        total_cores=workers + 2,
        fault_tolerance=fault_tolerance,
        commit_replication=commit_replication,
        placement="spread",
    )
    system = SpecForSystem(workload, config, workers=workers)
    if plan is not None:
        ChaosEngine(plan).attach(system.env)
    return system


@pytest.fixture(scope="module")
def reference():
    """The fault-free, non-fault-tolerant run: the paradigm's ground
    truth (its winners are a pure function of the iteration space)."""
    workload = ALL_BENCHMARKS["spanning_forest"](
        iterations=ITERATIONS, density=DENSITY)
    system = SpecForSystem(workload, workers=4)
    system.run()
    return system


@pytest.fixture(scope="module")
def ft_elapsed():
    """Fault-free fault-tolerant elapsed time per worker count, for
    placing crashes mid-run whatever the configuration's pace."""
    elapsed = {}
    for workers in WORKER_COUNTS:
        system = build(workers)
        result = system.run()
        elapsed[workers] = result.stats.elapsed_seconds
    return elapsed


def assert_same_results(system, reference):
    assert system.service.stats == reference.service.stats
    assert memory_fingerprint(system.commit.master) == memory_fingerprint(
        reference.commit.master
    )


# -- the headline claim, property-tested ---------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    workers=st.sampled_from(WORKER_COUNTS),
    target=st.sampled_from(("worker", "service")),
    victim=st.integers(min_value=0, max_value=5),
    fraction=st.sampled_from((0.25, 0.4, 0.55, 0.7)),
    seed=st.integers(min_value=0, max_value=9),
)
def test_any_seeded_crash_reproduces_the_fault_free_run(
    reference, ft_elapsed, workers, target, victim, fraction, seed
):
    """Crashing any worker, or the service itself, at any sampled time
    under any seed leaves winners, stats, and committed memory equal to
    the fault-free run — and independent of the worker count."""
    node = victim % workers if target == "worker" else workers
    plan = FaultPlan(
        faults=(NodeCrash(node=node, at_s=fraction * ft_elapsed[workers]),),
        seed=seed,
    )
    system = build(workers, plan)
    result = system.run()
    assert_same_results(system, reference)
    assert len(result.stats.failures) == 1
    if target == "service":
        assert result.stats.ft_promotions == 1


# -- directed episodes ---------------------------------------------------------


def test_worker_crash_voids_and_reissues_the_round(reference, ft_elapsed):
    plan = FaultPlan(
        faults=(NodeCrash(node=1, at_s=0.4 * ft_elapsed[4]),), seed=3)
    system = build(4, plan)
    result = system.run()

    assert result.stats.ft_round_reexecutions >= 1
    assert result.stats.ft_promotions == 0
    (record,) = result.stats.failures
    assert record.node == 1
    assert record.surviving_workers == 3
    assert record.promoted_tid == -1
    assert_same_results(system, reference)


def test_service_crash_promotes_the_standby(reference, ft_elapsed):
    standby_tid = build(4).standby_tid
    plan = FaultPlan(
        faults=(NodeCrash(node=4, at_s=0.4 * ft_elapsed[4]),), seed=3)
    system = build(4, plan)
    result = system.run()

    # The standby took over as the reservation service and finished.
    assert system.commit_tid == standby_tid
    assert system.standby_tid is None  # the seat was consumed
    assert result.stats.ft_promotions == 1
    (record,) = result.stats.failures
    assert record.promoted_tid == standby_tid
    assert record.promotion_seconds > 0
    assert record.detected_at > record.last_heard_at
    assert_same_results(system, reference)


def test_standby_crash_degrades_to_an_unreplicated_run(reference, ft_elapsed):
    """Losing the standby itself is survivable: the service stops
    streaming round records and finishes the run unreplicated — no
    round is aborted, nothing is re-executed.  The crash comes early:
    nothing ever blocks on the standby, so a late crash ends the run
    before the suspicion timeout even expires (equally survivable, but
    then there is no declaration to observe)."""
    plan = FaultPlan(
        faults=(NodeCrash(node=5, at_s=0.1 * ft_elapsed[4]),), seed=3)
    system = build(4, plan)
    result = system.run()

    assert result.stats.ft_promotions == 0
    assert result.stats.ft_round_reexecutions == 0
    assert not system.standby_alive  # streaming stopped at declaration
    (record,) = result.stats.failures
    assert record.node == 5
    assert_same_results(system, reference)


# -- the loss modes that stay fatal --------------------------------------------


def test_service_crash_without_a_standby_is_fatal(ft_elapsed):
    """Plain fault tolerance survives worker crashes only: without a
    replicated standby, losing the service loses the committed image."""
    plan = FaultPlan(
        faults=(NodeCrash(node=4, at_s=0.4 * ft_elapsed[4]),), seed=3)
    system = build(4, plan, commit_replication=False)
    # The chaos engine fails the run at the point of impact: the
    # failure detector lives with the service, so nothing is left to
    # even declare the crash.
    with pytest.raises(ClusterFailedError, match="without a live.*standby"):
        system.run()


def test_service_crash_with_a_dead_standby_is_fatal(ft_elapsed):
    """Replication only helps while the standby lives: kill its node
    first, then the service's — the second crash must fail loudly."""
    elapsed = ft_elapsed[4]
    plan = FaultPlan(
        faults=(
            NodeCrash(node=5, at_s=0.3 * elapsed),
            NodeCrash(node=4, at_s=0.6 * elapsed),
        ),
        seed=3,
    )
    system = build(4, plan)
    with pytest.raises(ClusterFailedError, match="without a live.*standby"):
        system.run()


# -- zero cost when disabled ---------------------------------------------------


def test_disabled_fault_tolerance_leaves_no_trace(reference):
    """With ``fault_tolerance`` off the run takes the original
    unframed path: no heartbeats, no acks, no frames, no standby seat —
    the golden digests pin that its simulated timing is unchanged too."""
    system = build(4, fault_tolerance=False, commit_replication=False)
    result = system.run()

    assert system.standby_tid is None
    stats = result.stats
    assert stats.ft_heartbeats == 0
    assert stats.ft_acks == 0
    assert stats.ft_retransmits == 0
    assert stats.ft_repl_words == 0
    assert stats.ft_round_reexecutions == 0
    assert not stats.failures
    assert not stats.checkpoints
    assert_same_results(system, reference)
