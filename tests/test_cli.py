"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_prints_table2(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "164.gzip" in out
    assert "Spec-DSWP+[S,DOALL,S]" in out
    assert "Memory Versioning" in out


def test_run_single_benchmark(capsys):
    assert main(["run", "swaptions", "--cores", "8"]) == 0
    out = capsys.readouterr().out
    assert "swaptions on 8 cores" in out
    assert "Spec-DOALL" in out
    assert "TLS" in out
    assert "MTXs" in out


def test_run_unknown_benchmark():
    with pytest.raises(SystemExit):
        main(["run", "999.nothere"])


def test_sweep_small(capsys):
    assert main(["sweep", "swaptions", "--cores", "8,16"]) == 0
    out = capsys.readouterr().out
    assert "swaptions scalability" in out
    assert "8" in out and "16" in out


def test_sweep_drops_undersized_core_counts(capsys):
    # gzip's 3-stage pipeline needs 5 cores; 4 is skipped silently.
    assert main(["sweep", "164.gzip", "--cores", "4,8"]) == 0
    out = capsys.readouterr().out
    assert "8" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_core_list_parsing():
    args = build_parser().parse_args(["sweep", "crc32", "--cores", "8,32,64"])
    assert args.cores == [8, 32, 64]


def test_chaos_crash_scenario(capsys):
    assert main(["chaos", "--crash-node", "0", "--iterations", "16"]) == 0
    out = capsys.readouterr().out
    assert "NodeCrash" in out
    assert "identical" in out.lower() or "match" in out.lower()


def test_chaos_digest_only_is_stable(capsys):
    argv = ["chaos", "--crash-node", "0", "--iterations", "16", "--digest-only"]
    assert main(argv) == 0
    first = capsys.readouterr().out.strip()
    assert main(argv) == 0
    second = capsys.readouterr().out.strip()
    assert first == second
    assert len(first) == 64  # a sha256 hex digest, nothing else


def _write_campaign(tmp_path, name="cli-tiny"):
    import json

    doc = {
        "name": name,
        "scenarios": [{"name": "one", "benchmark": "crc32",
                       "iterations": 8, "expect": {"committed_mtxs": 8}}],
    }
    path = tmp_path / f"{name}.json"
    path.write_text(json.dumps(doc))
    return path


def test_campaign_run_report_list(tmp_path, capsys):
    store = str(tmp_path / "c.sqlite")
    path = _write_campaign(tmp_path)
    assert main(["campaign", "run", str(path), "--store", store,
                 "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "1 ok" in out
    assert "stored campaign #1" in out
    assert main(["campaign", "report", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "cli-tiny" in out
    assert main(["campaign", "list", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "cli-tiny" in out


def test_campaign_report_digests_format(tmp_path, capsys):
    store = str(tmp_path / "c.sqlite")
    path = _write_campaign(tmp_path)
    assert main(["campaign", "run", str(path), "--store", store,
                 "--quiet"]) == 0
    capsys.readouterr()
    assert main(["campaign", "report", "latest", "--digests",
                 "--store", store]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 1
    digest, name = lines[0].split()
    assert len(digest) == 64
    assert name == "one"


def test_campaign_diff_clean_and_exit_codes(tmp_path, capsys):
    store = str(tmp_path / "c.sqlite")
    path = _write_campaign(tmp_path)
    for _ in range(2):
        assert main(["campaign", "run", str(path), "--store", store,
                     "--quiet"]) == 0
    capsys.readouterr()
    assert main(["campaign", "diff", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "identical" in out.lower() or "unchanged" in out.lower()


def test_campaign_run_fails_exit_status_on_missed_expectation(tmp_path, capsys):
    import json

    store = str(tmp_path / "c.sqlite")
    doc = {"name": "failing",
           "scenarios": [{"name": "bad", "benchmark": "crc32",
                          "iterations": 8,
                          "expect": {"committed_mtxs": 9}}]}
    path = tmp_path / "failing.json"
    path.write_text(json.dumps(doc))
    assert main(["campaign", "run", str(path), "--store", store,
                 "--quiet"]) == 1
    out = capsys.readouterr().out
    assert "committed_mtxs" in out


def test_campaign_rejects_invalid_file(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text('{"name": "x", "scenarios": [{"benchmark": "nope"}]}')
    assert main(["campaign", "run", str(path)]) == 2
    err = capsys.readouterr().err
    assert "benchmark" in err
