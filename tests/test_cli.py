"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_prints_table2(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "164.gzip" in out
    assert "Spec-DSWP+[S,DOALL,S]" in out
    assert "Memory Versioning" in out


def test_run_single_benchmark(capsys):
    assert main(["run", "swaptions", "--cores", "8"]) == 0
    out = capsys.readouterr().out
    assert "swaptions on 8 cores" in out
    assert "Spec-DOALL" in out
    assert "TLS" in out
    assert "MTXs" in out


def test_run_unknown_benchmark():
    with pytest.raises(SystemExit):
        main(["run", "999.nothere"])


def test_sweep_small(capsys):
    assert main(["sweep", "swaptions", "--cores", "8,16"]) == 0
    out = capsys.readouterr().out
    assert "swaptions scalability" in out
    assert "8" in out and "16" in out


def test_sweep_drops_undersized_core_counts(capsys):
    # gzip's 3-stage pipeline needs 5 cores; 4 is skipped silently.
    assert main(["sweep", "164.gzip", "--cores", "4,8"]) == 0
    out = capsys.readouterr().out
    assert "8" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_core_list_parsing():
    args = build_parser().parse_args(["sweep", "crc32", "--cores", "8,32,64"])
    assert args.cores == [8, 32, 64]


def test_chaos_crash_scenario(capsys):
    assert main(["chaos", "--crash-node", "0", "--iterations", "16"]) == 0
    out = capsys.readouterr().out
    assert "NodeCrash" in out
    assert "identical" in out.lower() or "match" in out.lower()


def test_chaos_digest_only_is_stable(capsys):
    argv = ["chaos", "--crash-node", "0", "--iterations", "16", "--digest-only"]
    assert main(argv) == 0
    first = capsys.readouterr().out.strip()
    assert main(argv) == 0
    second = capsys.readouterr().out.strip()
    assert first == second
    assert len(first) == 64  # a sha256 hex digest, nothing else
