"""Unit tests for pages and address spaces."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtectionFault, UnmappedAddressError
from repro.memory import PAGE_BYTES, AddressSpace, Page, page_number


# ---------------------------------------------------------------------------
# Page
# ---------------------------------------------------------------------------


def test_page_default_zero():
    page = Page(0)
    assert page.read(0) == 0
    assert page.read(511) == 0


def test_page_write_read():
    page = Page(0)
    page.write(3, 42)
    assert page.read(3) == 42
    assert page.dirty


def test_page_index_bounds():
    page = Page(0)
    with pytest.raises(IndexError):
        page.read(512)
    with pytest.raises(IndexError):
        page.write(-1, 0)


def test_page_snapshot_is_independent():
    page = Page(7, {1: "a"}, version=3)
    copy = page.snapshot()
    copy.write(1, "b")
    assert page.read(1) == "a"
    assert copy.version == 3
    assert copy.number == 7


def test_page_bump_version():
    page = Page(0)
    page.bump_version()
    page.bump_version()
    assert page.version == 2


# ---------------------------------------------------------------------------
# AddressSpace: master (non-faulting) mode
# ---------------------------------------------------------------------------


def test_master_space_materializes_pages():
    space = AddressSpace("master")
    assert space.read(0) == 0
    space.write(PAGE_BYTES * 10 + 8, 99)
    assert space.read(PAGE_BYTES * 10 + 8) == 99
    assert space.has_page(10)


def test_unaligned_access_rejected():
    space = AddressSpace("master")
    with pytest.raises(UnmappedAddressError):
        space.read(5)
    with pytest.raises(UnmappedAddressError):
        space.write(12, 0)


def test_apply_writes_last_wins_and_bumps_version():
    space = AddressSpace("master")
    space.apply_writes([(0, 1), (8, 2), (0, 3)])
    assert space.read(0) == 3  # group commit: last update takes effect
    assert space.read(8) == 2
    assert space.get_page(0).version == 1


def test_apply_writes_bumps_each_touched_page_once():
    space = AddressSpace("master")
    space.apply_writes([(0, 1), (8, 2), (PAGE_BYTES, 3)])
    assert space.get_page(0).version == 1
    assert space.get_page(1).version == 1


# ---------------------------------------------------------------------------
# AddressSpace: worker (faulting) mode
# ---------------------------------------------------------------------------


def test_faulting_space_read_faults():
    space = AddressSpace("worker", faulting=True)
    with pytest.raises(ProtectionFault) as exc_info:
        space.read(PAGE_BYTES * 2)
    assert exc_info.value.page_number == 2
    assert space.faults_taken == 1


def test_faulting_space_write_faults():
    # Stores also trip the access protection (mprotect faults on write).
    space = AddressSpace("worker", faulting=True)
    with pytest.raises(ProtectionFault):
        space.write(0, 42)


def test_install_page_clears_protection():
    space = AddressSpace("worker", faulting=True)
    space.install_page(Page(0, {1: "committed"}))
    assert space.read(8) == "committed"
    space.write(16, "speculative")
    assert space.read(16) == "speculative"
    assert space.pages_installed == 1


def test_get_page_faults_in_faulting_space():
    space = AddressSpace("worker", faulting=True)
    with pytest.raises(ProtectionFault):
        space.get_page(0)


def test_reprotect_all_discards_everything():
    space = AddressSpace("worker", faulting=True)
    space.install_page(Page(0))
    space.install_page(Page(1))
    assert space.reprotect_all() == 2
    with pytest.raises(ProtectionFault):
        space.read(0)


def test_dirty_page_count():
    space = AddressSpace("worker", faulting=True)
    space.install_page(Page(0))
    space.install_page(Page(1))
    space.write(0, 1)
    assert space.dirty_page_count == 1


def test_drop_page():
    space = AddressSpace("worker", faulting=True)
    space.install_page(Page(0))
    space.drop_page(0)
    assert not space.has_page(0)
    space.drop_page(99)  # dropping an absent page is a no-op


def test_iter_pages_sorted():
    space = AddressSpace("master")
    space.write(PAGE_BYTES * 5, 1)
    space.write(0, 1)
    space.write(PAGE_BYTES * 2, 1)
    assert [p.number for p in space.iter_pages()] == [0, 2, 5]


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------

addresses = st.integers(min_value=0, max_value=2**30).map(lambda a: a * 8)


@given(st.dictionaries(addresses, st.integers(), max_size=40))
def test_write_read_round_trip(mapping):
    space = AddressSpace("master")
    for address, value in mapping.items():
        space.write(address, value)
    for address, value in mapping.items():
        assert space.read(address) == value


@given(st.lists(st.tuples(addresses, st.integers()), max_size=40))
def test_apply_writes_matches_sequential_stores(writes):
    via_apply = AddressSpace("a")
    via_apply.apply_writes(writes)
    sequential = AddressSpace("b")
    for address, value in writes:
        sequential.write(address, value)
    for address, _ in writes:
        assert via_apply.read(address) == sequential.read(address)


@given(st.sets(addresses, max_size=30))
def test_reprotect_restores_fault_on_every_page(touched):
    space = AddressSpace("worker", faulting=True)
    for address in touched:
        space.install_page(Page(page_number(address)))
    space.reprotect_all()
    for address in touched:
        with pytest.raises(ProtectionFault):
            space.read(address)
