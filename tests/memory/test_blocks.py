"""Batch-access correctness: block APIs vs. a per-word reference model.

The block primitives (``write_block``/``read_block``/``dirty_words``/
``extract_blocks``/``apply_entries``) must be indistinguishable from the
per-word API they amortize.  The property tests here drive arbitrary
interleavings of both against a plain-dict reference model — including
page-boundary-straddling blocks and recovery (``reprotect_all``) in the
middle — and the negative-address regressions pin the up-front
validation added to ``get_page``/``apply_writes``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnmappedAddressError
from repro.memory import AddressSpace, Page
from repro.memory.layout import WORDS_PER_PAGE

# Keep addresses within a few pages so blocks straddle boundaries often.
_ADDRESSES = st.integers(0, 4 * WORDS_PER_PAGE - 1).map(lambda w: w * 8)
_VALUES = st.one_of(st.integers(-5, 5), st.text(max_size=2), st.floats(
    allow_nan=False, allow_infinity=False, width=16))

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("write"), _ADDRESSES, _VALUES),
        st.tuples(st.just("write_block"), _ADDRESSES,
                  st.lists(_VALUES, min_size=1, max_size=100)),
        st.tuples(st.just("reprotect"),),
    ),
    max_size=30,
)


def _apply_reference(model, op):
    """The per-word reference model: a flat {address: value} dict."""
    if op[0] == "write":
        model[op[1]] = op[2]
    elif op[0] == "write_block":
        for offset, value in enumerate(op[2]):
            model[op[1] + 8 * offset] = value
    else:  # reprotect
        model.clear()


def _apply_space(space, op):
    if op[0] == "write":
        space.write(op[1], op[2])
    elif op[0] == "write_block":
        space.write_block(op[1], op[2])
    else:
        space.reprotect_all()


@settings(max_examples=200, deadline=None)
@given(ops=_OPS)
def test_interleaved_writes_match_per_word_model(ops):
    """Any interleaving of write_block/per-word write followed by
    dirty-word extraction equals the per-word reference model."""
    space = AddressSpace("prop")
    model = {}
    for op in ops:
        _apply_space(space, op)
        _apply_reference(model, op)
    assert dict(space.dirty_words()) == model
    # Every written word reads back; block reads agree word for word.
    for address, value in model.items():
        assert space.read(address) == value
        assert space.read_block(address, 1) == [value]
    # The dirty counter matches a from-scratch scan.
    assert space.dirty_page_count == sum(
        1 for page in space.pages.values() if page.dirty_mask
    )


@settings(max_examples=100, deadline=None)
@given(ops=_OPS)
def test_extract_blocks_round_trips(ops):
    """extract_blocks() -> apply_blocks() reproduces the word contents
    exactly, and blocks are maximal ascending runs."""
    space = AddressSpace("src")
    model = {}
    for op in ops:
        _apply_space(space, op)
        _apply_reference(model, op)
    blocks = space.extract_blocks()
    # Ascending, non-overlapping runs, maximal within each page (a run
    # crossing a page boundary is split at the boundary — extraction is
    # per-page, like every other page-granular consumer).
    previous_end = None
    flattened = {}
    for address, values in blocks:
        assert values, "empty block emitted"
        if previous_end is not None:
            assert address >= previous_end
            if address == previous_end:
                assert address % 4096 == 0, "adjacent runs not at a page split"
        previous_end = address + 8 * len(values)
        for offset, value in enumerate(values):
            flattened[address + 8 * offset] = value
    assert flattened == model
    target = AddressSpace("dst")
    target.apply_blocks(blocks)
    assert dict(target.dirty_words()) == model


def test_write_block_straddles_page_boundary():
    space = AddressSpace("straddle")
    base = (WORDS_PER_PAGE - 3) * 8  # 3 words on page 0, rest on page 1
    values = list(range(10))
    space.write_block(base, values)
    assert space.read_block(base, 10) == values
    assert space.pages[0].dirty_mask and space.pages[1].dirty_mask
    assert space.dirty_page_count == 2
    assert [v for _a, v in space.dirty_words()] == values


def test_read_block_of_unwritten_words_is_zero_filled():
    space = AddressSpace("zero")
    space.write(16, "x")
    assert space.read_block(0, 4) == [0, 0, "x", 0]


def test_read_block_rejects_bad_lengths_and_misalignment():
    space = AddressSpace("bad")
    with pytest.raises(UnmappedAddressError):
        space.read_block(0, 0)
    with pytest.raises(UnmappedAddressError):
        space.read_block(4, 2)
    with pytest.raises(UnmappedAddressError):
        space.write_block(-8, [1])


# -- negative-address regressions ------------------------------------------------


def test_get_page_rejects_negative_page_numbers():
    space = AddressSpace("neg")
    with pytest.raises(UnmappedAddressError):
        space.get_page(-1)
    # No phantom page materialized.
    assert -1 not in space.pages


def test_faulting_get_page_also_rejects_negative():
    space = AddressSpace("negf", faulting=True)
    with pytest.raises(UnmappedAddressError):
        space.get_page(-2)


def test_apply_writes_rejects_negative_addresses_atomically():
    space = AddressSpace("atomic")
    space.apply_writes([(0, "seed")])
    version_before = space.pages[0].version
    with pytest.raises(UnmappedAddressError):
        space.apply_writes([(8, "a"), (-8, "b"), (16, "c")])
    # Nothing from the rejected batch landed: validation is up-front.
    assert space.read(8) == 0
    assert space.read(16) == 0
    assert space.pages[0].version == version_before
    assert dict(space.dirty_words()) == {0: "seed"}


def test_apply_entries_rejects_negative_addresses_atomically():
    space = AddressSpace("atomic2")
    with pytest.raises(UnmappedAddressError):
        space.apply_entries([("W", 0, "a"), ("WB", -16, ("b", "c"))])
    assert not space.pages


# -- apply_entries semantics ------------------------------------------------------


def test_apply_entries_mixes_word_and_block_records_last_wins():
    space = AddressSpace("entries")
    words = space.apply_entries([
        ("W", 0, "old"),
        ("WB", 0, ("a", "b", "c")),
        ("W", 8, "mid"),
        ("WB", 8, ("final",)),
    ])
    assert words == 6
    assert space.read_block(0, 3) == ["a", "final", "c"]
    # One version bump per touched page, not per entry.
    assert space.pages[0].version == 1


def test_apply_entries_kind_strings_match_runtime_messages():
    # The memory layer cannot import repro.core (layering), so the entry
    # kinds are string literals; this pins them to the runtime constants.
    from repro.core import messages
    from repro.memory import address_space

    assert address_space._ENTRY_WRITE == messages.WRITE
    assert address_space._ENTRY_WRITE_BLOCK == messages.WRITE_BLOCK


def test_entry_bytes_prices_blocks_per_word():
    from repro.core.messages import (
        ENTRY_BYTES, READ_BLOCK, WRITE_BLOCK, entry_bytes,
    )

    assert entry_bytes((WRITE_BLOCK, 0, (1, 2, 3))) == 3 * ENTRY_BYTES
    assert entry_bytes((READ_BLOCK, 0, (1,) * 7)) == 7 * ENTRY_BYTES


# -- dirty counter and page-order cache -------------------------------------------


def test_dirty_page_count_is_incremental():
    space = AddressSpace("count")
    assert space.dirty_page_count == 0
    space.write(0, 1)
    space.write(8, 2)          # same page: still one dirty page
    assert space.dirty_page_count == 1
    space.write_block(4096, [1, 2])
    assert space.dirty_page_count == 2
    page = Page(9)
    page.write(0, "dirty")
    space.install_page(page)   # installing an already-dirty page counts
    assert space.dirty_page_count == 3
    space.drop_page(9)
    assert space.dirty_page_count == 2
    space.drop_page(0)
    assert space.dirty_page_count == 1
    assert space.reprotect_all() == 1
    assert space.dirty_page_count == 0


def test_page_writes_after_install_update_owner_counter():
    space = AddressSpace("owner")
    page = Page(3)
    space.install_page(page)
    assert space.dirty_page_count == 0
    page.write(0, "x")         # direct Page.write, not via the space
    assert space.dirty_page_count == 1


def test_iter_pages_cache_tracks_installs_and_drops():
    space = AddressSpace("order")
    for number in (5, 1, 9):
        space.get_page(number)
    assert [p.number for p in space.iter_pages()] == [1, 5, 9]
    space.get_page(3)          # materialize invalidates the cached order
    assert [p.number for p in space.iter_pages()] == [1, 3, 5, 9]
    space.drop_page(5)
    assert [p.number for p in space.iter_pages()] == [1, 3, 9]
    space.install_page(Page(2))
    assert [p.number for p in space.iter_pages()] == [1, 2, 3, 9]
