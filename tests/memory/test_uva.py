"""Unit and property tests for the Unified Virtual Address space."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AllocationError, OwnershipError
from repro.memory import (
    PAGE_BYTES,
    WORD_BYTES,
    UnifiedVirtualAddressSpace,
    VersionedBuffer,
)


def test_malloc_returns_address_in_owner_region():
    uva = UnifiedVirtualAddressSpace(owners=4)
    for owner in range(4):
        address = uva.malloc(owner, 64)
        base, limit = uva.region_bounds(owner)
        assert base <= address < limit
        assert uva.owner_of(address) == owner


def test_pointer_valid_across_threads_without_translation():
    # The UVA property (section 3.3): an address allocated by one thread
    # is directly meaningful to another — ownership decodes from the bits.
    uva = UnifiedVirtualAddressSpace(owners=8)
    address = uva.malloc(3, 128)
    assert uva.owner_of(address) == 3  # any thread can tell who owns it


def test_malloc_alignment():
    uva = UnifiedVirtualAddressSpace(owners=2)
    address = uva.malloc(0, 8, align=64)
    assert address % 64 == 0
    page_aligned = uva.malloc_page_aligned(0, 100)
    assert page_aligned % PAGE_BYTES == 0


def test_allocations_do_not_overlap():
    uva = UnifiedVirtualAddressSpace(owners=1)
    a = uva.malloc(0, 24)
    b = uva.malloc(0, 24)
    assert b >= a + 24


def test_free_releases_and_tracks_bytes():
    uva = UnifiedVirtualAddressSpace(owners=2)
    address = uva.malloc(1, 48)
    assert uva.bytes_allocated == 48
    uva.free(address)
    assert uva.bytes_allocated == 0


def test_double_free_rejected():
    uva = UnifiedVirtualAddressSpace(owners=1)
    address = uva.malloc(0, 8)
    uva.free(address)
    with pytest.raises(AllocationError):
        uva.free(address)


def test_free_of_unallocated_rejected():
    uva = UnifiedVirtualAddressSpace(owners=1)
    with pytest.raises(AllocationError):
        uva.free(1024)


def test_invalid_sizes_rejected():
    uva = UnifiedVirtualAddressSpace(owners=1)
    with pytest.raises(AllocationError):
        uva.malloc(0, 0)
    with pytest.raises(AllocationError):
        uva.malloc(0, 8, align=3)


def test_unknown_owner_rejected():
    uva = UnifiedVirtualAddressSpace(owners=2)
    with pytest.raises(OwnershipError):
        uva.malloc(2, 8)
    with pytest.raises(OwnershipError):
        UnifiedVirtualAddressSpace(owners=0)


def test_owner_of_address_outside_configured_owners():
    uva = UnifiedVirtualAddressSpace(owners=1)
    other = UnifiedVirtualAddressSpace(owners=4)
    foreign = other.malloc(3, 8)
    with pytest.raises(OwnershipError):
        uva.owner_of(foreign)


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(1, 4096)), max_size=50))
def test_allocations_disjoint_across_owners(requests):
    uva = UnifiedVirtualAddressSpace(owners=4)
    intervals = []
    for owner, nbytes in requests:
        address = uva.malloc(owner, nbytes)
        intervals.append((address, address + nbytes))
    intervals.sort()
    for (a_start, a_end), (b_start, _b_end) in zip(intervals, intervals[1:]):
        assert a_end <= b_start


# ---------------------------------------------------------------------------
# VersionedBuffer
# ---------------------------------------------------------------------------


def test_versioned_buffer_cycles_slots():
    uva = UnifiedVirtualAddressSpace(owners=1)
    buffer = VersionedBuffer(uva, owner=0, nbytes=PAGE_BYTES, depth=3)
    assert buffer.base_for_iteration(0) == buffer.base_for_iteration(3)
    assert buffer.base_for_iteration(0) != buffer.base_for_iteration(1)
    assert len(set(buffer.slots)) == 3


def test_versioned_buffer_slots_page_aligned_and_disjoint():
    uva = UnifiedVirtualAddressSpace(owners=1)
    buffer = VersionedBuffer(uva, owner=0, nbytes=100, depth=4)
    for slot in buffer.slots:
        assert slot % PAGE_BYTES == 0


def test_versioned_buffer_element_addresses():
    uva = UnifiedVirtualAddressSpace(owners=1)
    buffer = VersionedBuffer(uva, owner=0, nbytes=64, depth=2)
    assert buffer.element(0, 1) == buffer.base_for_iteration(0) + WORD_BYTES
    with pytest.raises(AllocationError):
        buffer.element(0, 8)  # 8 * 8 = 64 is out of bounds


def test_versioned_buffer_validation():
    uva = UnifiedVirtualAddressSpace(owners=1)
    with pytest.raises(AllocationError):
        VersionedBuffer(uva, owner=0, nbytes=8, depth=0)
    buffer = VersionedBuffer(uva, owner=0, nbytes=8, depth=1)
    with pytest.raises(AllocationError):
        buffer.base_for_iteration(-1)
