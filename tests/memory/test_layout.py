"""Unit and property tests for address arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import UnmappedAddressError
from repro.memory import (
    PAGE_BYTES,
    WORD_BYTES,
    WORDS_PER_PAGE,
    check_word_aligned,
    owner_of,
    page_base,
    page_number,
    region_base,
    word_index,
)
from repro.memory.layout import MAX_OWNERS, REGION_BYTES


def test_constants_consistent():
    assert PAGE_BYTES == 4096  # paper's platform page size
    assert WORD_BYTES == 8
    assert WORDS_PER_PAGE * WORD_BYTES == PAGE_BYTES


def test_page_number_and_base():
    assert page_number(0) == 0
    assert page_number(PAGE_BYTES - 1) == 0
    assert page_number(PAGE_BYTES) == 1
    assert page_base(3) == 3 * PAGE_BYTES


def test_word_index():
    assert word_index(0) == 0
    assert word_index(8) == 1
    assert word_index(PAGE_BYTES + 16) == 2


def test_check_word_aligned():
    check_word_aligned(0)
    check_word_aligned(64)
    with pytest.raises(UnmappedAddressError):
        check_word_aligned(3)
    with pytest.raises(UnmappedAddressError):
        check_word_aligned(-8)


def test_owner_encoding_round_trip():
    base = region_base(5)
    assert owner_of(base) == 5
    assert owner_of(base + REGION_BYTES - WORD_BYTES) == 5
    assert owner_of(base + REGION_BYTES) == 6


def test_region_base_bounds():
    with pytest.raises(UnmappedAddressError):
        region_base(MAX_OWNERS)
    with pytest.raises(UnmappedAddressError):
        region_base(-1)


def test_owner_of_negative():
    with pytest.raises(UnmappedAddressError):
        owner_of(-1)


@given(st.integers(min_value=0, max_value=2**48 - 1))
def test_page_base_inverts_page_number(address):
    assert page_base(page_number(address)) <= address < page_base(page_number(address) + 1)


@given(st.integers(min_value=0, max_value=MAX_OWNERS - 1),
       st.integers(min_value=0, max_value=REGION_BYTES - 1))
def test_owner_recoverable_from_any_region_offset(owner, offset):
    assert owner_of(region_base(owner) + offset) == owner


@given(st.integers(min_value=0, max_value=2**48 - 1))
def test_word_index_in_range(address):
    aligned = address - address % WORD_BYTES
    assert 0 <= word_index(aligned) < WORDS_PER_PAGE
