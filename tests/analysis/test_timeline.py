"""Tests for trace attribution and the ASCII timeline."""

from repro.analysis import attribution, render_attribution, render_timeline
from repro.obs.tracer import CAT_COMMIT, CAT_QUEUE, PID_RUNTIME, SpanTracer
from repro.sim import Environment


def _tracer_with_spans():
    tracer = SpanTracer(Environment())
    tracer.set_thread_name(PID_RUNTIME, 0, "worker[0.0]")
    # Two queue spans and one commit span on two tracks (explicit ends;
    # timestamps in seconds, recorded as microseconds).
    tracer.complete(CAT_QUEUE, "push:q", PID_RUNTIME, 0, 0.0, end_s=0.004)
    tracer.complete(CAT_QUEUE, "push:q", PID_RUNTIME, 0, 0.006, end_s=0.010)
    tracer.complete(CAT_COMMIT, "group_commit", PID_RUNTIME, 1, 0.002, end_s=0.003)
    tracer.instant(CAT_QUEUE, "marker", PID_RUNTIME, 0)
    return tracer


def test_attribution_sums_span_durations():
    attrib = attribution(_tracer_with_spans())
    count, total_us = attrib[CAT_QUEUE]
    assert count == 2  # the instant does not count
    assert total_us == 8000.0
    assert attrib[CAT_COMMIT] == (1, 1000.0)


def test_render_attribution_orders_by_total():
    text = render_attribution(_tracer_with_spans(), elapsed_us=10_000.0)
    lines = text.splitlines()
    assert lines[0].startswith("time attribution")
    queue_line = next(l for l in lines if l.startswith("queue"))
    assert "80.0%" in queue_line
    assert lines.index(queue_line) < lines.index(
        next(l for l in lines if l.startswith("commit"))
    )


def test_render_timeline_tracks_and_legend():
    text = render_timeline(_tracer_with_spans(), width=10)
    assert "worker[0.0]" in text  # named track
    assert "pid0/tid1" in text    # unnamed track falls back
    legend = text.splitlines()[-1]
    assert "=queue" in legend and "=commit" in legend
    # The worker row is mostly queue time with an idle gap.
    worker_row = next(l for l in text.splitlines() if "worker[0.0]" in l)
    cells = worker_row.split("|")[1]
    assert len(cells) == 10
    assert "." in cells  # the 4-6 ms gap shows as idle


def test_render_timeline_empty_tracer():
    assert render_timeline(SpanTracer(Environment())) == "(no spans recorded)"
