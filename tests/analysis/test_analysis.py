"""Tests for the analysis helpers: speedup, bandwidth, rendering."""

import pytest

from repro.analysis import (
    bandwidth_series,
    geomean,
    measure_speedup,
    render_series,
    render_stacked_bars,
    render_table,
    scalability_curve,
)
from repro.core import SystemConfig
from repro.errors import ConfigurationError
from tests.core.toys import ToyDoall, ToyPipeline


# ---------------------------------------------------------------------------
# geomean
# ---------------------------------------------------------------------------


def test_geomean_basic():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([5.0]) == pytest.approx(5.0)


def test_geomean_validation():
    with pytest.raises(ConfigurationError):
        geomean([])
    with pytest.raises(ConfigurationError):
        geomean([1.0, 0.0])


# ---------------------------------------------------------------------------
# measure_speedup / scalability_curve
# ---------------------------------------------------------------------------


def test_measure_speedup_fields():
    point = measure_speedup(lambda: ToyDoall(iterations=32), "dsmtx", cores=6)
    assert point.cores == 6
    assert point.speedup == pytest.approx(
        point.sequential_seconds / point.elapsed_seconds)
    assert point.stats.committed_mtxs == 32


def test_measure_speedup_rejects_unknown_scheme():
    with pytest.raises(ConfigurationError):
        measure_speedup(lambda: ToyDoall(iterations=8), "magic", cores=6)


def test_scalability_curve_skips_undersized_core_counts():
    points = scalability_curve(
        lambda: ToyPipeline(iterations=16), "dsmtx", core_counts=(2, 6, 8))
    # A 3-stage pipeline needs 5 cores; the 2-core point is dropped.
    assert [p.cores for p in points] == [6, 8]


def test_tls_scheme_uses_tls_plan():
    point = measure_speedup(lambda: ToyPipeline(iterations=16), "tls", cores=6)
    assert point.speedup > 0


# ---------------------------------------------------------------------------
# bandwidth
# ---------------------------------------------------------------------------


def test_bandwidth_series_consecutive_core_counts():
    series = bandwidth_series(lambda: ToyPipeline(iterations=16), points=3)
    # Pipeline min cores = 3 stages + 2 units = 5.
    assert [p.cores for p in series] == [5, 6, 7]
    for point in series:
        assert point.bytes_transferred > 0
        assert point.bandwidth_bps > 0
        assert point.bandwidth_kbps == pytest.approx(point.bandwidth_bps / 1e3)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def test_render_table_alignment():
    text = render_table(["name", "value"], [["a", 1], ["long-name", 22]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5  # title, header, rule, 2 rows


def test_render_series_missing_points():
    text = render_series({"A": {8: 1.5, 16: 3.0}, "B": {16: 2.0}})
    assert "-" in text  # B has no 8-core point
    assert "1.5" in text and "3.0" in text and "2.0" in text


def test_render_stacked_bars_totals():
    text = render_stacked_bars(
        ["x"], {"p": [1.0], "q": [2.0]}, unit="s", title="Bars")
    assert "3.000" in text  # total column
    assert "[s]" in text
