"""Tests for CSV export helpers."""

import csv
import io

from repro.analysis import series_to_csv, table_to_csv, write_csv


def parse(text):
    return list(csv.reader(io.StringIO(text)))


def test_series_to_csv_structure():
    text = series_to_csv({"DSWP": {8: 4.0, 32: 13.7}, "TLS": {32: 9.8}})
    rows = parse(text)
    assert rows[0] == ["cores", "DSWP", "TLS"]
    assert rows[1] == ["8", "4.0", ""]
    assert rows[2] == ["32", "13.7", "9.8"]


def test_series_to_csv_custom_x_label():
    text = series_to_csv({"a": {1: 2.0}}, x_label="latency_us")
    assert parse(text)[0][0] == "latency_us"


def test_table_to_csv_quotes_commas():
    text = table_to_csv(["name", "note"], [["x", "a, b"]])
    rows = parse(text)
    assert rows[1] == ["x", "a, b"]


def test_write_csv_creates_directories(tmp_path):
    target = tmp_path / "nested" / "out.csv"
    written = write_csv(target, "a,b\n1,2\n")
    assert written.exists()
    assert written.read_text() == "a,b\n1,2\n"
