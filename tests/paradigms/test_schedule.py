"""Unit tests for the Figure 1 schedulers."""

import pytest

from repro.errors import ParadigmError
from repro.paradigms import (
    Dependence,
    ProgramDependenceGraph,
    doacross_schedule,
    doall_schedule,
    dswp_schedule,
    example_list_loop,
    schedule_loop,
)


def speculated():
    return example_list_loop().speculate()


def test_figure1c_doacross_latency_1():
    # Paper Figure 1(c): latency 1 cycle -> DOACROSS 2 cycles/iter.
    result = doacross_schedule(speculated(), cores=2, iterations=100, latency=1.0)
    assert result.cycles_per_iteration == pytest.approx(2.0)


def test_figure1d_doacross_latency_2():
    # Paper Figure 1(d): latency 2 cycles -> DOACROSS 3 cycles/iter
    # (speedup drops from 2x to 1.33x).
    result = doacross_schedule(speculated(), cores=2, iterations=100, latency=2.0)
    assert result.cycles_per_iteration == pytest.approx(3.0)
    assert result.speedup_over(4.0) == pytest.approx(4.0 / 3.0)


def test_figure1_dswp_latency_insensitive():
    # Paper Figure 1(c,d): DSWP stays at 2 cycles/iter at both latencies.
    for latency in (1.0, 2.0, 8.0):
        result, _stages = dswp_schedule(speculated(), cores=2, iterations=100,
                                        latency=latency)
        assert result.cycles_per_iteration == pytest.approx(2.0)


def test_dswp_fill_time_grows_with_latency():
    fast, _ = dswp_schedule(speculated(), cores=2, iterations=50, latency=1.0)
    slow, _ = dswp_schedule(speculated(), cores=2, iterations=50, latency=10.0)
    assert slow.makespan > fast.makespan  # fill time differs
    assert slow.cycles_per_iteration == pytest.approx(fast.cycles_per_iteration)


def test_doall_requires_independence():
    with pytest.raises(ParadigmError, match="DOALL illegal"):
        doall_schedule(speculated(), cores=2, iterations=10, latency=1.0)


def test_doall_scales_with_cores():
    pdg = ProgramDependenceGraph()
    pdg.add_statement("W", cycles=4.0)
    one = doall_schedule(pdg, cores=1, iterations=100, latency=1.0)
    four = doall_schedule(pdg, cores=4, iterations=100, latency=1.0)
    assert one.cycles_per_iteration == pytest.approx(4.0)
    # The finish-time estimator quantizes at core granularity.
    assert four.cycles_per_iteration == pytest.approx(1.0, rel=0.05)


def test_schedule_loop_requires_complete_assignment():
    with pytest.raises(ParadigmError, match="without a core"):
        schedule_loop(speculated(), {"A": 0}, iterations=10, latency=1.0)


def test_schedule_loop_needs_iterations():
    with pytest.raises(ParadigmError):
        schedule_loop(speculated(), {s: 0 for s in "ABCD"}, iterations=1, latency=1.0)


def test_single_core_schedule_is_sequential():
    result = schedule_loop(speculated(), {s: 0 for s in "ABCD"},
                           iterations=50, latency=5.0)
    assert result.cycles_per_iteration == pytest.approx(4.0)


def test_doacross_more_cores_do_not_beat_dependence_chain():
    # The carried chain B(i) -> A(i+1) bounds DOACROSS regardless of
    # core count once latency dominates.
    two = doacross_schedule(speculated(), cores=2, iterations=100, latency=4.0)
    eight = doacross_schedule(speculated(), cores=8, iterations=100, latency=4.0)
    assert eight.cycles_per_iteration == pytest.approx(two.cycles_per_iteration)
