"""Unit tests for the Program Dependence Graph."""

import pytest

from repro.errors import ParadigmError
from repro.paradigms import (
    Dependence,
    DependenceKind,
    ProgramDependenceGraph,
    example_list_loop,
)


def test_add_statement_and_query():
    pdg = ProgramDependenceGraph()
    pdg.add_statement("A", cycles=3.0)
    assert pdg.statements == ["A"]
    assert pdg.cycles_of("A") == 3.0


def test_duplicate_statement_rejected():
    pdg = ProgramDependenceGraph()
    pdg.add_statement("A")
    with pytest.raises(ParadigmError):
        pdg.add_statement("A")


def test_dependence_endpoints_must_exist():
    pdg = ProgramDependenceGraph()
    pdg.add_statement("A")
    with pytest.raises(ParadigmError):
        pdg.add_dependence(Dependence("A", "B"))


def test_unknown_kind_rejected():
    with pytest.raises(ParadigmError):
        Dependence("A", "B", kind="psychic")


def test_is_doall():
    pdg = ProgramDependenceGraph()
    pdg.add_statement("A")
    pdg.add_statement("B")
    pdg.add_dependence(Dependence("A", "B"))
    assert pdg.is_doall()
    pdg.add_dependence(Dependence("B", "A", loop_carried=True))
    assert not pdg.is_doall()


def test_example_loop_has_paper_structure():
    pdg = example_list_loop()
    assert sorted(pdg.statements) == ["A", "B", "C", "D"]
    # Unspeculated, the whole loop is one tangle: the speculatable
    # memory dependences tie C and D back into the traversal.
    assert not pdg.is_doall()


def test_speculation_removes_marked_edges():
    pdg = example_list_loop()
    speculated = pdg.speculate()
    remaining = {(d.src, d.dst) for d in speculated.dependences}
    assert ("C", "B") not in remaining
    assert ("C", "C") not in remaining
    assert ("B", "A") in remaining  # real traversal dependence stays


def test_sccs_topological_order_after_speculation():
    speculated = example_list_loop().speculate()
    sccs = speculated.sccs()
    assert sccs[0] == frozenset({"A", "B"})  # the traversal recurrence
    assert frozenset({"C"}) in sccs
    assert frozenset({"D"}) in sccs
    assert sccs.index(frozenset({"C"})) < sccs.index(frozenset({"D"}))


def test_recurrences_detects_self_loop():
    pdg = ProgramDependenceGraph()
    pdg.add_statement("X")
    pdg.add_statement("Y")
    pdg.add_dependence(Dependence("X", "X", loop_carried=True))
    pdg.add_dependence(Dependence("X", "Y"))
    assert pdg.recurrences() == [frozenset({"X"})]


def test_speculate_with_predicate():
    pdg = example_list_loop()
    # Only speculate the C->C edge.
    narrowed = pdg.speculate(lambda d: d.src == "C" and d.dst == "C")
    remaining = {(d.src, d.dst) for d in narrowed.dependences}
    assert ("C", "C") not in remaining
    assert ("C", "B") in remaining
