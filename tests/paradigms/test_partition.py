"""Unit tests for DSWP partitioning."""

import pytest

from repro.errors import PartitionError
from repro.paradigms import (
    Dependence,
    ProgramDependenceGraph,
    Stage,
    dswp_partition,
    example_list_loop,
    validate_partition,
)


def test_partition_keeps_recurrence_together():
    pdg = example_list_loop().speculate()
    stages = dswp_partition(pdg, max_stages=2)
    assert len(stages) == 2
    assert stages[0].statements == frozenset({"A", "B"})
    assert stages[1].statements == frozenset({"C", "D"})


def test_partition_three_stages():
    pdg = example_list_loop().speculate()
    stages = dswp_partition(pdg, max_stages=3)
    assert [s.statements for s in stages] == [
        frozenset({"A", "B"}),
        frozenset({"C"}),
        frozenset({"D"}),
    ]


def test_partition_cannot_split_recurrence():
    # Even asking for 4 stages, {A,B} stays together.
    pdg = example_list_loop().speculate()
    stages = dswp_partition(pdg, max_stages=4)
    assert any(s.statements == frozenset({"A", "B"}) for s in stages)
    assert len(stages) <= 3


def test_parallel_stage_marking():
    pdg = example_list_loop().speculate()
    stages = dswp_partition(pdg, max_stages=3)
    # The traversal stage has the recurrence; C and D are replicable
    # once their loop-carried edges were speculated away.
    assert not stages[0].parallelizable
    assert stages[1].parallelizable
    assert stages[2].parallelizable


def test_unspeculated_loop_keeps_d_sequential():
    stages = dswp_partition(example_list_loop(), max_stages=4)
    stage_of = {s: i for i, stage in enumerate(stages) for s in stage.statements}
    # D->D carried dependence (file writes) makes D's stage sequential.
    d_stage = stages[stage_of["D"]]
    assert not d_stage.parallelizable


def test_zero_stages_rejected():
    with pytest.raises(PartitionError):
        dswp_partition(example_list_loop(), max_stages=0)


def test_validate_rejects_missing_statement():
    pdg = example_list_loop().speculate()
    stages = [Stage(statements=frozenset({"A", "B"}), cycles=2.0)]
    with pytest.raises(PartitionError, match="not assigned"):
        validate_partition(pdg, stages)


def test_validate_rejects_duplicates():
    pdg = example_list_loop().speculate()
    stages = [
        Stage(statements=frozenset({"A", "B", "C", "D"}), cycles=4.0),
        Stage(statements=frozenset({"D"}), cycles=1.0),
    ]
    with pytest.raises(PartitionError, match="multiple stages"):
        validate_partition(pdg, stages)


def test_validate_rejects_split_recurrence():
    pdg = example_list_loop().speculate()
    stages = [
        Stage(statements=frozenset({"A"}), cycles=1.0),
        Stage(statements=frozenset({"B", "C", "D"}), cycles=3.0),
    ]
    with pytest.raises(PartitionError, match="recurrence"):
        validate_partition(pdg, stages)


def test_validate_rejects_backward_dependence():
    pdg = ProgramDependenceGraph()
    pdg.add_statement("X")
    pdg.add_statement("Y")
    pdg.add_dependence(Dependence("X", "Y"))
    stages = [
        Stage(statements=frozenset({"Y"}), cycles=1.0),
        Stage(statements=frozenset({"X"}), cycles=1.0),
    ]
    with pytest.raises(PartitionError, match="backward"):
        validate_partition(pdg, stages)


def test_partition_balances_cycles():
    pdg = ProgramDependenceGraph()
    for name, cycles in [("A", 1.0), ("B", 10.0), ("C", 1.0)]:
        pdg.add_statement(name, cycles)
    pdg.add_dependence(Dependence("A", "B"))
    pdg.add_dependence(Dependence("B", "C"))
    stages = dswp_partition(pdg, max_stages=2)
    # The heavy statement dominates; the partition should not lump
    # everything into one stage.
    assert len(stages) == 2
