"""Property-based tests: DSWP partitioning over random dependence graphs.

For any loop PDG — random statements, random intra-iteration dependences
(kept acyclic by construction, as program order guarantees), random
loop-carried dependences — the partitioner must produce a valid pipeline
at any stage budget: complete, non-overlapping, recurrences intact,
communication acyclic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paradigms import (
    Dependence,
    ProgramDependenceGraph,
    dswp_partition,
    validate_partition,
)


@st.composite
def random_pdg(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    names = [f"s{i}" for i in range(n)]
    pdg = ProgramDependenceGraph()
    for name in names:
        pdg.add_statement(name, cycles=draw(st.floats(min_value=0.5, max_value=20.0)))
    # Intra-iteration dependences follow program order (src before dst),
    # which is what keeps them acyclic in real loops.
    for src_index in range(n):
        for dst_index in range(src_index + 1, n):
            if draw(st.booleans()):
                pdg.add_dependence(Dependence(names[src_index], names[dst_index]))
    # Loop-carried dependences may point anywhere (including backward).
    carried_count = draw(st.integers(min_value=0, max_value=n))
    for _ in range(carried_count):
        src = names[draw(st.integers(0, n - 1))]
        dst = names[draw(st.integers(0, n - 1))]
        pdg.add_dependence(Dependence(src, dst, loop_carried=True))
    return pdg


@settings(max_examples=80, deadline=None)
@given(pdg=random_pdg(), max_stages=st.integers(min_value=1, max_value=6))
def test_partition_always_valid(pdg, max_stages):
    stages = dswp_partition(pdg, max_stages)
    # validate_partition raises on any violated invariant.
    validate_partition(pdg, stages)
    assert 1 <= len(stages) <= max_stages


@settings(max_examples=80, deadline=None)
@given(pdg=random_pdg(), max_stages=st.integers(min_value=1, max_value=6))
def test_partition_covers_all_cycles(pdg, max_stages):
    stages = dswp_partition(pdg, max_stages)
    total = sum(stage.cycles for stage in stages)
    expected = sum(pdg.cycles_of(s) for s in pdg.statements)
    assert total == pytest.approx(expected)


@settings(max_examples=50, deadline=None)
@given(pdg=random_pdg())
def test_parallel_stages_really_have_no_recurrence(pdg):
    stages = dswp_partition(pdg, max_stages=4)
    recurrences = pdg.recurrences()
    for stage in stages:
        if stage.parallelizable:
            for recurrence in recurrences:
                assert not (recurrence <= stage.statements)
            for dependence in pdg.dependences:
                inside = (dependence.src in stage.statements
                          and dependence.dst in stage.statements)
                assert not (inside and dependence.loop_carried)


@settings(max_examples=50, deadline=None)
@given(pdg=random_pdg())
def test_single_stage_partition_is_whole_loop(pdg):
    (stage,) = dswp_partition(pdg, max_stages=1)
    assert stage.statements == frozenset(pdg.statements)


@settings(max_examples=50, deadline=None)
@given(pdg=random_pdg(), max_stages=st.integers(min_value=2, max_value=6))
def test_speculation_only_refines_components(pdg, max_stages):
    # Speculation can only remove edges, so strongly connected
    # components can only split, never merge — and the speculated loop
    # still partitions validly.  (The greedy balancer's *stage count*
    # may go either way: component order can change.)
    speculated = pdg.speculate(lambda d: d.loop_carried)  # speculate all carried
    assert len(speculated.sccs()) >= len(pdg.sccs())
    assert len(speculated.recurrences()) <= len(pdg.recurrences())
    validate_partition(speculated, dswp_partition(speculated, max_stages))
