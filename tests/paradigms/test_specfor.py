"""The speculative_for paradigm: round protocol, determinism, validation.

Three layers of assurance:

* hand-computed small cases — the round scheduler's batching, carry,
  and adaptive sizing pinned against arithmetic done on paper;
* pure-vs-simulated equality — :class:`SpecForSystem` must produce the
  identical committed image and identical ``ReservationStats`` as the
  host-level :func:`speculative_for` reference at *every* worker count;
* plan validation — ``speculative_for`` on a workload without a
  reservation site is rejected with the did-you-mean error.
"""

import pytest

from repro.errors import ConfigurationError, ParadigmError, PlanSyntaxError
from repro.memory import AddressSpace
from repro.paradigms import (
    DONE,
    TRY_AGAIN,
    TRY_COMMIT,
    SpecForSystem,
    StepContext,
    ensure_reservation_site,
    parse_plan,
    speculative_for,
    validate_plan,
)
from repro.workloads import (
    Crc32,
    ListContraction,
    MaximalIndependentSet,
    SpanningForest,
)


class AllSameSlot:
    """Toy step: every iteration fights over slot 0, then writes one
    word.  Maximal contention — exactly one winner per round."""

    def reserve(self, ctx, iteration):
        ctx.reserve(0)
        return TRY_COMMIT

    def commit(self, ctx, iteration):
        ctx.write(iteration * 8, iteration + 100)
        return True


class EvensOnly:
    """Toy step: odd iterations have no work (DONE); evens are
    conflict-free (each reserves its own slot)."""

    def reserve(self, ctx, iteration):
        if iteration % 2:
            return DONE
        ctx.reserve(iteration)
        return TRY_COMMIT

    def commit(self, ctx, iteration):
        ctx.write(iteration * 8, iteration)
        return True


def test_hand_computed_rounds_all_same_slot():
    """4 iterations, granularity 1 -> max_round 5, initial size 2.

    round 0: batch [0,1], 0 wins slot 0, 1 carried; carry >= 1/4 of the
             batch halves the size to 1.
    round 1: batch [1], wins; zero carry doubles the size to 2.
    round 2: batch [2,3], 2 wins, 3 carried; size back to 1.
    round 3: batch [3], wins.
    """
    master, stats = speculative_for(AllSameSlot(), 4, slots=1, granularity=1)
    assert stats.num_rounds == 4
    assert [r.attempted for r in stats.rounds] == [2, 1, 2, 1]
    assert [r.carried for r in stats.rounds] == [1, 0, 1, 0]
    assert [r.reservation_failures for r in stats.rounds] == [1, 0, 1, 0]
    assert stats.reservation_failures == 2
    assert stats.carried_total == 2
    assert stats.commit_failures == 0
    assert stats.committed == 4
    assert stats.words_committed == 4
    for i in range(4):
        assert master.read(i * 8) == i + 100


def test_hand_computed_done_iterations_complete_without_reserving():
    """8 iterations, granularity 1 -> size 4; no conflicts anywhere, so
    two rounds of 4 finish everything (odds DONE, evens commit)."""
    master, stats = speculative_for(EvensOnly(), 8, slots=8, granularity=1)
    assert stats.num_rounds == 2
    assert [r.attempted for r in stats.rounds] == [4, 4]
    assert [r.carried for r in stats.rounds] == [0, 0]
    assert stats.committed == 8
    assert stats.words_committed == 4  # only the evens wrote
    for i in range(0, 8, 2):
        assert master.read(i * 8) == i


def test_round_size_doubles_after_clean_rounds():
    """Conflict-free steps grow the batch geometrically up to the
    1/granularity cap."""
    master, stats = speculative_for(EvensOnly(), 64, slots=64, granularity=8)
    # max_round = 64 // 8 + 1 = 9, initial size 4, then 8, then capped 9.
    assert [r.attempted for r in stats.rounds][:3] == [4, 8, 9]
    assert stats.committed == 64


def test_simulated_matches_pure_reference_at_every_worker_count():
    for workers in (1, 2, 3, 4, 8):
        workload = SpanningForest(iterations=32, density=0.6)
        ref_master, ref_stats = _pure_run(SpanningForest(iterations=32, density=0.6))
        system = SpecForSystem(workload, workers=workers)
        system.run()
        assert system.service.stats == ref_stats, f"workers={workers}"
        assert _image(system.commit.master) == _image(ref_master), (
            f"workers={workers}"
        )


@pytest.mark.parametrize("cls", [SpanningForest, MaximalIndependentSet,
                                 ListContraction])
def test_worker_count_never_changes_stats_or_image(cls):
    runs = []
    for workers in (1, 4, 8):
        system = SpecForSystem(cls(iterations=24, density=0.8), workers=workers)
        system.run()
        runs.append((system.service.stats, _image(system.commit.master)))
    first_stats, first_image = runs[0]
    for stats, image in runs[1:]:
        assert stats == first_stats
        assert image == first_image


def test_stats_surface_into_run_stats():
    system = SpecForSystem(ListContraction(iterations=24, density=0.9), workers=4)
    result = system.run()
    stats = result.stats
    assert stats.specfor_rounds == system.service.stats.num_rounds
    assert stats.specfor_reservations == system.service.stats.reservations
    assert (stats.specfor_reservation_failures
            == system.service.stats.reservation_failures)
    assert stats.specfor_carried == system.service.stats.carried_total
    assert stats.committed_mtxs == 24
    assert stats.elapsed_seconds > 0
    assert stats.queue_bytes_by_purpose["specfor_round"] > 0
    assert stats.queue_bytes_by_purpose["specfor_reserve"] > 0
    assert stats.queue_bytes_by_purpose["specfor_commit"] > 0


# -- step-context discipline -------------------------------------------------------


def test_write_outside_commit_phase_is_rejected():
    ctx = StepContext(AddressSpace("t"), 0, StepContext.RESERVE)
    with pytest.raises(ParadigmError):
        ctx.write(0, 1)


def test_reserve_outside_reserve_phase_is_rejected():
    ctx = StepContext(AddressSpace("t"), 0, StepContext.COMMIT)
    with pytest.raises(ParadigmError):
        ctx.reserve(0)


def test_commit_phase_reads_own_writes():
    space = AddressSpace("t")
    space.write(0, 7)
    ctx = StepContext(space, 0, StepContext.COMMIT)
    assert ctx.read(0) == 7
    ctx.write(0, 9)
    assert ctx.read(0) == 9
    assert space.read(0) == 7  # buffered, not applied


def test_invalid_status_is_rejected():
    class BadStatus:
        def reserve(self, ctx, iteration):
            return 17

        def commit(self, ctx, iteration):
            return True

    with pytest.raises(ParadigmError):
        speculative_for(BadStatus(), 2, slots=1)


def test_reserving_then_backing_off_is_rejected():
    class ReservesButRetries:
        def reserve(self, ctx, iteration):
            ctx.reserve(0)
            return TRY_AGAIN

        def commit(self, ctx, iteration):
            return True

    with pytest.raises(ParadigmError):
        speculative_for(ReservesButRetries(), 2, slots=1)


# -- plan validation ----------------------------------------------------------------


def test_plan_notation_accepts_speculative_for_spellings():
    for text in ("speculative_for", "SPECFOR", "Spec-SPECFOR",
                 "speculative-for"):
        plan = parse_plan(text)
        assert plan.technique == "SPECFOR"
        assert plan.speculative


def test_plan_without_site_rejected_with_did_you_mean():
    plan = parse_plan("speculative_for")
    validate_plan(plan, SpanningForest(iterations=4))  # fine
    with pytest.raises(ParadigmError) as excinfo:
        validate_plan(plan, Crc32(iterations=4))
    message = str(excinfo.value)
    assert "no reservation site" in message
    assert "spanning_forest" in message


def test_did_you_mean_hint_on_near_miss():
    class Misspelled:
        name = "spanning_forrest"

        def reservation_site(self):
            return None

    with pytest.raises(ParadigmError) as excinfo:
        ensure_reservation_site(Misspelled())
    assert "did you mean 'spanning_forest'?" in str(excinfo.value)


def test_system_rejects_bad_configurations():
    with pytest.raises(ConfigurationError):
        SpecForSystem(SpanningForest(iterations=4), workers=0)
    with pytest.raises(ParadigmError):
        SpecForSystem(Crc32(iterations=4))
    with pytest.raises(ConfigurationError):
        speculative_for(AllSameSlot(), 0, slots=1)
    with pytest.raises(ConfigurationError):
        speculative_for(AllSameSlot(), 4, slots=1, granularity=0)
    with pytest.raises(PlanSyntaxError):
        parse_plan("DOACROSS+[S,DOALL]")


# -- helpers ------------------------------------------------------------------------


def _pure_run(workload):
    from repro.memory import UnifiedVirtualAddressSpace
    from repro.workloads.base import WriteThroughStore

    uva = UnifiedVirtualAddressSpace(owners=1)
    master = AddressSpace("pure.master")
    workload.build(uva, 0, WriteThroughStore(master))
    return speculative_for(
        workload.specfor_step(), workload.iterations,
        workload.reservation_site().slots, master,
    )


def _image(space):
    from repro.analysis.resilience import memory_fingerprint

    return memory_fingerprint(space)
