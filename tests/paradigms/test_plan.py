"""Unit tests for the plan-notation parser."""

import pytest

from repro.core.config import StageKind
from repro.errors import PlanSyntaxError
from repro.paradigms import format_plan, parse_plan
from repro.workloads import table2_rows


def test_parse_spec_dswp_brackets():
    plan = parse_plan("Spec-DSWP+[S,DOALL,S]")
    assert plan.technique == "DSWP"
    assert plan.speculative
    assert plan.stage_kinds == (StageKind.SEQUENTIAL, StageKind.PARALLEL,
                                StageKind.SEQUENTIAL)
    assert plan.needs_mtx  # speculation spanning a pipeline requires MTXs


def test_parse_per_stage_speculation():
    plan = parse_plan("DSWP+[Spec-DOALL,S]")
    assert not plan.speculative
    assert plan.stage_speculative == (True, False)
    assert not plan.needs_mtx  # single-stage speculation fits in a TX


def test_parse_simple_techniques():
    for text in ("DOALL", "DOACROSS", "TLS", "DSWP"):
        plan = parse_plan(text)
        assert plan.technique == text
        assert not plan.speculative


def test_parse_spec_doall():
    plan = parse_plan("Spec-DOALL")
    assert plan.technique == "DOALL"
    assert plan.speculative
    assert not plan.needs_mtx


def test_round_trip_formatting():
    for text in (
        "Spec-DSWP+[S,DOALL,S]",
        "DSWP+[Spec-DOALL,S]",
        "Spec-DSWP+[DOALL,S]",
        "Spec-DOALL",
        "TLS",
    ):
        assert format_plan(parse_plan(text)) == text


def test_pipeline_config_from_plan():
    plan = parse_plan("Spec-DSWP+[S,DOALL,S]")
    pipeline = plan.pipeline_config()
    assert pipeline.describe() == "[S,DOALL,S]"
    assert parse_plan("Spec-DOALL").pipeline_config().num_stages == 1


def test_syntax_errors():
    for bad in ("", "Spec-", "MAGIC", "DOALL+[S]", "DSWP+[S,", "DSWP+[S,WARP]",
                "DSWP+[]"):
        with pytest.raises(PlanSyntaxError):
            parse_plan(bad)


def test_all_table2_paradigms_parse():
    # Every paradigm string the registry reports must round-trip.
    for row in table2_rows():
        plan = parse_plan(row["paradigm"])
        assert plan.technique in ("DSWP", "DOALL")
