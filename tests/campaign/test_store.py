"""Campaign results store: persistence, refs, regression diffing."""

import pytest

from repro.campaign import CampaignStore, ScenarioResult
from repro.errors import CampaignError


def _result(name: str, scenario_digest: str, outcome_digest: str,
            index: int = 0, status: str = "ok") -> ScenarioResult:
    return ScenarioResult(
        name=name, index=index, scenario_digest=scenario_digest,
        outcome_digest=outcome_digest, status=status, benchmark="crc32",
        scheme="dsmtx", cores=8, committed_mtxs=24, speedup=3.0,
        elapsed_sim_seconds=0.01, wall_seconds=0.5,
    )


@pytest.fixture
def store(tmp_path):
    with CampaignStore(tmp_path / "test.sqlite") as s:
        yield s


def test_round_trip_preserves_the_canonical_record(store):
    original = _result("a", "s" * 64, "o" * 64)
    campaign_id = store.record_campaign(name="t", results=[original])
    (record,) = store.results(campaign_id)
    # wall_seconds rides alongside the canonical record...
    assert record.pop("wall_seconds") == 0.5
    # ... which survives storage byte-for-byte.
    assert record == original.record()


def test_empty_store_refuses_refs(tmp_path):
    with CampaignStore(tmp_path / "empty.sqlite") as store:
        with pytest.raises(CampaignError) as excinfo:
            store.resolve("latest")
        assert "no campaigns" in str(excinfo.value)


def test_resolve_latest_prev_and_ids(store):
    first = store.record_campaign(name="one", results=[_result("a", "s1", "o1")])
    second = store.record_campaign(name="two", results=[_result("a", "s1", "o1")])
    assert store.resolve("latest") == second
    assert store.resolve("prev") == first
    assert store.resolve(str(first)) == first
    with pytest.raises(CampaignError):
        store.resolve(999)
    with pytest.raises(CampaignError):
        store.resolve("newest")


def test_diff_on_a_synthetic_regression(store):
    # Campaign 1: three scenarios.  Campaign 2 re-runs two of them (one
    # with a changed outcome — the regression), drops one, adds one.
    store.record_campaign(name="before", results=[
        _result("stable", "sd-stable", "out-1", index=0),
        _result("drifts", "sd-drifts", "out-2", index=1),
        _result("dropped", "sd-dropped", "out-3", index=2),
    ])
    store.record_campaign(name="after", results=[
        _result("stable", "sd-stable", "out-1", index=0),
        _result("drifts", "sd-drifts", "out-2-CHANGED", index=1),
        _result("fresh", "sd-fresh", "out-4", index=2),
    ])
    diff = store.diff("prev", "latest")
    assert not diff.clean
    assert diff.unchanged == 1
    assert diff.changed == [("drifts", "sd-drifts", "out-2", "out-2-CHANGED")]
    assert diff.added == [("fresh", "sd-fresh")]
    assert diff.removed == [("dropped", "sd-dropped")]


def test_diff_of_identical_campaigns_is_clean(store):
    results = [_result("a", "s1", "o1"), _result("b", "s2", "o2", index=1)]
    store.record_campaign(name="x", results=results)
    store.record_campaign(name="y", results=results)
    diff = store.diff("prev", "latest")
    assert diff.clean
    assert diff.unchanged == 2
    assert not diff.added and not diff.removed


def test_campaign_listing_counts_ok(store):
    store.record_campaign(name="mixed", workers=4, source="x.json", results=[
        _result("good", "s1", "o1"),
        _result("bad", "s2", "o2", index=1, status="failed"),
    ])
    (row,) = store.campaigns()
    assert row["name"] == "mixed"
    assert row["scenarios"] == 2
    assert row["ok"] == 1
    assert row["workers"] == 4
    assert row["source"] == "x.json"


def test_store_persists_across_reopen(tmp_path):
    path = tmp_path / "persist.sqlite"
    with CampaignStore(path) as store:
        store.record_campaign(name="t", results=[_result("a", "s1", "o1")])
    with CampaignStore(path) as store:
        assert store.outcome_digests(store.resolve("latest")) == \
            [("a", "s1", "o1")]
