"""Campaign schema: validation, round-trip identity, expansion."""

import json
import warnings

import pytest

from repro.campaign import (
    CampaignSpec,
    FaultSpec,
    ScenarioSpec,
    load_campaign,
    loads_campaign,
    scenario_digest,
)
from repro.errors import CampaignError, CampaignValidationWarning


RICH_SCENARIO = {
    "name": "failover",
    "benchmark": "crc32",
    "scheme": "dsmtx",
    "cores": 8,
    "iterations": 48,
    "seed": 3,
    "batch_bytes": 64,
    "placement": "spread",
    "fault_tolerance": True,
    "commit_replication": True,
    "misspec_iterations": [7, 3],
    "misspec_every": 0,
    "faults": {"crash_commit": True, "crash_at_ms": 18.0, "drop": 0.02},
    "expect": {"committed_mtxs": 48, "matches_reference": True},
}


# -- round-trip identity ---------------------------------------------------------


def test_scenario_round_trip_identity():
    spec = ScenarioSpec.from_dict(dict(RICH_SCENARIO))
    again = ScenarioSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.digest() == spec.digest()


def test_round_trip_is_canonical():
    # to_dict emits every field, so two spellings of the same scenario
    # (defaults implicit vs explicit) resolve to one digest.
    minimal = ScenarioSpec.from_dict({"benchmark": "crc32"})
    explicit = ScenarioSpec.from_dict(minimal.to_dict())
    assert scenario_digest(minimal) == scenario_digest(explicit)


def test_digest_moves_with_any_field():
    base = ScenarioSpec.from_dict({"benchmark": "crc32"})
    for change in ({"cores": 16}, {"seed": 1}, {"scheme": "tls"},
                   {"faults": {"degrade": 4.0}},
                   {"expect": {"committed_mtxs": 24}}):
        other = ScenarioSpec.from_dict({"benchmark": "crc32", **change})
        assert other.digest() != base.digest(), change


def test_misspec_iterations_are_normalized():
    spec = ScenarioSpec.from_dict(
        {"benchmark": "crc32", "misspec_iterations": [9, 3, 3]})
    assert spec.misspec_iterations == (3, 9)


def test_resolved_misspec_iterations_merges_comb():
    spec = ScenarioSpec.from_dict(
        {"benchmark": "crc32", "misspec_iterations": [2], "misspec_every": 8})
    assert spec.resolved_misspec_iterations(24) == {2, 7, 15, 23}
    # Explicit entries past the iteration count are clipped.
    spec = ScenarioSpec.from_dict(
        {"benchmark": "crc32", "misspec_iterations": [99]})
    assert spec.resolved_misspec_iterations(24) is None


# -- validation errors -----------------------------------------------------------


def test_unknown_field_is_rejected_with_suggestion():
    with pytest.raises(CampaignError) as excinfo:
        ScenarioSpec.from_dict({"benchmark": "crc32", "coers": 8})
    assert "coers" in str(excinfo.value)
    assert "cores" in str(excinfo.value)  # difflib suggestion


def test_unknown_benchmark_is_rejected():
    with pytest.raises(CampaignError) as excinfo:
        ScenarioSpec.from_dict({"benchmark": "crc33"})
    assert "crc32" in str(excinfo.value)


def test_bad_scheme_is_rejected():
    with pytest.raises(CampaignError) as excinfo:
        ScenarioSpec.from_dict({"benchmark": "crc32", "scheme": "magic"})
    assert "dsmtx" in str(excinfo.value)


def test_core_budget_is_checked_at_load_time():
    # 164.gzip's 3-stage pipeline cannot run on 3 cores; the error
    # names the minimum so a campaign fails before it fans out.
    with pytest.raises(CampaignError) as excinfo:
        ScenarioSpec.from_dict({"benchmark": "164.gzip", "cores": 3})
    assert "at least" in str(excinfo.value)


def test_commit_replication_requires_fault_tolerance():
    with pytest.raises(CampaignError) as excinfo:
        ScenarioSpec.from_dict(
            {"benchmark": "crc32", "commit_replication": True})
    assert "fault_tolerance" in str(excinfo.value)


def test_probabilities_are_range_checked():
    with pytest.raises(CampaignError) as excinfo:
        ScenarioSpec.from_dict(
            {"benchmark": "crc32", "fault_tolerance": True,
             "faults": {"drop": 1.5}})
    assert "faults.drop" in str(excinfo.value)


def test_error_paths_name_the_document_location():
    with pytest.raises(CampaignError) as excinfo:
        CampaignSpec.from_dict({
            "name": "bad",
            "scenarios": [{"benchmark": "crc32"},
                          {"benchmark": "crc32", "cores": "eight"}],
        })
    assert "campaign.scenarios[1]" in str(excinfo.value)


# -- the FT-ignored-fields warning (satellite fix) -------------------------------


def test_ft_fault_fields_warn_and_are_ignored_without_ft():
    data = {"benchmark": "crc32",
            "faults": {"crash_node": 1, "drop": 0.1, "degrade": 4.0}}
    with pytest.warns(CampaignValidationWarning) as caught:
        spec = ScenarioSpec.from_dict(data)
    message = str(caught[0].message)
    # The warning names exactly the ignored fields...
    assert "crash_node" in message and "drop" in message
    assert "degrade" not in message  # legal in any mode, not ignored
    # ... and the spec is normalized so it runs (and digests) as what
    # it will actually do.
    assert spec.faults.crash_node == -1
    assert spec.faults.drop == 0.0
    assert spec.faults.degrade == 4.0


def test_normalized_spec_does_not_rewarn_on_reload():
    with pytest.warns(CampaignValidationWarning):
        spec = ScenarioSpec.from_dict(
            {"benchmark": "crc32", "faults": {"crash_commit": True}})
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        again = ScenarioSpec.from_dict(spec.to_dict())
    assert again == spec


def test_ft_fault_fields_do_not_warn_with_ft():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        spec = ScenarioSpec.from_dict(
            {"benchmark": "crc32", "fault_tolerance": True,
             "faults": {"crash_node": 1}})
    assert spec.faults.crash_node == 1


# -- fault spec ------------------------------------------------------------------


def test_inert_fault_spec_builds_no_plan():
    assert FaultSpec().build_plan(seed=0) is None


def test_fault_spec_times_are_milliseconds():
    spec = FaultSpec(crash_node=2, crash_at_ms=5.0)
    plan = spec.build_plan(seed=9)
    assert plan.seed == 9
    crash = plan.faults[0]
    assert crash.node == 2
    assert crash.at_s == pytest.approx(0.005)


def test_crash_commit_resolves_against_the_built_system():
    spec = FaultSpec(crash_commit=True)
    plan = spec.build_plan(seed=0, commit_node=6)
    assert plan.faults[0].node == 6
    with pytest.raises(CampaignError):
        spec.build_plan(seed=0)  # needs the commit node


# -- integrity & silent corruption -----------------------------------------------


def test_integrity_requires_fault_tolerance():
    with pytest.raises(CampaignError) as excinfo:
        ScenarioSpec.from_dict({"benchmark": "crc32", "integrity": True})
    assert "integrity" in str(excinfo.value)
    assert "fault_tolerance" in str(excinfo.value)


def test_corruption_probability_one_gets_a_hint():
    with pytest.raises(CampaignError, match="did you mean"):
        ScenarioSpec.from_dict(
            {"benchmark": "crc32", "fault_tolerance": True,
             "faults": {"corruption": 1.0}})


def test_corruption_is_ignored_without_ft():
    # Silent bit flips are only survivable when the reliable
    # transport's checksums can turn them into loss, so corruption
    # follows the same normalize-and-warn rule as drop/dup.
    with pytest.warns(CampaignValidationWarning) as caught:
        spec = ScenarioSpec.from_dict(
            {"benchmark": "crc32", "faults": {"corruption": 0.05}})
    assert "corruption" in str(caught[0].message)
    assert spec.faults.corruption == 0.0


def test_corruption_builds_a_message_corruption_fault():
    from repro.chaos import MessageCorruption

    spec = FaultSpec(corruption=0.02)
    plan = spec.build_plan(seed=4)
    (fault,) = plan.faults
    assert isinstance(fault, MessageCorruption)
    assert fault.probability == pytest.approx(0.02)


def test_integrity_and_corruption_leave_old_digests_alone():
    # Absent features leave no trace: a scenario that never mentions
    # the new knobs dumps (and digests) exactly as it always did.
    plain = ScenarioSpec.from_dict({"benchmark": "crc32"})
    assert "integrity" not in plain.to_dict()
    assert "corruption" not in plain.to_dict()["faults"]
    spec = ScenarioSpec.from_dict(
        {"benchmark": "crc32", "fault_tolerance": True, "integrity": True,
         "faults": {"corruption": 0.01}})
    again = ScenarioSpec.from_dict(spec.to_dict())
    assert again == spec
    assert spec.digest() != plain.digest()


# -- campaign expansion ----------------------------------------------------------


def test_expansion_is_the_cartesian_product():
    campaign = CampaignSpec.from_dict({
        "name": "grid",
        "defaults": {"iterations": 8},
        "axes": {"cores": [8, 16], "seed": [0, 1, 2]},
        "scenarios": [{"name": "a", "benchmark": "crc32"},
                      {"name": "b", "benchmark": "swaptions"}],
    })
    specs = campaign.expand()
    assert len(specs) == 2 * 2 * 3
    assert specs[0].name == "a/cores=8/seed=0"
    assert specs[0].iterations == 8  # defaults flow through
    assert {s.name for s in specs} == {
        f"{base}/cores={c}/seed={s}"
        for base in "ab" for c in (8, 16) for s in (0, 1, 2)
    }


def test_dotted_axes_reach_nested_fields():
    campaign = CampaignSpec.from_dict({
        "name": "faulty",
        "defaults": {"fault_tolerance": True},
        "axes": {"faults.crash_at_ms": [2.0, 4.0]},
        "scenarios": [{"name": "x", "benchmark": "crc32",
                       "faults": {"crash_node": 1}}],
    })
    specs = campaign.expand()
    assert [s.faults.crash_at_ms for s in specs] == [2.0, 4.0]
    # The base's own fault fields survive the axis merge.
    assert all(s.faults.crash_node == 1 for s in specs)
    assert specs[0].name == "x/crash_at_ms=2"


def test_overly_deep_axis_key_is_rejected():
    with pytest.raises(CampaignError) as excinfo:
        CampaignSpec.from_dict({
            "name": "bad",
            "axes": {"faults.crash.deep": [1]},
            "scenarios": [{"benchmark": "crc32"}],
        })
    assert "faults.crash.deep" in str(excinfo.value)


def test_duplicate_names_are_rejected():
    with pytest.raises(CampaignError) as excinfo:
        CampaignSpec.from_dict({
            "name": "dupes",
            "scenarios": [{"name": "same", "benchmark": "crc32"},
                          {"name": "same", "benchmark": "swaptions"}],
        })
    assert "duplicate scenario name" in str(excinfo.value)


def test_expansion_is_validated_at_load_time():
    # The bad core count only appears after the axis product; loading
    # still rejects it.
    with pytest.raises(CampaignError):
        CampaignSpec.from_dict({
            "name": "bad-grid",
            "axes": {"cores": [8, 3]},
            "scenarios": [{"benchmark": "164.gzip"}],
        })


# -- document loading ------------------------------------------------------------


def test_loads_json_with_clear_parse_error():
    with pytest.raises(CampaignError) as excinfo:
        loads_campaign("{not json", source="broken.json")
    assert "broken.json" in str(excinfo.value)


def test_load_campaign_file_round_trip(tmp_path):
    doc = {"name": "tiny",
           "scenarios": [{"name": "one", "benchmark": "crc32"}]}
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps(doc))
    campaign = load_campaign(path)
    assert campaign.name == "tiny"
    assert campaign.source == str(path)
    assert [s.name for s in campaign.expand()] == ["one"]


def test_load_yaml_campaign(tmp_path):
    yaml = pytest.importorskip("yaml")
    del yaml
    path = tmp_path / "tiny.yaml"
    path.write_text(
        "name: tiny\nscenarios:\n  - name: one\n    benchmark: crc32\n")
    campaign = load_campaign(path)
    assert [s.name for s in campaign.expand()] == ["one"]


def test_curated_scenarios_load_and_expand():
    # Every shipped campaign file must stay loadable; the example grid
    # meets its advertised >= 100 scenarios.
    from pathlib import Path

    scenarios_dir = Path(__file__).resolve().parents[2] / "scenarios"
    sizes = {}
    for path in sorted(scenarios_dir.iterdir()):
        if path.suffix not in (".json", ".yaml", ".yml"):
            continue
        campaign = load_campaign(path)
        sizes[path.name] = len(campaign.expand())
    assert sizes["example_grid.json"] >= 100
    assert sizes["ci_smoke.json"] == 8
