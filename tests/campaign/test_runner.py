"""Campaign runner: sweep execution, determinism across worker counts."""

from repro.campaign import CampaignSpec, ScenarioSpec, run_campaign, run_scenario


def _tiny_grid() -> CampaignSpec:
    return CampaignSpec.from_dict({
        "name": "tiny-grid",
        "defaults": {"iterations": 8, "cores": 8,
                     "expect": {"committed_mtxs": 8}},
        "axes": {"batch_bytes": [512, 2048]},
        "scenarios": [{"name": "crc32", "benchmark": "crc32"},
                      {"name": "crc32-tls", "benchmark": "crc32",
                       "scheme": "tls"}],
    })


def test_run_scenario_produces_a_complete_record():
    spec = ScenarioSpec.from_dict(
        {"name": "one", "benchmark": "crc32", "iterations": 8,
         "expect": {"committed_mtxs": 8}})
    result = run_scenario(spec, index=3)
    assert result.ok
    assert result.index == 3
    assert result.scenario_digest == spec.digest()
    assert len(result.outcome_digest) == 64
    assert result.committed_mtxs == 8
    assert result.elapsed_sim_seconds > 0
    assert result.speedup > 0
    assert result.wall_seconds > 0
    record = result.record()
    assert "wall_seconds" not in record  # canonical record is host-independent
    assert record["schema"] == 1


def test_missed_expectation_marks_failed_without_raising():
    spec = ScenarioSpec.from_dict(
        {"name": "wrong", "benchmark": "crc32", "iterations": 8,
         "expect": {"committed_mtxs": 9}})
    result = run_scenario(spec)
    assert result.status == "failed"
    assert not result.ok
    assert "committed_mtxs" in result.failures[0]


def test_run_error_is_folded_into_the_record():
    # Crashing the node that hosts the commit unit without a standby is
    # unsurvivable; the sweep must absorb that as an 'error' record
    # instead of dying.  Under spread placement at 8 cores the commit
    # unit lands on node 6 (pinned by the determinism suite).
    spec = ScenarioSpec.from_dict(
        {"name": "doomed", "benchmark": "crc32", "iterations": 8,
         "cores": 8, "placement": "spread", "fault_tolerance": True,
         "faults": {"crash_node": 6, "crash_at_ms": 0.5}})
    result = run_scenario(spec)
    assert result.status == "error"
    assert result.failures


def test_records_are_byte_identical_across_worker_counts():
    scenarios = _tiny_grid().expand()
    inline = run_campaign(scenarios, workers=1)
    fanned = run_campaign(scenarios, workers=3)
    assert [r.record_json() for r in inline] == \
        [r.record_json() for r in fanned]
    assert all(r.ok for r in inline)


def test_progress_callback_sees_every_completion():
    scenarios = _tiny_grid().expand()
    seen = []
    run_campaign(scenarios, workers=1,
                 progress=lambda done, total, r: seen.append((done, total)))
    assert seen == [(i + 1, len(scenarios)) for i in range(len(scenarios))]


def test_misspec_comb_flows_into_the_run():
    spec = ScenarioSpec.from_dict(
        {"name": "dense", "benchmark": "crc32", "iterations": 16,
         "misspec_every": 8, "expect": {"committed_mtxs": 16}})
    result = run_scenario(spec)
    assert result.ok
    assert result.misspeculations == 2  # iterations 7 and 15
