"""Unit tests for nodes, cores, and cycle accounting."""

import pytest

from repro.cluster import ClusterSpec, Machine
from repro.sim import Environment


def make_machine(nodes=2, cores_per_node=2, clock_hz=1e9, ipc=1.0):
    env = Environment()
    spec = ClusterSpec(
        nodes=nodes, cores_per_node=cores_per_node, clock_hz=clock_hz,
        instructions_per_cycle=ipc,
    )
    return env, Machine(env, spec)


def test_machine_builds_all_cores():
    _env, machine = make_machine(nodes=3, cores_per_node=4)
    assert machine.total_cores == 12
    assert len(list(machine.iter_cores())) == 12


def test_core_lookup_global_index():
    _env, machine = make_machine(nodes=2, cores_per_node=2)
    core = machine.core(3)
    assert core.index == 3
    assert core.node_index == 1


def test_compute_advances_time_by_cycles():
    env, machine = make_machine(clock_hz=1e9)
    core = machine.core(0)

    def proc():
        yield core.compute(5e8)  # 0.5 seconds at 1 GHz

    env.process(proc())
    env.run()
    assert env.now == pytest.approx(0.5)


def test_execute_instructions_uses_ipc():
    env, machine = make_machine(clock_hz=1e9, ipc=2.0)
    core = machine.core(0)

    def proc():
        yield core.execute_instructions(1e9)  # 5e8 cycles -> 0.5 s

    env.process(proc())
    env.run()
    assert env.now == pytest.approx(0.5)


def test_negative_cycles_rejected():
    _env, machine = make_machine()
    with pytest.raises(ValueError):
        machine.core(0).compute(-1)
    with pytest.raises(ValueError):
        machine.core(0).charge_cycles(-1)


def test_deferred_charges_realized_on_drain():
    env, machine = make_machine(clock_hz=1e9)
    core = machine.core(0)
    times = []

    def proc():
        core.charge_cycles(1e8)
        core.charge_cycles(2e8)
        assert env.now == 0.0
        yield from core.drain()
        times.append(env.now)
        # Drain with nothing pending yields nothing.
        yield from core.drain()
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [pytest.approx(0.3), pytest.approx(0.3)]
    assert core.pending_cycles == 0.0


def test_busy_cycles_tracks_all_work():
    env, machine = make_machine()
    core = machine.core(0)

    def proc():
        core.charge_cycles(100)
        yield core.compute(50)
        yield from core.drain()

    env.process(proc())
    env.run()
    assert core.busy_cycles == pytest.approx(150)
