"""Unit tests for the batched DSMTX message queue (Channel)."""

import pytest

from repro.cluster import (
    CLOSE_TOKEN,
    MPI,
    Channel,
    ClusterSpec,
    Interconnect,
    Machine,
    MPIVariant,
)
from repro.errors import ChannelClosedError, ChannelFlushedError, CommunicationError
from repro.sim import Environment


def make_channel(batch_bytes=None, mode="batched", item_bytes=16,
                 integrity=False, **spec_kwargs):
    env = Environment()
    spec = ClusterSpec(nodes=4, cores_per_node=4, **spec_kwargs)
    machine = Machine(env, spec)
    mpi = MPI(env, machine, Interconnect(env, machine))
    channel = Channel(
        mpi, src_core=0, dst_core=4, name="q0",
        batch_bytes=batch_bytes, item_bytes=item_bytes, mode=mode,
        integrity=integrity,
    )
    return env, channel


def test_produce_consume_roundtrip():
    env, channel = make_channel()
    received = []

    def producer():
        for i in range(10):
            yield from channel.produce(i)
        yield from channel.flush_pending()

    def consumer():
        for _ in range(10):
            received.append((yield from channel.consume()))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == list(range(10))


def test_batching_reduces_mpi_calls():
    env, channel = make_channel(batch_bytes=160, item_bytes=16)

    def producer():
        for i in range(100):
            yield from channel.produce(i)
        yield from channel.flush_pending()

    def consumer():
        for _ in range(100):
            yield from channel.consume()

    env.process(producer())
    env.process(consumer())
    env.run()
    # 100 items of 16 bytes = 1600 bytes = 10 batches of 160.
    assert channel.batches_sent == 10
    assert channel.mpi.sent_count[MPIVariant.SEND] == 10


def test_direct_mode_sends_every_item():
    env, channel = make_channel(mode="direct")

    def producer():
        for i in range(5):
            yield from channel.produce(i)

    def consumer():
        for _ in range(5):
            yield from channel.consume()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert channel.mpi.sent_count[MPIVariant.SEND] == 5


def test_flush_pending_pushes_partial_batch():
    env, channel = make_channel(batch_bytes=1600)
    received = []

    def producer():
        yield from channel.produce("only-one")
        yield from channel.flush_pending()

    def consumer():
        received.append((yield from channel.consume()))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == ["only-one"]
    assert channel.batches_sent == 1


def test_close_delivers_token_after_data():
    env, channel = make_channel()
    received = []

    def producer():
        yield from channel.produce("data")
        yield from channel.close()

    def consumer():
        while True:
            value = yield from channel.consume()
            received.append(value)
            if value is CLOSE_TOKEN:
                return

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == ["data", CLOSE_TOKEN]


def test_produce_after_close_rejected():
    env, channel = make_channel()

    def producer():
        yield from channel.close()
        with pytest.raises(ChannelClosedError):
            yield from channel.produce("late")

    def consumer():
        yield from channel.consume()

    env.process(producer())
    env.process(consumer())
    env.run()


def test_try_consume():
    env, channel = make_channel()
    results = []

    def producer():
        yield from channel.produce("x")
        yield from channel.flush_pending()

    def consumer():
        ok, _ = channel.try_consume()
        results.append(ok)  # nothing delivered yet at t=0
        yield env.timeout(1.0)
        ok, value = channel.try_consume()
        results.append((ok, value))

    env.process(consumer())
    env.process(producer())
    env.run()
    assert results == [False, (True, "x")]


def test_discard_all_aborts_blocked_consumer():
    env, channel = make_channel()
    outcome = []

    def consumer():
        try:
            yield from channel.consume()
        except ChannelFlushedError:
            outcome.append("flushed")

    def flusher():
        yield env.timeout(1.0)
        channel.discard_all()

    env.process(consumer())
    env.process(flusher())
    env.run()
    assert outcome == ["flushed"]


def test_discard_all_counts_buffered_items():
    env, channel = make_channel(batch_bytes=10_000)

    def producer():
        for i in range(7):
            yield from channel.produce(i)

    env.process(producer())
    env.run()
    assert channel.pending_items == 7
    assert channel.discard_all() == 7
    assert channel.pending_items == 0


def test_stats_track_bytes_and_items():
    env, channel = make_channel(item_bytes=16)

    def producer():
        yield from channel.produce("a")
        yield from channel.produce("b", nbytes=100)
        yield from channel.flush_pending()

    env.process(producer())
    env.run()
    assert channel.items_produced == 2
    assert channel.bytes_produced == 116


def test_unknown_mode_rejected():
    with pytest.raises(CommunicationError):
        make_channel(mode="bogus")


def _attach_corruption(env, probability=0.999999):
    """Wire a near-certain MessageCorruption plan into ``env``.

    src_core=0 and dst_core=4 sit on different nodes (4 cores per
    node), so every batch crosses the inter-node wire the chaos engine
    adjudicates.
    """
    from repro.chaos import ChaosEngine, FaultPlan, MessageCorruption

    plan = FaultPlan(faults=(MessageCorruption(probability=probability),))
    engine = ChaosEngine(plan)
    engine.attach(env)
    return engine


def test_integrity_roundtrip_is_transparent():
    # On a clean wire the checksum must change nothing observable:
    # same values, same order, close token intact, zero detections.
    env, channel = make_channel(batch_bytes=64, integrity=True)
    received = []

    def producer():
        for i in range(10):
            yield from channel.produce(i)
        yield from channel.close()

    def consumer():
        while True:
            value = yield from channel.consume()
            received.append(value)
            if value is CLOSE_TOKEN:
                return

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == list(range(10)) + [CLOSE_TOKEN]
    assert channel.corruptions_detected == 0


def test_corrupted_batch_is_fail_stop_under_integrity():
    # The stand-alone queue has no retransmit buffer, so a checksum
    # mismatch cannot be repaired — it must surface as an error, not
    # as silently wrong data.
    env, channel = make_channel(batch_bytes=64, integrity=True)
    engine = _attach_corruption(env)
    outcome = []

    def producer():
        for i in range(4):
            yield from channel.produce(i)
        yield from channel.flush_pending()

    def consumer():
        try:
            yield from channel.consume()
        except CommunicationError as exc:
            outcome.append(str(exc))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert engine.messages_corrupted == 1
    assert channel.corruptions_detected == 1
    assert outcome and "checksum mismatch" in outcome[0]


def test_corruption_without_integrity_is_silent():
    # The hazard the checksum exists for: with integrity off the
    # corrupted batch is delivered as if nothing happened, and the
    # consumer computes on wrong values without any error signal.
    env, channel = make_channel(batch_bytes=64)
    engine = _attach_corruption(env)
    received = []

    def producer():
        for i in range(4):
            yield from channel.produce(i)
        yield from channel.flush_pending()

    def consumer():
        for _ in range(4):
            received.append((yield from channel.consume()))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert engine.messages_corrupted == 1
    assert channel.corruptions_detected == 0
    assert len(received) == 4
    assert received != [0, 1, 2, 3]


def _queue_stream_bandwidth(batch_bytes, messages=20_000, item_bytes=8):
    """Sustained bandwidth of the DSMTX queue for 8-byte produces."""
    env, channel = make_channel(batch_bytes=batch_bytes, item_bytes=item_bytes)
    done = env.event()

    def producer():
        for i in range(messages):
            yield from channel.produce(i)
        yield from channel.flush_pending()

    def consumer():
        for _ in range(messages):
            yield from channel.consume()
        core = channel.mpi.machine.core(channel.dst_core)
        yield from core.drain()
        done.succeed(env.now)

    env.process(producer())
    env.process(consumer())
    elapsed = env.run(until=done)
    return messages * item_bytes / elapsed


def test_queue_bandwidth_matches_paper():
    # Paper section 5.3: DSMTX queues sustain 480.7 MBps vs ~13 MBps
    # for direct MPI calls.
    bandwidth = _queue_stream_bandwidth(batch_bytes=4096)
    assert bandwidth == pytest.approx(480.7e6, rel=0.10)


def test_queue_bandwidth_beats_direct_mpi_by_large_factor():
    batched = _queue_stream_bandwidth(batch_bytes=4096, messages=5000)
    assert batched > 30 * 13.1e6
