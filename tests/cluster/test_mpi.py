"""Unit tests for the simulated MPI layer, including the bandwidth
calibration against the paper's section 5.3 measurements."""

import pytest

from repro.cluster import MPI, ClusterSpec, Interconnect, Machine, MPIVariant
from repro.errors import ChannelFlushedError, CommunicationError
from repro.sim import Environment


def make_mpi(**spec_kwargs):
    env = Environment()
    spec = ClusterSpec(nodes=4, cores_per_node=4, **spec_kwargs)
    machine = Machine(env, spec)
    net = Interconnect(env, machine)
    return env, machine, MPI(env, machine, net)


def test_send_recv_roundtrip():
    env, _machine, mpi = make_mpi()
    received = []

    def sender():
        yield from mpi.send(0, 4, {"x": 1}, nbytes=8)

    def receiver():
        payload = yield from mpi.recv(4, 0)
        received.append(payload)

    env.process(sender())
    env.process(receiver())
    env.run()
    assert received == [{"x": 1}]


def test_send_to_self_rejected():
    _env, _machine, mpi = make_mpi()
    with pytest.raises(CommunicationError):
        list(mpi.send(0, 0, "x", 8))


def test_messages_fifo_per_pair():
    env, _machine, mpi = make_mpi()
    received = []

    def sender():
        for i in range(5):
            yield from mpi.send(0, 4, i, nbytes=8)

    def receiver():
        for _ in range(5):
            received.append((yield from mpi.recv(4, 0)))

    env.process(sender())
    env.process(receiver())
    env.run()
    assert received == [0, 1, 2, 3, 4]


def test_tags_separate_streams():
    env, _machine, mpi = make_mpi()
    received = {}

    def sender():
        yield from mpi.send(0, 4, "for-b", nbytes=8, tag="b")
        yield from mpi.send(0, 4, "for-a", nbytes=8, tag="a")

    def receiver():
        received["a"] = yield from mpi.recv(4, 0, tag="a")
        received["b"] = yield from mpi.recv(4, 0, tag="b")

    env.process(sender())
    env.process(receiver())
    env.run()
    assert received == {"a": "for-a", "b": "for-b"}


def test_try_recv():
    env, _machine, mpi = make_mpi()
    results = []

    def sender():
        yield from mpi.send(0, 4, "hello", nbytes=8)

    def receiver():
        ok, _ = mpi.try_recv(4, 0)
        results.append(ok)  # nothing arrived yet at t=0
        yield env.timeout(1.0)
        ok, payload = mpi.try_recv(4, 0)
        results.append((ok, payload))

    env.process(receiver())
    env.process(sender())
    env.run()
    assert results == [False, (True, "hello")]


def test_flush_all_aborts_blocked_recv():
    env, _machine, mpi = make_mpi()
    outcome = []

    def receiver():
        try:
            yield from mpi.recv(4, 0)
        except ChannelFlushedError:
            outcome.append("flushed")

    def flusher():
        yield env.timeout(1.0)
        mpi.flush_all()

    env.process(receiver())
    env.process(flusher())
    env.run()
    assert outcome == ["flushed"]


def test_flush_all_counts_discarded():
    env, _machine, mpi = make_mpi()

    def sender():
        yield from mpi.send(0, 4, "a", nbytes=8)
        yield from mpi.send(0, 4, "b", nbytes=8)

    env.process(sender())
    env.run()
    assert mpi.flush_all() == 2


def _stream_bandwidth(variant, messages=2000, payload_bytes=8):
    """Measured steady-state bandwidth for a stream of small messages."""
    env, _machine, mpi = make_mpi()
    done = env.event()

    def sender():
        for i in range(messages):
            yield from mpi.send(0, 4, i, nbytes=payload_bytes, variant=variant)

    def receiver():
        for _ in range(messages):
            yield from mpi.recv(4, 0)
        done.succeed(env.now)

    env.process(sender())
    env.process(receiver())
    elapsed = env.run(until=done)
    return messages * payload_bytes / elapsed


def test_stream_bandwidth_matches_paper_send():
    # Paper section 5.3: MPI_Send sustains 13.1 MBps for 8-byte data.
    bandwidth = _stream_bandwidth(MPIVariant.SEND)
    assert bandwidth == pytest.approx(13.1e6, rel=0.05)


def test_stream_bandwidth_matches_paper_bsend():
    # Paper: MPI_Bsend sustains 12.7 MBps.
    bandwidth = _stream_bandwidth(MPIVariant.BSEND)
    assert bandwidth == pytest.approx(12.7e6, rel=0.05)


def test_stream_bandwidth_matches_paper_isend():
    # Paper: MPI_Isend sustains 8.1 MBps.
    bandwidth = _stream_bandwidth(MPIVariant.ISEND)
    assert bandwidth == pytest.approx(8.1e6, rel=0.05)


def test_variant_ordering_is_stable():
    send = _stream_bandwidth(MPIVariant.SEND, messages=100)
    bsend = _stream_bandwidth(MPIVariant.BSEND, messages=100)
    isend = _stream_bandwidth(MPIVariant.ISEND, messages=100)
    assert send > bsend > isend
