"""Unit tests for thread-to-core placement."""

import pytest

from repro.cluster import ClusterSpec, place_units
from repro.errors import PlacementError


def test_pack_fills_nodes_in_order():
    spec = ClusterSpec(nodes=3, cores_per_node=4)
    assert place_units(spec, 6, policy="pack") == [0, 1, 2, 3, 4, 5]


def test_spread_round_robins_nodes():
    spec = ClusterSpec(nodes=3, cores_per_node=4)
    cores = place_units(spec, 5, policy="spread")
    nodes = [spec.node_of_core(c) for c in cores]
    assert nodes == [0, 1, 2, 0, 1]


def test_spread_assigns_distinct_cores():
    spec = ClusterSpec(nodes=4, cores_per_node=4)
    cores = place_units(spec, 16, policy="spread")
    assert len(set(cores)) == 16


def test_too_many_units_rejected():
    spec = ClusterSpec(nodes=2, cores_per_node=2)
    with pytest.raises(PlacementError):
        place_units(spec, 5)


def test_zero_units_rejected():
    spec = ClusterSpec(nodes=2, cores_per_node=2)
    with pytest.raises(PlacementError):
        place_units(spec, 0)


def test_unknown_policy_rejected():
    spec = ClusterSpec(nodes=2, cores_per_node=2)
    with pytest.raises(PlacementError):
        place_units(spec, 2, policy="zigzag")
