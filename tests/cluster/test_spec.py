"""Unit tests for the cluster specification."""

import pytest

from repro.cluster import DEFAULT_CLUSTER, ClusterSpec
from repro.errors import ConfigurationError


def test_default_cluster_matches_paper_platform():
    # 32 nodes x 4 cores = 128 cores, 3.00 GHz Xeon 5160 (section 5.1).
    assert DEFAULT_CLUSTER.nodes == 32
    assert DEFAULT_CLUSTER.cores_per_node == 4
    assert DEFAULT_CLUSTER.total_cores == 128
    assert DEFAULT_CLUSTER.clock_hz == pytest.approx(3.0e9)
    assert DEFAULT_CLUSTER.page_bytes == 4096


def test_node_of_core():
    spec = ClusterSpec(nodes=4, cores_per_node=2)
    assert spec.node_of_core(0) == 0
    assert spec.node_of_core(1) == 0
    assert spec.node_of_core(2) == 1
    assert spec.node_of_core(7) == 3


def test_node_of_core_out_of_range():
    spec = ClusterSpec(nodes=2, cores_per_node=2)
    with pytest.raises(ConfigurationError):
        spec.node_of_core(4)
    with pytest.raises(ConfigurationError):
        spec.node_of_core(-1)


def test_same_node():
    spec = ClusterSpec(nodes=2, cores_per_node=4)
    assert spec.same_node(0, 3)
    assert not spec.same_node(3, 4)


def test_wire_parameters_differ_by_locality():
    spec = ClusterSpec(nodes=2, cores_per_node=2)
    intra = spec.wire_parameters(0, 1)
    inter = spec.wire_parameters(0, 2)
    assert intra[0] < inter[0]  # lower latency on-node
    assert intra[1] > inter[1]  # higher bandwidth on-node


def test_instructions_to_seconds():
    spec = ClusterSpec(clock_hz=1e9, instructions_per_cycle=2.0)
    assert spec.instructions_to_seconds(2e9) == pytest.approx(1.0)


def test_cycles_to_seconds():
    spec = ClusterSpec(clock_hz=2e9)
    assert spec.cycles_to_seconds(4e9) == pytest.approx(2.0)


def test_invalid_topology_rejected():
    with pytest.raises(ConfigurationError):
        ClusterSpec(nodes=0)
    with pytest.raises(ConfigurationError):
        ClusterSpec(cores_per_node=0)


def test_invalid_clock_rejected():
    with pytest.raises(ConfigurationError):
        ClusterSpec(clock_hz=0)


def test_invalid_batch_rejected():
    with pytest.raises(ConfigurationError):
        ClusterSpec(queue_batch_bytes=4)


def test_scc_like_preset_shape():
    # The section 2.3 manycore: 48 cores, no chip-wide coherence, far
    # lower latency than the InfiniBand cluster.
    from repro.cluster import SCC_LIKE

    assert SCC_LIKE.total_cores == 48
    assert SCC_LIKE.inter_node_latency_s < DEFAULT_CLUSTER.inter_node_latency_s / 100
    assert SCC_LIKE.inter_node_bandwidth_bps > DEFAULT_CLUSTER.inter_node_bandwidth_bps
    assert SCC_LIKE.mpi_recv_instructions < DEFAULT_CLUSTER.mpi_recv_instructions
