"""Unit tests for the wire-level interconnect model."""

import pytest

from repro.cluster import ClusterSpec, Interconnect, Machine
from repro.sim import Environment


def make_net(**spec_kwargs):
    env = Environment()
    spec = ClusterSpec(nodes=2, cores_per_node=2, **spec_kwargs)
    machine = Machine(env, spec)
    return env, machine, Interconnect(env, machine)


def test_blocking_transfer_time_inter_node():
    env, _machine, net = make_net(
        inter_node_latency_s=1e-3, inter_node_bandwidth_bps=1e6
    )
    done = []

    def proc():
        yield from net.send_blocking(0, 2, 1000)  # cores on different nodes
        done.append(env.now)

    env.process(proc())
    env.run()
    # 2 x serialization (1000B / 1e6Bps = 1 ms each) + 1 ms latency.
    assert done == [pytest.approx(3e-3)]


def test_blocking_transfer_time_intra_node():
    env, _machine, net = make_net(
        intra_node_latency_s=1e-4, intra_node_bandwidth_bps=1e6
    )
    done = []

    def proc():
        yield from net.send_blocking(0, 1, 1000)  # same node
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [pytest.approx(1e-3 + 1e-4)]


def test_eager_send_returns_after_transmit():
    env, _machine, net = make_net(
        inter_node_latency_s=1e-3, inter_node_bandwidth_bps=1e6
    )
    log = []

    def proc():
        yield from net.send(0, 2, 1000, deliver=lambda: log.append(("delivered", env.now)))
        log.append(("returned", env.now))

    env.process(proc())
    env.run()
    assert ("returned", pytest.approx(1e-3)) in log
    assert ("delivered", pytest.approx(3e-3)) in log


def test_nic_contention_serializes_senders():
    env, _machine, net = make_net(
        inter_node_latency_s=0.0, inter_node_bandwidth_bps=1e6
    )
    finished = []

    def sender(name):
        yield from net.send_blocking(0, 2, 1000)
        finished.append((name, env.now))

    env.process(sender("a"))
    env.process(sender("b"))
    env.run()
    times = sorted(t for _name, t in finished)
    # Transmissions serialize on the node-0 TX NIC: 1 ms apart at the source.
    assert times[0] == pytest.approx(2e-3)
    assert times[1] == pytest.approx(3e-3)


def test_stats_accumulate():
    env, _machine, net = make_net()

    def proc():
        yield from net.send_blocking(0, 2, 100)
        yield from net.send_blocking(0, 1, 50)

    env.process(proc())
    env.run()
    assert net.stats.total_messages == 2
    assert net.stats.total_bytes == 150
    assert net.stats.inter_node_bytes == 100
    assert net.stats.intra_node_bytes == 50
    snap = net.stats.snapshot()
    assert snap["total_bytes"] == 150


def test_negative_size_rejected():
    _env, _machine, net = make_net()
    with pytest.raises(ValueError):
        list(net.send(0, 2, -1))
    with pytest.raises(ValueError):
        list(net.send_blocking(0, 2, -1))


def test_fifo_delivery_same_pair():
    env, _machine, net = make_net(inter_node_latency_s=1e-3)
    arrivals = []

    def proc():
        for i in range(3):
            yield from net.send(0, 2, 100, deliver=lambda i=i: arrivals.append(i))

    env.process(proc())
    env.run()
    assert arrivals == [0, 1, 2]
