"""Runtime statistics.

Collects everything the paper's evaluation reports:

* execution time (speedup once divided into the sequential time);
* bytes transferred through DSMTX, for the bandwidth analysis of
  Figure 5(a);
* misspeculation counts and the per-phase recovery time breakdown of
  Figure 6 — ERM (enter recovery mode), FLQ (flush queues / reinstall
  protections), SEQ (sequential re-execution), with RFP (refill
  pipeline) recovered as the residual against a misspeculation-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RecoveryRecord", "FailureRecord", "CheckpointRecord", "RunStats"]


@dataclass
class RecoveryRecord:
    """Timing of one misspeculation recovery episode."""

    misspec_iteration: int
    #: Simulated time at which the commit unit saw the misspeculation.
    detected_at: float
    #: Time spent draining: committing every MTX before the aborted one
    #: while speculative run-ahead past it goes to waste.  Squash-related
    #: waiting, i.e. part of what the paper buckets as RFP.
    drain_seconds: float = 0.0
    #: Duration of the ERM phase (signal to all-units-in-recovery barrier).
    erm_seconds: float = 0.0
    #: Duration of the FLQ phase (queue flush + protection reinstatement).
    flq_seconds: float = 0.0
    #: Duration of the SEQ phase (sequential re-execution).
    seq_seconds: float = 0.0
    #: Iterations squashed (validated or in flight but not committed).
    squashed_iterations: int = 0
    #: Iterations re-executed sequentially by the commit unit.
    reexecuted_iterations: int = 0

    @property
    def accounted_seconds(self) -> float:
        """Directly measured overhead (everything except pipeline refill)."""
        return self.erm_seconds + self.flq_seconds + self.seq_seconds


@dataclass
class FailureRecord:
    """One node failure and the degraded-mode restart it triggered."""

    #: Node declared dead by the failure detector.
    node: int
    #: Units (tids) hosted on the dead node.
    dead_tids: tuple = ()
    #: Simulated time of the node's last heartbeat heard.
    last_heard_at: float = 0.0
    #: Simulated time at which the detector declared the node dead.
    detected_at: float = 0.0
    #: Simulated time at which survivors resumed in degraded mode.
    resumed_at: float = 0.0
    #: Iteration the survivors restarted from (the commit frontier).
    restart_base: int = 0
    #: Speculative iterations in flight past the restart base that were
    #: thrown away — the lost work of the failure.
    lost_iterations: int = 0
    #: Surviving worker count after re-partitioning.
    surviving_workers: int = 0
    #: Tid of the standby promoted to commit unit, or -1 when the
    #: failure did not take the commit unit (plain degraded restart).
    promoted_tid: int = -1
    #: Detection-to-promotion latency: time from declaring the primary
    #: dead to the promoted unit finishing its replay and taking over.
    promotion_seconds: float = 0.0
    #: Replication-log words replayed onto the standby's checkpoint
    #: image at promotion.
    replayed_words: int = 0
    #: Iterations the dead primary had committed past the last
    #: replicated frontier — lost with its master memory and
    #: re-executed (re-committed) by the survivors.
    recommitted_iterations: int = 0
    #: True when the standby's checkpoint image failed its digest check
    #: at promotion and the failover was refused (integrity mode).
    corrupt_image: bool = False

    @property
    def recovery_seconds(self) -> float:
        """Detection-to-resume latency of the degraded-mode restart."""
        return self.resumed_at - self.detected_at

    @property
    def outage_seconds(self) -> float:
        """Last-heartbeat-to-resume window (includes detection lag)."""
        return self.resumed_at - self.last_heard_at


@dataclass
class CheckpointRecord:
    """One epoch checkpoint taken by the commit unit."""

    #: Commit frontier (first uncommitted iteration) at checkpoint time.
    iteration: int
    #: Words committed since the previous checkpoint (checkpoint size).
    words: int
    #: Simulated time the checkpoint completed.
    at: float = 0.0


@dataclass
class RunStats:
    """Aggregated statistics for one parallel run."""

    #: MTXs (loop iterations) committed.
    committed_mtxs: int = 0
    #: Misspeculations that triggered recovery.
    misspeculations: int = 0
    #: Copy-On-Access page transfers served by the commit unit.
    coa_pages_served: int = 0
    #: Copy-On-Access single-word transfers (word-granularity ablation).
    coa_words_served: int = 0
    #: Payload bytes moved through runtime queues (all purposes).
    queue_bytes: int = 0
    #: Payload bytes, by queue purpose ("forward", "log", "data", ...).
    queue_bytes_by_purpose: dict = field(default_factory=dict)
    #: Queue batches sent.
    queue_batches: int = 0
    #: Read-log entries validated by the try-commit unit.
    reads_checked: int = 0
    #: Words group-committed by the commit unit.
    words_committed: int = 0
    #: Per-episode recovery records, in detection order.
    recoveries: list = field(default_factory=list)
    #: Node failures survived (degraded-mode restarts), in order.
    failures: list = field(default_factory=list)
    #: Epoch checkpoints taken by the commit unit (fault-tolerant mode).
    checkpoints: list = field(default_factory=list)
    #: Heartbeats sent by node heartbeat emitters (fault-tolerant mode).
    ft_heartbeats: int = 0
    #: Cumulative acks sent by reliable-transport ingest boxes.
    ft_acks: int = 0
    #: Frames re-sent after a retransmit timeout.
    ft_retransmits: int = 0
    #: Frames abandoned after ``max_retransmits`` attempts.
    ft_retransmit_giveups: int = 0
    #: Duplicate frames discarded by ingest-box sequence filtering.
    ft_duplicates_dropped: int = 0
    #: Frames that arrived ahead of sequence and were parked for reorder.
    ft_frames_reordered: int = 0
    #: Frames discarded because their source or destination unit was on
    #: a node already declared dead.
    ft_frames_from_dead_dropped: int = 0
    #: Committed words streamed to the commit standby (replication).
    ft_repl_words: int = 0
    #: Replay-log words the standby folded into its base image on
    #: checkpoint markers (the incremental checkpoint mirror).
    ft_repl_folded_words: int = 0
    #: Standby promotions to commit unit (commit-node failovers).
    ft_promotions: int = 0
    #: Replication-log words replayed at promotion time.
    ft_replayed_words: int = 0
    #: ``speculative_for`` round attempts voided and re-issued because a
    #: worker died mid-round (the re-execution cost of survival).
    ft_round_reexecutions: int = 0
    #: Corruptions caught by an integrity check: checksum-mismatched
    #: frames dropped at ingest, digest-mismatched checkpoint images,
    #: and scrub-detected committed-page corruption (integrity mode).
    ft_corruptions_detected: int = 0
    #: Detected corruptions healed — a dropped frame's intact
    #: retransmission ingested, or a corrupted page re-fetched/re-run.
    ft_corruptions_repaired: int = 0
    #: Detected corruptions with no clean copy to repair from (e.g. a
    #: corrupted checkpoint image at promotion): the run refuses to
    #: serve the data instead of silently using it.
    ft_corruptions_unrepairable: int = 0
    #: Scrub sweeps completed over committed memory (integrity mode).
    ft_scrub_rounds: int = 0
    #: Page audits performed across all scrub sweeps.
    ft_scrub_pages: int = 0
    #: Rounds executed by a ``speculative_for`` run (deterministic
    #: reservations; zero for the pipeline schemes).
    specfor_rounds: int = 0
    #: ``write_min`` reservations applied by the reservation service.
    specfor_reservations: int = 0
    #: Iterations that lost at least one reservation and were carried.
    specfor_reservation_failures: int = 0
    #: Iterations whose commit step declined after winning reservations.
    specfor_commit_failures: int = 0
    #: Iteration retries: carried-forward work summed over rounds.
    specfor_carried: int = 0
    #: Wall-clock (simulated) duration of the parallel region.
    elapsed_seconds: float = 0.0
    #: Observability hub (:class:`repro.obs.Observability`) mirroring the
    #: byte accounting into its metrics registry; ``None`` when the run
    #: is not instrumented.
    observer: object = field(default=None, repr=False, compare=False)

    def record_queue_bytes(self, purpose: str, nbytes: int) -> None:
        self.queue_bytes += nbytes
        self.queue_bytes_by_purpose[purpose] = (
            self.queue_bytes_by_purpose.get(purpose, 0) + nbytes
        )
        if self.observer is not None:
            self.observer.metrics.counter(f"queue.bytes.{purpose}").inc(nbytes)

    @property
    def erm_seconds(self) -> float:
        return sum(r.erm_seconds for r in self.recoveries)

    @property
    def flq_seconds(self) -> float:
        return sum(r.flq_seconds for r in self.recoveries)

    @property
    def seq_seconds(self) -> float:
        return sum(r.seq_seconds for r in self.recoveries)

    @property
    def lost_iterations(self) -> int:
        """Speculative iterations thrown away across all node failures."""
        return sum(f.lost_iterations for f in self.failures)

    @property
    def failure_recovery_seconds(self) -> float:
        """Total detection-to-resume latency across all node failures."""
        return sum(f.recovery_seconds for f in self.failures)

    def bandwidth_bps(self) -> float:
        """Application bandwidth: bytes through DSMTX over run time
        (the Figure 5(a) metric)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.queue_bytes / self.elapsed_seconds
