"""End-to-end integrity primitives (checksums and digests).

Commodity clusters are built from cheap NICs and non-ECC memory whose
signature failure mode is *silent* corruption: a flipped bit in a frame,
a checkpoint image, or a committed page arrives without any error
signal.  The fault-tolerant runtime already knows how to survive *loss*
(sequence numbers, acks, retransmits) — so the integrity layer's whole
job is to convert silent corruption into detected loss:

* :func:`payload_checksum` — a CRC32 over a canonical structural
  encoding of an envelope.  Senders stamp it onto every
  :class:`~repro.core.messages.Frame` (``SystemConfig.integrity``);
  receivers verify and *drop* mismatching frames, letting the
  retransmit machinery re-deliver the intact original.
* :func:`page_digest` / :func:`space_digest` — order-independent
  digests of the *present* words of a page / a whole address space.
  Epoch checkpoints and standby folds carry them so corrupted durable
  state is detected before it is ever served; the commit unit's
  page-digest table and the scrub process compare committed memory
  against them periodically.

The encoding is structural (type-tagged bytes, not ``repr``) so the
same logical payload digests identically across processes and runs —
a requirement for the pinned golden digests.  Everything here is pure
computation over plain values: zero-cost when ``integrity`` is off
because nothing calls it.
"""

from __future__ import annotations

import zlib
from typing import Any

__all__ = [
    "CHECKSUM_BYTES",
    "payload_checksum",
    "page_digest",
    "space_digest",
]

#: Simulated wire cost of one frame checksum (CRC32: 4 bytes).
CHECKSUM_BYTES = 4


def _encode(obj: Any, parts: list) -> None:
    """Append a canonical, type-tagged byte encoding of ``obj``.

    Handles the closed set of types that actually travel in envelopes:
    ints, floats, strings, bytes, None, bools, tuples/lists (including
    NamedTuple envelopes), dicts with sortable keys, and page snapshots
    (any object exposing ``number`` and ``items()``).  Unknown leaves
    fall back to their class name — never ``repr`` (ids are not stable
    across processes).
    """
    if obj is None:
        parts.append(b"n")
    elif obj is True:
        parts.append(b"T")
    elif obj is False:
        parts.append(b"F")
    elif isinstance(obj, int):
        parts.append(b"i%d;" % obj)
    elif isinstance(obj, float):
        parts.append(b"f" + repr(obj).encode("ascii") + b";")
    elif isinstance(obj, str):
        encoded = obj.encode("utf-8")
        parts.append(b"s%d:" % len(encoded))
        parts.append(encoded)
    elif isinstance(obj, (bytes, bytearray)):
        parts.append(b"b%d:" % len(obj))
        parts.append(bytes(obj))
    elif isinstance(obj, (tuple, list)):
        parts.append(b"(")
        for item in obj:
            _encode(item, parts)
        parts.append(b")")
    elif isinstance(obj, dict):
        parts.append(b"{")
        for key in sorted(obj):
            _encode(key, parts)
            _encode(obj[key], parts)
        parts.append(b"}")
    elif hasattr(obj, "number") and hasattr(obj, "items"):
        # A page snapshot travelling in a COA response: digest its
        # identity and present words (versions are local bookkeeping).
        parts.append(b"P%d[" % obj.number)
        for index, value in obj.items():
            _encode(index, parts)
            _encode(value, parts)
        parts.append(b"]")
    else:
        parts.append(b"?" + type(obj).__name__.encode("ascii") + b";")


def payload_checksum(payload: Any) -> int:
    """CRC32 of the canonical encoding of ``payload``."""
    parts: list = []
    _encode(payload, parts)
    return zlib.crc32(b"".join(parts))


def page_digest(page: Any) -> int:
    """CRC32 over one page's present ``(index, value)`` words."""
    parts: list = [b"P%d[" % page.number]
    for index, value in page.items():
        _encode(index, parts)
        _encode(value, parts)
    parts.append(b"]")
    return zlib.crc32(b"".join(parts))


def space_digest(space: Any) -> int:
    """CRC32 over every present word of ``space``, page-number order.

    Depends only on logical content — page versions, dirty masks, and
    installation history are excluded — so a standby image folded from
    the replication stream digests identically to the primary master it
    mirrors.
    """
    parts: list = []
    for page in space.iter_pages():
        items = list(page.items())
        if not items:
            continue
        parts.append(b"P%d[" % page.number)
        for index, value in items:
            _encode(index, parts)
            _encode(value, parts)
        parts.append(b"]")
    return zlib.crc32(b"".join(parts))
