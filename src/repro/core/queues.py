"""Runtime message queues between DSMTX units.

These are the communication channels of Figure 3: they carry uncommitted
value forwarding between workers, access logs to the try-commit and
commit units, and application dataflow (``mtx_produce``/``mtx_consume``).

Like the stand-alone :class:`repro.cluster.channel.Channel`, a
:class:`RuntimeQueue` batches produced entries and issues one MPI send
per batch (section 4.2).  It differs in three runtime-specific ways:

* batches are delivered into the *consumer unit's inbox* (a unit
  multiplexes many queues plus control traffic over one mailbox);
* a bounded number of unacknowledged batches may be in flight
  (*credits*), bounding worker run-ahead — the decoupling buffer whose
  size trades throughput against wasted work on misspeculation
  (section 5.4);
* every batch is tagged with the recovery epoch so stale in-flight data
  is discarded after a rollback.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Iterable, Optional

from repro.core.messages import BatchEnvelope, entry_bytes
from repro.obs.tracer import CAT_QUEUE, PID_RUNTIME
from repro.sim import Event, Resource

__all__ = ["RuntimeQueue"]


class RuntimeQueue:
    """A unidirectional batched queue from one unit to another."""

    def __init__(
        self,
        system: "DSMTXSystem",  # noqa: F821 - circular type reference
        name: str,
        purpose: str,
        src_tid: int,
        dst_tid: int,
        flush_each_subtx: bool,
        durable: bool = False,
    ) -> None:
        self.system = system
        self.name = name
        self.purpose = purpose
        self.src_tid = src_tid
        self.dst_tid = dst_tid
        #: Durable queues carry *committed* state (the commit-standby
        #: replication stream): their batches survive epoch fences and
        #: FLQ flushes — rolling back speculation must never lose data
        #: that has already committed.
        self.durable = durable
        #: A retired queue drops everything still in flight (set when
        #: the replication stream's producer died at promotion).
        self.retired = False
        #: Whether the producer must flush at every subTX boundary
        #: (worker-to-worker forwarding and dataflow: yes; logs to the
        #: validation/commit units: no, they may lag by whole batches,
        #: which is exactly the delayed-detection effect of section 5.4).
        self.flush_each_subtx = flush_each_subtx

        config = system.config
        self._batch_bytes = config.effective_batch_bytes
        self._credits = Resource(system.env, capacity=config.max_inflight_batches)
        self._outstanding_credits: dict[int, Event] = {}
        self._next_credit_id = 0
        self._buffer: list[tuple] = []
        self._buffer_bytes = 0
        # Per-entry costs resolved once: produce() runs for every datum
        # a worker emits, so repeated config/core lookups add up.
        self._direct = config.channel_mode == "direct"
        self._src_core = system.core_of(src_tid)
        self._queue_op_instructions = system.cluster.queue_op_instructions
        self._queue_op_cycles = (
            self._queue_op_instructions / system.cluster.instructions_per_cycle
        )
        self._charge_src = self._src_core.charge_cycles
        self._stats = system.stats
        # Send-side constants for _push_batch: the destination core,
        # inbox and tag never change for the life of the queue.
        self._src_index = self._src_core.index
        self._dst_index = system.core_of(dst_tid).index
        self._transport = system.transport
        self._dst_inbox = (
            system.inbox_of(dst_tid)
            if self._transport is None
            else self._transport.ingest_box(dst_tid)
        )
        self._tag = ("inbox", dst_tid)
        self._mpi_variant = config.mpi_variant

        #: Consumer-side entries routed here by the endpoint (FIFO).
        self.delivered: deque[tuple] = deque()

        self.bytes_produced = 0
        self.entries_produced = 0
        self.batches_sent = 0

    # -- producer side -------------------------------------------------------------

    def produce(self, entry: tuple, nbytes: Optional[int] = None) -> Iterable[Event]:
        """Append one entry; pushes a batch when the buffer fills.

        Returns an iterable of events — drive with ``yield from``.  The
        buffered fast path (the overwhelmingly common case) returns an
        empty tuple, so no generator is allocated per entry.

        In ``direct`` channel mode (the Figure 5(b) unoptimized
        baseline) every entry pays one full MPI send instead of a
        ring-buffer write.
        """
        if self.retired:
            # The consumer is gone (dead standby): producing would burn
            # credits nobody returns and block the producer forever.
            return ()
        size = entry_bytes(entry) if nbytes is None else nbytes
        self._buffer.append(entry)
        buffered = self._buffer_bytes + size
        self._buffer_bytes = buffered
        self.bytes_produced += size
        self.entries_produced += 1
        # RunStats.record_queue_bytes inlined: one per-entry call saved.
        stats = self._stats
        stats.queue_bytes += size
        purpose = self.purpose
        by_purpose = stats.queue_bytes_by_purpose
        by_purpose[purpose] = by_purpose.get(purpose, 0) + size
        if stats.observer is not None:
            stats.observer.metrics.counter(f"queue.bytes.{purpose}").inc(size)
        if self._direct:
            return self._push_batch()
        self._charge_src(self._queue_op_cycles)
        if buffered >= self._batch_bytes:
            return self._push_batch()
        return ()

    def flush_pending(self) -> Iterable[Event]:
        """Push a partial batch (subTX boundary / termination)."""
        if self._buffer and not self.retired:
            return self._push_batch()
        return ()

    def _push_batch(self) -> Generator[Event, Any, None]:
        # The span deliberately covers the credit wait: time blocked on
        # flow control is queue time, and it is exactly the decoupling
        # stall the section 5.4 trade-off is about.
        obs = self.system.obs
        start = self.system.env.now if obs is not None else 0.0
        credit = self._credits.request()
        yield credit
        if self.retired:
            # Retired while blocked on flow control (the declaration of
            # the consumer's death released the credits): wake and drop.
            self._credits.release(credit)
            return
        credit_id = self._next_credit_id
        self._next_credit_id += 1
        self._outstanding_credits[credit_id] = credit
        entries, self._buffer = tuple(self._buffer), []
        nbytes, self._buffer_bytes = self._buffer_bytes, 0
        self.batches_sent += 1
        self.system.stats.queue_batches += 1
        envelope = BatchEnvelope(
            queue_name=self.name,
            epoch=self.system.state.epoch,
            credit_id=credit_id,
            entries=entries,
            nbytes=nbytes,
        )
        payload = envelope
        if self._transport is not None:
            nbytes += self._transport.extra_bytes
            payload = self._transport.stamp(
                self.src_tid, self.dst_tid, envelope, nbytes
            )
        yield from self.system.mpi.send(
            self._src_index,
            self._dst_index,
            payload,
            nbytes,
            self._tag,
            self._mpi_variant,
            self._dst_inbox,
        )
        if obs is not None:
            obs.tracer.complete(
                CAT_QUEUE, f"push:{self.name}", PID_RUNTIME, self.src_tid, start,
                purpose=self.purpose, entries=len(entries), bytes=nbytes,
            )
            obs.metrics.counter(f"queue.batches.{self.purpose}").inc()
            obs.metrics.histogram("queue.batch_bytes").observe(nbytes)

    def src_tid_core_index(self) -> int:
        return self._src_core.index

    def dst_tid_core_index(self) -> int:
        return self.system.core_of(self.dst_tid).index

    # -- consumer side ---------------------------------------------------------------

    def accept_batch(self, envelope: BatchEnvelope) -> bool:
        """Endpoint router callback: release the credit; keep the
        entries unless they are from a stale epoch.

        Returns True if the batch was accepted (current epoch).
        """
        credit = self._outstanding_credits.pop(envelope.credit_id, None)
        if credit is not None:
            self._credits.release(credit)
        if self.retired:
            return False
        if not self.durable and envelope.epoch != self.system.state.epoch:
            return False
        self.delivered.extend(envelope.entries)
        return True

    def pop_local(self) -> tuple[bool, Any]:
        """Take the next delivered entry without blocking."""
        if self.delivered:
            return True, self.delivered.popleft()
        return False, None

    @property
    def has_local(self) -> bool:
        return bool(self.delivered)

    # -- recovery ----------------------------------------------------------------------

    def release_all_credits(self) -> None:
        """Release every outstanding credit so a producer blocked on
        flow control can make progress into the recovery protocol."""
        for credit in self._outstanding_credits.values():
            self._credits.release(credit)
        self._outstanding_credits.clear()

    def discard(self) -> int:
        """Drop producer and consumer buffers; release all credits.

        Returns the number of entries discarded locally (FLQ cost).
        Durable queues keep their data — they carry committed state
        that a speculative rollback must not touch — and only release
        credits.
        """
        if self.durable and not self.retired:
            self.release_all_credits()
            return 0
        discarded = len(self._buffer) + len(self.delivered)
        self._buffer.clear()
        self._buffer_bytes = 0
        self.delivered.clear()
        self.release_all_credits()
        return discarded

    # -- failover ----------------------------------------------------------------------

    def redirect(self, new_dst_tid: int) -> None:
        """Re-point this queue at a different consumer unit (commit
        standby promotion): future batches go to the new unit's inbox
        on a fresh transport link; frames still in flight to the dead
        unit are abandoned by ``ReliableTransport.forget_units``."""
        system = self.system
        self.dst_tid = new_dst_tid
        self._dst_index = system.core_of(new_dst_tid).index
        transport = self._transport
        self._dst_inbox = (
            system.inbox_of(new_dst_tid)
            if transport is None
            else transport.ingest_box(new_dst_tid)
        )
        self._tag = ("inbox", new_dst_tid)

    def retire(self) -> None:
        """Close the queue for good: drop buffers, refuse all future
        batches (promotion retires the replication stream — its
        producer is dead and its data has been replayed)."""
        self.retired = True
        self._buffer.clear()
        self._buffer_bytes = 0
        self.delivered.clear()
        self.release_all_credits()
