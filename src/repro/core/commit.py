"""The commit unit.

The commit unit owns the program's non-speculative memory state.  It:

* serves Copy-On-Access page requests from workers and the try-commit
  unit (section 4.2);
* performs **group transaction commit**: once the try-commit unit has
  validated an MTX, all of its subTXs' stores are applied to master
  memory in subTX (program) order, so the last update to a location
  wins (section 3.1);
* orchestrates misspeculation recovery (section 4.3), including the
  SEQ phase: re-executing the uncommitted iterations up to and
  including the aborted one in single-threaded fashion.

The unit is event-driven over its inbox, so it can interleave COA
service with commit traffic — workers are never blocked on the commit
unit being "busy committing", only queued behind it.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.context import MasterContext
from repro.core.messages import (
    CTL_COA_REQUEST,
    CTL_COA_RESPONSE,
    CTL_DRAIN,
    CTL_MISSPEC,
    CTL_NODE_FAILED,
    CTL_PROMOTE,
    CTL_VALIDATED,
    CTL_WORKER_DONE,
    END_SUBTX,
    MARKER_BYTES,
    REPL_CHECKPOINT,
    REPL_FRONTIER,
    VALIDATED,
    WRITE,
    WRITE_BLOCK,
)
from repro.core.stats import CheckpointRecord, FailureRecord, RecoveryRecord
from repro.errors import NodeCrashed, ProcessInterrupt, RecoveryError
from repro.memory import AddressSpace, page_number
from repro.obs.tracer import (
    CAT_COMMIT,
    CAT_FT_CHECKPOINT,
    CAT_PAGE_FAULT,
    CAT_RECOVERY_DRAIN,
    CAT_RECOVERY_ERM,
    CAT_RECOVERY_FLQ,
    CAT_RECOVERY_SEQ,
    PID_RUNTIME,
)
from repro.sim import Event

__all__ = ["CommitUnit"]

#: Instructions to service one COA request (page lookup + copy).
COA_SERVICE_INSTRUCTIONS = 300


class CommitUnit:
    """Commit unit: master memory, group commit, recovery orchestration."""

    def __init__(self, system: "DSMTXSystem", tid: int) -> None:  # noqa: F821
        self.system = system
        self.tid = tid
        self.core = system.core_of(tid)
        self.endpoint = system.endpoint_of_unit(tid)
        #: The program's committed memory.
        self.master = AddressSpace(f"commit{tid}", faulting=False)
        #: Next iteration to commit (everything below is committed).
        self.next_commit = 0
        #: Epoch checkpointing (fault-tolerant mode only).
        self._ft = system.config.fault_tolerance
        self._last_checkpoint_iteration = 0
        self._words_since_checkpoint = 0
        #: Replication stream to the hot standby (commit replication);
        #: ``None`` without a standby — and on a *promoted* unit, which
        #: runs without a second standby (tid != commit_tid at its
        #: construction, which happens before the layout swap).
        self._repl = (
            system.repl_queue()
            if self._ft
            and system.standby_tid is not None
            and tid == system.commit_tid
            else None
        )
        #: Integrity mode: authoritative page digests of master memory,
        #: updated at apply time (committed writes and SEQ re-execution
        #: go through commit bookkeeping; a silent flip does not — that
        #: asymmetry is what the scrubber audits).  ``None`` when off.
        self._integrity = self._ft and system.config.integrity
        self._page_digests: dict | None = {} if self._integrity else None
        #: Promotion provenance, set on a promoted unit:
        #: (standby_tid, promotion_seconds, replayed_words, recommitted).
        self._promotion = None
        #: Iterations the dead primary had committed past the replicated
        #: frontier (set at promotion; re-executed by the survivors).
        self._recommitted = 0
        self._reset_buffers()

    def _reset_buffers(self) -> None:
        #: Per-iteration, per-stage committed-to-be write lists.
        self.writes_by_iteration: dict[int, dict[int, list]] = {}
        #: Stages whose END marker arrived, per iteration.
        self.ends_by_iteration: dict[int, set[int]] = {}
        #: Iterations validated by the try-commit unit.
        self.validated: set[int] = set()
        #: In-progress entry groups per log queue (between END markers).
        self._open_groups: dict[str, list] = {}

    # -- main process --------------------------------------------------------------------------

    def run(self) -> Generator[Event, Any, None]:
        """Main loop, absorbing a crash of our own node.

        Without commit replication the chaos engine refuses to crash the
        commit node (it raises :class:`ClusterFailedError` instead), so
        the interrupt below can only reach a *replicated* primary — the
        standby takes over, and this process simply stops.
        """
        try:
            yield from self._run()
        except ProcessInterrupt as interrupt:
            if isinstance(interrupt.cause, NodeCrashed):
                return
            raise

    def _run(self) -> Generator[Event, Any, None]:
        system = self.system
        if self._integrity:
            # Seed the digest table from the current master: the
            # workload prologue's initial state for a fresh unit, the
            # replayed checkpoint image for a promoted one.
            from repro.core.integrity import page_digest

            self._page_digests = {
                page.number: page_digest(page)
                for page in self.master.iter_pages()
            }
        while self.next_commit < system.total_iterations:
            state = system.state
            if state.failover_pending:
                # A node failure supersedes everything, including an
                # in-progress drain: the failover rolls speculative
                # state back to the commit frontier anyway, and a
                # surviving misspeculating worker re-reports afterwards.
                yield from self._orchestrate_failover(state.failover_pending.pop(0))
                continue
            if state.draining and self.next_commit >= state.pause_target:
                # Drained: every MTX before the misspeculation has
                # committed; now roll back and re-execute just the
                # aborted iteration (section 4.3).
                yield from self._orchestrate_recovery(state.pause_target)
                continue
            kind, item = yield from self.endpoint.next_message()
            if kind == "ctl":
                yield from self._dispatch_ctl(item)
            else:  # "batch": drain the queue's newly delivered entries
                self._drain_queue(item)
                yield from self._advance_commits()
        system.state.terminate()
        system.flush_all_inboxes()

    # -- message handling -------------------------------------------------------------------------

    def _dispatch_ctl(self, envelope) -> Generator[Event, Any, None]:
        kind = envelope.kind
        if kind == CTL_COA_REQUEST:
            yield from self._serve_coa(envelope.payload)
        elif kind == CTL_VALIDATED:
            self.validated.add(envelope.payload)
            yield from self._advance_commits()
        elif kind == CTL_MISSPEC:
            self._begin_or_extend_draining(envelope.payload)
            if envelope.sender_tid != self.system.trycommit_tid:
                # A worker detected this misspeculation, so its subTX
                # log for that iteration will never be sent — but the
                # try-commit unit may already be blocked consuming it,
                # with validation notices for earlier iterations still
                # batched locally.  The drain needs those notices to
                # finish; ping the unit so it re-checks the pause
                # target and flushes (no ping when the try-commit unit
                # reported the misspeculation itself: it has already
                # flushed and aborted).
                yield from self.endpoint.send_ctl(
                    self.system.trycommit_tid, CTL_DRAIN, envelope.payload
                )
        elif kind == CTL_WORKER_DONE:
            pass
        elif kind == CTL_NODE_FAILED or kind == CTL_PROMOTE:
            # Wake-up pings from the failure detector / standby watcher;
            # the authoritative signals (state.failover_pending,
            # state.promote_pending) are handled at the run-loop top.  A
            # promoted unit may find a leftover CTL_PROMOTE ping in the
            # endpoint it inherited from its standby life.
            pass
        else:  # pragma: no cover - defensive
            raise RecoveryError(f"commit unit got unexpected control {kind!r}")

    def _serve_coa(self, payload) -> Generator[Event, Any, None]:
        """Answer a Copy-On-Access request with committed data: a whole
        page copy (page granularity — the prefetching design the paper
        adopts) or a single word (the ablation's word granularity)."""
        page_no, requester_tid, word_index = payload
        obs = self.system.obs
        start = self.system.env.now if obs is not None else 0.0
        self.core.charge_instructions(COA_SERVICE_INSTRUCTIONS)
        if word_index is None:
            page = self.master.get_page(page_no).snapshot()
            self.system.stats.coa_pages_served += 1
            self.system.stats.record_queue_bytes("coa", self.system.cluster.page_bytes)
            yield from self.endpoint.send_ctl(
                requester_tid,
                CTL_COA_RESPONSE,
                (page_no, None, page),
                nbytes=self.system.cluster.page_bytes,
            )
        else:
            value = self.master.get_page(page_no).read(word_index)
            self.system.stats.coa_words_served += 1
            self.system.stats.record_queue_bytes("coa", 16)
            yield from self.endpoint.send_ctl(
                requester_tid,
                CTL_COA_RESPONSE,
                (page_no, word_index, value),
                nbytes=16,
            )
        if obs is not None:
            obs.tracer.complete(
                CAT_PAGE_FAULT, "coa.serve", PID_RUNTIME, self.tid, start,
                page=page_no, requester=requester_tid,
            )
            obs.metrics.counter("coa.serves").inc()

    def _drain_queue(self, queue) -> None:
        """Group a clog queue's entries into per-iteration write sets.

        Groups hold the write-log entries themselves — per-word ``W``
        records and run-length ``WB`` records — which
        :meth:`AddressSpace.apply_entries` applies wholesale at commit.
        """
        group = self._open_groups.setdefault(queue.name, [])
        delivered = queue.delivered
        while delivered:
            entry = delivered.popleft()
            kind = entry[0]
            if kind == WRITE or kind == WRITE_BLOCK:
                group.append(entry)
            elif kind == VALIDATED:
                self.validated.add(entry[1])
            elif kind == END_SUBTX:
                iteration, stage = entry[1], entry[2]
                if iteration >= self.next_commit:
                    self.writes_by_iteration.setdefault(iteration, {})[stage] = group
                    self.ends_by_iteration.setdefault(iteration, set()).add(stage)
                group = []
        self._open_groups[queue.name] = group

    def _mtx_complete(self, iteration: int) -> bool:
        ends = self.ends_by_iteration.get(iteration, ())
        return len(ends) == self.system.num_stages

    def _advance_commits(self) -> Generator[Event, Any, None]:
        """Group-commit every in-order MTX that is validated and whose
        subTX logs have fully arrived."""
        system = self.system
        obs = system.obs
        start = system.env.now if obs is not None else 0.0
        repl = self._repl
        committed, committed_words = 0, 0
        while (
            self.next_commit < system.total_iterations
            and self.next_commit in self.validated
            and self._mtx_complete(self.next_commit)
        ):
            iteration = self.next_commit
            per_stage = self.writes_by_iteration.pop(iteration)
            self.ends_by_iteration.pop(iteration, None)
            self.validated.discard(iteration)
            words = 0
            for stage in sorted(per_stage):
                writes = per_stage[stage]
                if system.config.coa_replicas:
                    self._check_read_only(writes)
                words += self.master.apply_entries(writes)
                if self._integrity:
                    # Re-digest *before* the replication stream yields:
                    # the scrubber can run at any yield point, and a
                    # stale table entry would read this legitimate
                    # commit as corruption.
                    touched: set = set()
                    for entry in writes:
                        if entry[0] == WRITE:
                            touched.add(page_number(entry[1]))
                        else:
                            first = page_number(entry[1])
                            last = page_number(entry[1] + (len(entry[2]) << 3) - 8)
                            touched.update(range(first, last + 1))
                    self._refresh_digests(touched)
                if repl is not None:
                    # Stream in the exact apply order so the standby's
                    # replay reproduces master memory word for word.
                    # Per-word entries are re-framed as bare (W, a, v)
                    # triples (a 4th nbytes element prices the *log*
                    # wire, not the replication stream); run-length
                    # entries ship whole.
                    for entry in writes:
                        if entry[0] == WRITE:
                            yield from repl.produce((WRITE, entry[1], entry[2]))
                        else:
                            yield from repl.produce(entry)
            self.core.charge_instructions(words * system.config.commit_instructions)
            system.stats.words_committed += words
            system.stats.committed_mtxs += 1
            committed += 1
            committed_words += words
            self.next_commit += 1
            if repl is not None:
                yield from repl.produce(
                    (REPL_FRONTIER, self.next_commit), nbytes=MARKER_BYTES
                )
        if committed and self._ft:
            if self._maybe_checkpoint(committed_words) and repl is not None:
                if self._integrity:
                    # End-to-end checkpoint digest: the standby folds
                    # its replay log at this marker and verifies the
                    # result against the primary's master digest.
                    from repro.core.integrity import (
                        CHECKSUM_BYTES,
                        space_digest,
                    )

                    yield from repl.produce(
                        (
                            REPL_CHECKPOINT,
                            self.next_commit,
                            space_digest(self.master),
                        ),
                        nbytes=MARKER_BYTES + CHECKSUM_BYTES,
                    )
                else:
                    yield from repl.produce(
                        (REPL_CHECKPOINT, self.next_commit), nbytes=MARKER_BYTES
                    )
            if repl is not None:
                # Bound replication lag to one group-commit round: the
                # standby's frontier is at most a round behind.
                yield from repl.flush_pending()
        yield from self.core.drain()
        if obs is not None and committed:
            obs.tracer.complete(
                CAT_COMMIT, "group_commit", PID_RUNTIME, self.tid, start,
                mtxs=committed, words=committed_words,
            )
            obs.tracer.counter_sample(
                "committed_mtxs", PID_RUNTIME, self.tid, mtxs=self.next_commit
            )
            obs.metrics.counter("commit.group_commits").inc()
            obs.metrics.histogram(
                "commit.words_per_round", buckets=(1, 4, 16, 64, 256, 1024, 4096)
            ).observe(committed_words)

    def _maybe_checkpoint(self, committed_words: int) -> bool:
        """Epoch checkpointing (fault-tolerant mode): every
        ``checkpoint_interval_mtxs`` commits, persist the words written
        since the previous checkpoint plus the commit frontier.

        Master memory is already a consistent sequential prefix by
        construction (only in-order validated MTXs touch it), so the
        checkpoint is an incremental flush, not a stop-the-world
        snapshot — its cost scales with the delta, charged to the
        commit core like any other commit work.

        Returns True when a checkpoint was taken (the caller then
        mirrors it to the standby with a ``REPL_CHECKPOINT`` marker).
        """
        config = self.system.config
        self._words_since_checkpoint += committed_words
        if (
            self.next_commit - self._last_checkpoint_iteration
            < config.checkpoint_interval_mtxs
        ):
            return False
        words = self._words_since_checkpoint
        self.core.charge_instructions(
            config.checkpoint_base_instructions
            + words * config.checkpoint_word_instructions
        )
        self.system.stats.checkpoints.append(
            CheckpointRecord(
                iteration=self.next_commit, words=words, at=self.system.env.now
            )
        )
        self._last_checkpoint_iteration = self.next_commit
        self._words_since_checkpoint = 0
        obs = self.system.obs
        if obs is not None:
            obs.tracer.instant(
                CAT_FT_CHECKPOINT, f"checkpoint:{self.next_commit}",
                PID_RUNTIME, self.tid, iteration=self.next_commit, words=words,
            )
            obs.metrics.counter("ft.checkpoints").inc()
        return True

    # -- integrity scrubbing (integrity mode) ------------------------------------------

    def _refresh_digests(self, page_numbers) -> None:
        """Re-digest the given master pages after commit-side writes."""
        from repro.core.integrity import page_digest

        table = self._page_digests
        master = self.master
        for number in page_numbers:
            table[number] = page_digest(master.get_page(number))

    def scrub_once(self) -> int:
        """One scrub sweep: audit every committed page against the
        authoritative digest table.

        Every mutation of master memory goes through commit bookkeeping
        and refreshes its page digest; a silent flip does not — so a
        page whose content no longer matches its recorded digest has
        been corrupted in place.  Repair comes from the replicated
        copy when it is provably current: the standby's folded image
        plus its replay log reconstruct the page at the replicated
        frontier, and when that reconstruction matches the
        authoritative digest (no commit has touched the page since),
        it is installed over the corrupted page — a management-path
        page fetch, priced on the commit core like a COA install.
        Otherwise the corruption is counted unrepairable: the run
        finishes, but the resilience report flags it instead of
        presenting the poisoned words as committed results.

        Returns the number of corrupted pages found this sweep.
        """
        from repro.core.integrity import page_digest

        system = self.system
        stats = system.stats
        table = self._page_digests
        stats.ft_scrub_rounds += 1
        obs = system.obs
        found = 0
        audited = 0
        audited_words = 0
        for page in list(self.master.iter_pages()):
            audited += 1
            audited_words += page.word_count
            expected = table.get(page.number)
            if expected is None:
                table[page.number] = page_digest(page)
                continue
            if page_digest(page) == expected:
                continue
            found += 1
            stats.ft_corruptions_detected += 1
            repaired = self._repair_page(page, expected)
            if repaired:
                stats.ft_corruptions_repaired += 1
            else:
                stats.ft_corruptions_unrepairable += 1
            if obs is not None:
                from repro.obs.tracer import CAT_INTEGRITY, PID_RUNTIME

                obs.tracer.instant(
                    CAT_INTEGRITY, "scrub_corruption", PID_RUNTIME, self.tid,
                    page=page.number, repaired=repaired,
                )
                obs.metrics.counter(
                    "integrity.scrub_repaired" if repaired
                    else "integrity.scrub_unrepairable"
                ).inc()
        stats.ft_scrub_pages += audited
        self.core.charge_instructions(
            audited_words * system.config.checkpoint_word_instructions
        )
        return found

    def _repair_page(self, page, expected: int) -> bool:
        """Restore a corrupted master page from the standby's copy.

        Only a provably *current* copy is used: image + replay log give
        the page at the replicated frontier, verified against the
        authoritative digest before installation.  A stale or absent
        copy (no standby, standby dead or promoted, or commits landed
        on the page since the frontier) refuses the repair — installing
        old data would be a second corruption.
        """
        from repro.core.integrity import page_digest
        from repro.memory import word_index

        system = self.system
        standby = getattr(system, "standby", None)
        if (
            standby is None
            or standby.promoted
            or system.standby_tid in system.dead_tids
        ):
            return False
        from repro.memory.page import Page

        base = standby.image.pages.get(page.number)
        candidate = base.snapshot() if base is not None else Page(page.number)
        for address, value in standby.replay_log:
            if page_number(address) == page.number:
                candidate.install_word(word_index(address), value)
        if page_digest(candidate) != expected:
            return False
        page.words[:] = candidate.words
        page.present_mask = candidate.present_mask
        # Management-path fetch: page bytes on the wire, an install on
        # the commit core.
        system.stats.record_queue_bytes("scrub", system.cluster.page_bytes)
        self.core.charge_instructions(system.config.coa_install_instructions)
        return True

    def _check_read_only(self, writes) -> None:
        """COA replicas rely on read-only pages never being committed
        to; a violation is a workload bug, not a recoverable event."""
        from repro.memory import page_number

        uva = self.system.uva
        for entry in writes:
            address = entry[1]
            if entry[0] == WRITE_BLOCK:
                first = page_number(address)
                last = page_number(address + (len(entry[2]) << 3) - 8)
                bad = next(
                    (p for p in range(first, last + 1) if uva.page_is_read_only(p)),
                    None,
                )
            else:
                bad = page_number(address) if uva.page_is_read_only(page_number(address)) else None
            if bad is not None:
                raise RecoveryError(
                    f"commit to read-only page {bad} "
                    f"(address {address:#x}); read-only declarations must "
                    "cover only immutable input data"
                )

    # -- recovery orchestration -----------------------------------------------------------------------

    def _begin_or_extend_draining(self, misspec_iteration: int) -> None:
        """A misspeculation notice arrived: start (or tighten) the drain.

        Committed-side progress continues until every MTX before the
        misspeculated one has committed; releasing the flow-control
        credits lets producers blocked on full queues reach their next
        boundary check instead of stalling the drain.
        """
        state = self.system.state
        if state.draining:
            state.lower_pause_target(misspec_iteration)
            return
        state.begin_draining(misspec_iteration)
        self._drain_started_at = self.system.env.now
        obs = self.system.obs
        if obs is not None:
            obs.tracer.instant(
                CAT_RECOVERY_DRAIN, "misspec.detected", PID_RUNTIME, self.tid,
                iteration=misspec_iteration,
            )
            obs.metrics.counter("recovery.misspec_notices").inc()
        for queue in self.system.all_queues():
            queue.release_all_credits()

    def _orchestrate_recovery(self, misspec_iteration: int) -> Generator[Event, Any, None]:
        """The orchestrator side of the section 4.3 protocol (runs once
        the drain has committed everything before the aborted MTX)."""
        system = self.system
        env = system.env
        detected_at = getattr(self, "_drain_started_at", env.now)
        drain_seconds = env.now - detected_at
        recovery_started = env.now
        system.state.begin_recovery(misspec_iteration)
        system.stats.misspeculations += 1
        squashed = sum(
            1 for i in self.ends_by_iteration if i >= self.next_commit
        )
        # Wake everyone: release flow-control credits and flush inboxes.
        for queue in system.all_queues():
            queue.release_all_credits()
        system.flush_all_inboxes()
        self.endpoint.clear()
        # ERM barrier.
        yield from system.recovery._barrier_cost(self)
        yield system.recovery.erm_barrier.wait(self.tid)
        erm_done = env.now
        # FLQ: flush every queue; our own buffers too.
        discarded = 0
        for queue in system.all_queues():
            discarded += queue.discard()
        self._reset_buffers()
        self.core.charge_instructions(
            discarded * system.cluster.queue_op_instructions
        )
        yield from system.recovery._barrier_cost(self)
        yield system.recovery.flq_barrier.wait(self.tid)
        flq_done = env.now
        # SEQ: single-threaded re-execution of [next_commit .. misspec].
        reexecuted = 0
        context = MasterContext(
            system, self.master, self.core,
            record_writes=self._repl is not None or self._integrity,
        )
        for iteration in range(self.next_commit, misspec_iteration + 1):
            context.begin_iteration(iteration)
            yield from system.workload_sequential_body()(context)
            reexecuted += 1
        yield from self.core.drain()
        seq_done = env.now
        system.stats.committed_mtxs += reexecuted
        self.next_commit = misspec_iteration + 1
        if self._integrity:
            # SEQ wrote master directly; re-digest the touched pages.
            self._refresh_digests(
                {page_number(address) for address, _value in context.written}
            )
        if self._repl is not None:
            # SEQ wrote master memory directly; the standby needs those
            # words too, under the advanced frontier.
            for address, value in context.written:
                yield from self._repl.produce((WRITE, address, value))
            yield from self._repl.produce(
                (REPL_FRONTIER, self.next_commit), nbytes=MARKER_BYTES
            )
            yield from self._repl.flush_pending()
        # Resume: bump the epoch, set the new restart base, release all.
        system.state.resume(restart_base=self.next_commit)
        yield from system.recovery._barrier_cost(self)
        yield system.recovery.resume_barrier.wait(self.tid)
        obs = system.obs
        if obs is not None:
            tracer = obs.tracer
            tid = self.tid
            tracer.complete(
                CAT_RECOVERY_DRAIN, "drain", PID_RUNTIME, tid, detected_at,
                end_s=recovery_started, iteration=misspec_iteration,
            )
            tracer.complete(
                CAT_RECOVERY_ERM, "erm", PID_RUNTIME, tid, recovery_started,
                end_s=erm_done,
            )
            tracer.complete(
                CAT_RECOVERY_FLQ, "flq", PID_RUNTIME, tid, erm_done,
                end_s=flq_done, discarded=discarded,
            )
            tracer.complete(
                CAT_RECOVERY_SEQ, "seq", PID_RUNTIME, tid, flq_done,
                end_s=seq_done, reexecuted=reexecuted,
            )
            obs.metrics.counter("recovery.episodes").inc()
            obs.metrics.counter("recovery.squashed_iterations").inc(squashed)
            obs.metrics.counter("recovery.reexecuted_iterations").inc(reexecuted)
        system.stats.recoveries.append(
            RecoveryRecord(
                misspec_iteration=misspec_iteration,
                detected_at=detected_at,
                drain_seconds=drain_seconds,
                erm_seconds=erm_done - recovery_started,
                flq_seconds=flq_done - erm_done,
                seq_seconds=seq_done - flq_done,
                squashed_iterations=squashed,
                reexecuted_iterations=reexecuted,
            )
        )

    # -- failover orchestration (fault-tolerant mode) ----------------------------------------

    def _orchestrate_failover(self, request) -> Generator[Event, Any, None]:
        """Degraded-mode restart after a node failure.

        Reuses the section 4.3 recovery machinery — the barriers shrank
        to the survivor count when the failure detector deregistered the
        dead units — but with two differences from a misspeculation
        rollback: there is nothing to drain (in-flight work involving
        the dead node is unrecoverable, so the restart base is simply
        the commit frontier), and there is no SEQ phase (master memory
        is already a consistent sequential prefix by construction, the
        same observation behind :meth:`_maybe_checkpoint`).
        """
        system = self.system
        env = system.env
        state = system.state
        node, dead_tids, detected_at, last_heard_at = request
        # Speculative run-ahead past the commit frontier is lost work.
        lost = sum(1 for i in self.ends_by_iteration if i >= self.next_commit)
        state.begin_recovery(self.next_commit)
        # Wake every survivor: release flow-control credits and flush
        # inboxes; blocked units funnel into recovery.participate.
        for queue in system.all_queues():
            queue.release_all_credits()
        system.flush_all_inboxes()
        self.endpoint.clear()
        # ERM: quiesce the survivors.
        yield from system.recovery._barrier_cost(self)
        yield system.recovery.erm_barrier.wait(self.tid)
        erm_done = env.now
        # FLQ: drop all speculative state (ours and every queue's).
        discarded = 0
        for queue in system.all_queues():
            discarded += queue.discard()
        self._reset_buffers()
        self.core.charge_instructions(
            discarded * system.cluster.queue_op_instructions
        )
        yield from system.recovery._barrier_cost(self)
        yield system.recovery.flq_barrier.wait(self.tid)
        flq_done = env.now
        # Re-partition the iteration space onto the survivors, then
        # resume from the commit frontier.
        system.apply_node_failure(node, dead_tids)
        if self._repl is not None and system.standby_tid in system.dead_tids:
            # The failure took the *standby*: stop streaming — a second
            # commit-node loss is now unrecoverable again.
            self._repl = None
        state.resume(restart_base=self.next_commit)
        yield from system.recovery._barrier_cost(self)
        yield system.recovery.resume_barrier.wait(self.tid)
        promotion = self._promotion
        self._promotion = None
        record = FailureRecord(
            node=node,
            dead_tids=tuple(dead_tids),
            last_heard_at=last_heard_at,
            detected_at=detected_at,
            resumed_at=env.now,
            restart_base=self.next_commit,
            lost_iterations=lost,
            surviving_workers=sum(len(live) for live in system.live_by_stage),
            promoted_tid=promotion[0] if promotion else -1,
            promotion_seconds=promotion[1] if promotion else 0.0,
            replayed_words=promotion[2] if promotion else 0,
            recommitted_iterations=promotion[3] if promotion else 0,
        )
        system.stats.failures.append(record)
        obs = system.obs
        if obs is not None:
            from repro.obs.tracer import CAT_FT_FAILOVER

            obs.tracer.complete(
                CAT_FT_FAILOVER, f"failover:node{node}", PID_RUNTIME, self.tid,
                detected_at, node=node, lost_iterations=lost,
                restart_base=self.next_commit,
            )
            obs.tracer.complete(
                CAT_RECOVERY_ERM, "failover.erm", PID_RUNTIME, self.tid,
                detected_at, end_s=erm_done,
            )
            obs.tracer.complete(
                CAT_RECOVERY_FLQ, "failover.flq", PID_RUNTIME, self.tid,
                erm_done, end_s=flq_done, discarded=discarded,
            )
            obs.metrics.counter("ft.failovers").inc()
            obs.metrics.counter("ft.lost_iterations").inc(lost)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CommitUnit tid={self.tid} next_commit={self.next_commit}>"
