"""The commit unit.

The commit unit owns the program's non-speculative memory state.  It:

* serves Copy-On-Access page requests from workers and the try-commit
  unit (section 4.2);
* performs **group transaction commit**: once the try-commit unit has
  validated an MTX, all of its subTXs' stores are applied to master
  memory in subTX (program) order, so the last update to a location
  wins (section 3.1);
* orchestrates misspeculation recovery (section 4.3), including the
  SEQ phase: re-executing the uncommitted iterations up to and
  including the aborted one in single-threaded fashion.

The unit is event-driven over its inbox, so it can interleave COA
service with commit traffic — workers are never blocked on the commit
unit being "busy committing", only queued behind it.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.context import MasterContext
from repro.core.messages import (
    CTL_COA_REQUEST,
    CTL_COA_RESPONSE,
    CTL_MISSPEC,
    CTL_VALIDATED,
    CTL_WORKER_DONE,
    END_SUBTX,
    VALIDATED,
    WRITE,
)
from repro.core.stats import RecoveryRecord
from repro.errors import RecoveryError
from repro.memory import AddressSpace
from repro.obs.tracer import (
    CAT_COMMIT,
    CAT_PAGE_FAULT,
    CAT_RECOVERY_DRAIN,
    CAT_RECOVERY_ERM,
    CAT_RECOVERY_FLQ,
    CAT_RECOVERY_SEQ,
    PID_RUNTIME,
)
from repro.sim import Event

__all__ = ["CommitUnit"]

#: Instructions to service one COA request (page lookup + copy).
COA_SERVICE_INSTRUCTIONS = 300


class CommitUnit:
    """Commit unit: master memory, group commit, recovery orchestration."""

    def __init__(self, system: "DSMTXSystem", tid: int) -> None:  # noqa: F821
        self.system = system
        self.tid = tid
        self.core = system.core_of(tid)
        self.endpoint = system.endpoint_of_unit(tid)
        #: The program's committed memory.
        self.master = AddressSpace(f"commit{tid}", faulting=False)
        #: Next iteration to commit (everything below is committed).
        self.next_commit = 0
        self._reset_buffers()

    def _reset_buffers(self) -> None:
        #: Per-iteration, per-stage committed-to-be write lists.
        self.writes_by_iteration: dict[int, dict[int, list]] = {}
        #: Stages whose END marker arrived, per iteration.
        self.ends_by_iteration: dict[int, set[int]] = {}
        #: Iterations validated by the try-commit unit.
        self.validated: set[int] = set()
        #: In-progress entry groups per log queue (between END markers).
        self._open_groups: dict[str, list] = {}

    # -- main process --------------------------------------------------------------------------

    def run(self) -> Generator[Event, Any, None]:
        system = self.system
        while self.next_commit < system.total_iterations:
            state = system.state
            if state.draining and self.next_commit >= state.pause_target:
                # Drained: every MTX before the misspeculation has
                # committed; now roll back and re-execute just the
                # aborted iteration (section 4.3).
                yield from self._orchestrate_recovery(state.pause_target)
                continue
            kind, item = yield from self.endpoint.next_message()
            if kind == "ctl":
                yield from self._dispatch_ctl(item)
            else:  # "batch": drain the queue's newly delivered entries
                self._drain_queue(item)
                yield from self._advance_commits()
        system.state.terminate()
        system.flush_all_inboxes()

    # -- message handling -------------------------------------------------------------------------

    def _dispatch_ctl(self, envelope) -> Generator[Event, Any, None]:
        kind = envelope.kind
        if kind == CTL_COA_REQUEST:
            yield from self._serve_coa(envelope.payload)
        elif kind == CTL_VALIDATED:
            self.validated.add(envelope.payload)
            yield from self._advance_commits()
        elif kind == CTL_MISSPEC:
            self._begin_or_extend_draining(envelope.payload)
        elif kind == CTL_WORKER_DONE:
            pass
        else:  # pragma: no cover - defensive
            raise RecoveryError(f"commit unit got unexpected control {kind!r}")

    def _serve_coa(self, payload) -> Generator[Event, Any, None]:
        """Answer a Copy-On-Access request with committed data: a whole
        page copy (page granularity — the prefetching design the paper
        adopts) or a single word (the ablation's word granularity)."""
        page_no, requester_tid, word_index = payload
        obs = self.system.obs
        start = self.system.env.now if obs is not None else 0.0
        self.core.charge_instructions(COA_SERVICE_INSTRUCTIONS)
        if word_index is None:
            page = self.master.get_page(page_no).snapshot()
            self.system.stats.coa_pages_served += 1
            self.system.stats.record_queue_bytes("coa", self.system.cluster.page_bytes)
            yield from self.endpoint.send_ctl(
                requester_tid,
                CTL_COA_RESPONSE,
                (page_no, None, page),
                nbytes=self.system.cluster.page_bytes,
            )
        else:
            value = self.master.get_page(page_no).read(word_index)
            self.system.stats.coa_words_served += 1
            self.system.stats.record_queue_bytes("coa", 16)
            yield from self.endpoint.send_ctl(
                requester_tid,
                CTL_COA_RESPONSE,
                (page_no, word_index, value),
                nbytes=16,
            )
        if obs is not None:
            obs.tracer.complete(
                CAT_PAGE_FAULT, "coa.serve", PID_RUNTIME, self.tid, start,
                page=page_no, requester=requester_tid,
            )
            obs.metrics.counter("coa.serves").inc()

    def _drain_queue(self, queue) -> None:
        """Group a clog queue's entries into per-iteration write sets."""
        group = self._open_groups.setdefault(queue.name, [])
        delivered = queue.delivered
        while delivered:
            entry = delivered.popleft()
            kind = entry[0]
            if kind == WRITE:
                group.append((entry[1], entry[2]))
            elif kind == VALIDATED:
                self.validated.add(entry[1])
            elif kind == END_SUBTX:
                iteration, stage = entry[1], entry[2]
                if iteration >= self.next_commit:
                    self.writes_by_iteration.setdefault(iteration, {})[stage] = group
                    self.ends_by_iteration.setdefault(iteration, set()).add(stage)
                group = []
        self._open_groups[queue.name] = group

    def _mtx_complete(self, iteration: int) -> bool:
        ends = self.ends_by_iteration.get(iteration, ())
        return len(ends) == self.system.num_stages

    def _advance_commits(self) -> Generator[Event, Any, None]:
        """Group-commit every in-order MTX that is validated and whose
        subTX logs have fully arrived."""
        system = self.system
        obs = system.obs
        start = system.env.now if obs is not None else 0.0
        committed, committed_words = 0, 0
        while (
            self.next_commit < system.total_iterations
            and self.next_commit in self.validated
            and self._mtx_complete(self.next_commit)
        ):
            iteration = self.next_commit
            per_stage = self.writes_by_iteration.pop(iteration)
            self.ends_by_iteration.pop(iteration, None)
            self.validated.discard(iteration)
            words = 0
            for stage in sorted(per_stage):
                writes = per_stage[stage]
                words += len(writes)
                if system.config.coa_replicas:
                    self._check_read_only(writes)
                self.master.apply_writes(writes)
            self.core.charge_instructions(words * system.config.commit_instructions)
            system.stats.words_committed += words
            system.stats.committed_mtxs += 1
            committed += 1
            committed_words += words
            self.next_commit += 1
        yield from self.core.drain()
        if obs is not None and committed:
            obs.tracer.complete(
                CAT_COMMIT, "group_commit", PID_RUNTIME, self.tid, start,
                mtxs=committed, words=committed_words,
            )
            obs.tracer.counter_sample(
                "committed_mtxs", PID_RUNTIME, self.tid, mtxs=self.next_commit
            )
            obs.metrics.counter("commit.group_commits").inc()
            obs.metrics.histogram(
                "commit.words_per_round", buckets=(1, 4, 16, 64, 256, 1024, 4096)
            ).observe(committed_words)

    def _check_read_only(self, writes) -> None:
        """COA replicas rely on read-only pages never being committed
        to; a violation is a workload bug, not a recoverable event."""
        from repro.memory import page_number

        for address, _value in writes:
            if self.system.uva.page_is_read_only(page_number(address)):
                raise RecoveryError(
                    f"commit to read-only page {page_number(address)} "
                    f"(address {address:#x}); read-only declarations must "
                    "cover only immutable input data"
                )

    # -- recovery orchestration -----------------------------------------------------------------------

    def _begin_or_extend_draining(self, misspec_iteration: int) -> None:
        """A misspeculation notice arrived: start (or tighten) the drain.

        Committed-side progress continues until every MTX before the
        misspeculated one has committed; releasing the flow-control
        credits lets producers blocked on full queues reach their next
        boundary check instead of stalling the drain.
        """
        state = self.system.state
        if state.draining:
            state.lower_pause_target(misspec_iteration)
            return
        state.begin_draining(misspec_iteration)
        self._drain_started_at = self.system.env.now
        obs = self.system.obs
        if obs is not None:
            obs.tracer.instant(
                CAT_RECOVERY_DRAIN, "misspec.detected", PID_RUNTIME, self.tid,
                iteration=misspec_iteration,
            )
            obs.metrics.counter("recovery.misspec_notices").inc()
        for queue in self.system.all_queues():
            queue.release_all_credits()

    def _orchestrate_recovery(self, misspec_iteration: int) -> Generator[Event, Any, None]:
        """The orchestrator side of the section 4.3 protocol (runs once
        the drain has committed everything before the aborted MTX)."""
        system = self.system
        env = system.env
        detected_at = getattr(self, "_drain_started_at", env.now)
        drain_seconds = env.now - detected_at
        recovery_started = env.now
        system.state.begin_recovery(misspec_iteration)
        system.stats.misspeculations += 1
        squashed = sum(
            1 for i in self.ends_by_iteration if i >= self.next_commit
        )
        # Wake everyone: release flow-control credits and flush inboxes.
        for queue in system.all_queues():
            queue.release_all_credits()
        system.flush_all_inboxes()
        self.endpoint.clear()
        # ERM barrier.
        yield from system.recovery._barrier_cost(self)
        yield system.recovery.erm_barrier.wait()
        erm_done = env.now
        # FLQ: flush every queue; our own buffers too.
        discarded = 0
        for queue in system.all_queues():
            discarded += queue.discard()
        self._reset_buffers()
        self.core.charge_instructions(
            discarded * system.cluster.queue_op_instructions
        )
        yield from system.recovery._barrier_cost(self)
        yield system.recovery.flq_barrier.wait()
        flq_done = env.now
        # SEQ: single-threaded re-execution of [next_commit .. misspec].
        reexecuted = 0
        context = MasterContext(system, self.master, self.core)
        for iteration in range(self.next_commit, misspec_iteration + 1):
            context.begin_iteration(iteration)
            yield from system.workload_sequential_body()(context)
            reexecuted += 1
        yield from self.core.drain()
        seq_done = env.now
        system.stats.committed_mtxs += reexecuted
        self.next_commit = misspec_iteration + 1
        # Resume: bump the epoch, set the new restart base, release all.
        system.state.resume(restart_base=self.next_commit)
        yield from system.recovery._barrier_cost(self)
        yield system.recovery.resume_barrier.wait()
        obs = system.obs
        if obs is not None:
            tracer = obs.tracer
            tid = self.tid
            tracer.complete(
                CAT_RECOVERY_DRAIN, "drain", PID_RUNTIME, tid, detected_at,
                end_s=recovery_started, iteration=misspec_iteration,
            )
            tracer.complete(
                CAT_RECOVERY_ERM, "erm", PID_RUNTIME, tid, recovery_started,
                end_s=erm_done,
            )
            tracer.complete(
                CAT_RECOVERY_FLQ, "flq", PID_RUNTIME, tid, erm_done,
                end_s=flq_done, discarded=discarded,
            )
            tracer.complete(
                CAT_RECOVERY_SEQ, "seq", PID_RUNTIME, tid, flq_done,
                end_s=seq_done, reexecuted=reexecuted,
            )
            obs.metrics.counter("recovery.episodes").inc()
            obs.metrics.counter("recovery.squashed_iterations").inc(squashed)
            obs.metrics.counter("recovery.reexecuted_iterations").inc(reexecuted)
        system.stats.recoveries.append(
            RecoveryRecord(
                misspec_iteration=misspec_iteration,
                detected_at=detected_at,
                drain_seconds=drain_seconds,
                erm_seconds=erm_done - recovery_started,
                flq_seconds=flq_done - erm_done,
                seq_seconds=seq_done - flq_done,
                squashed_iterations=squashed,
                reexecuted_iterations=reexecuted,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CommitUnit tid={self.tid} next_commit={self.next_commit}>"
