"""The try-commit unit: MTX validation off the critical path.

The try-commit unit consumes the workers' access logs in sequential
program order — MTX by MTX, subTX by subTX — and performs the unified
value prediction/checking of section 3.1: a speculatively loaded value
must equal the value the program would have seen sequentially.  The unit
reconstructs that sequential view from (a) committed memory, pulled
lazily from the commit unit with the same Copy-On-Access mechanism the
workers use, and (b) an overlay of every validated-but-not-yet-committed
speculative store, applied in log order.

False (anti/output) memory dependences never reach this check — memory
versioning already broke them — so only genuinely speculated true
dependences cost validation work, and a value mismatch is exactly a
manifested speculated dependence: misspeculation.

Because validation runs in its own pipeline stage, decoupled through the
queues, its latency does not slow the workers (Figure 3(c)) — but its
*throughput* bounds the system, which is why the paper notes the
algorithm is parallelizable (section 3.2).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.messages import (
    CTL_COA_REQUEST,
    CTL_COA_RESPONSE,
    CTL_MISSPEC,
    END_SUBTX,
    READ,
    READ_BLOCK,
    VALIDATED,
    WRITE,
    WRITE_BLOCK,
)
from repro.errors import (
    ChannelFlushedError,
    NodeCrashed,
    ProcessInterrupt,
    ProtectionFault,
    RecoveryAbort,
)
from repro.memory import AddressSpace
from repro.sim import Event

__all__ = ["TryCommitUnit"]


class TryCommitUnit:
    """Validates MTXs in order; reports misspeculation to the commit unit."""

    def __init__(self, system: "DSMTXSystem", tid: int) -> None:  # noqa: F821
        self.system = system
        self.tid = tid
        self.core = system.core_of(tid)
        self.endpoint = system.endpoint_of_unit(tid)
        #: Committed-state cache, COA-populated from the commit unit.
        self.shadow = AddressSpace(f"trycommit{tid}", faulting=True)
        #: Speculative stores of validated-but-uncommitted MTXs.
        self.overlay: dict[int, Any] = {}
        #: Next iteration to validate.
        self.position = 0

    # -- main process ---------------------------------------------------------------------

    def run(self) -> Generator[Event, Any, None]:
        try:
            while True:
                if self.system.state.done:
                    return
                try:
                    yield from self._validate_epoch()
                    yield from self._park()
                    return
                except (RecoveryAbort, ChannelFlushedError):
                    yield from self.system.recovery.participate(self)
        except ProcessInterrupt as interrupt:
            if isinstance(interrupt.cause, NodeCrashed):
                # Node crash under fault injection.  The failure
                # detector will declare this node and raise
                # ClusterFailedError — validation has no replica.
                return
            raise

    #: Validation notices are flushed to the commit unit at least every
    #: this many MTXs (they also go out whenever the batch fills).
    VALIDATED_FLUSH_INTERVAL = 32

    def _validate_epoch(self) -> Generator[Event, Any, None]:
        system = self.system
        self.position = system.state.restart_base
        val_queue = system.validated_queue()
        while self.position < system.total_iterations:
            state = system.state
            if state.draining and self.position >= state.pause_target:
                # Everything before the misspeculation is validated; the
                # commit unit takes it from here.
                yield from val_queue.flush_pending()
                raise RecoveryAbort("validation paused for draining")
            iteration = self.position
            try:
                ok = yield from self._validate_mtx(iteration)
            except RecoveryAbort:
                if not state.in_recovery:
                    # Doomed mid-validation: a drain's pause target
                    # fell at or below this iteration, so its log may
                    # never complete — but the VALIDATED notices for
                    # the iterations before the target are still
                    # batched here, and the drain cannot finish
                    # without them.
                    yield from val_queue.flush_pending()
                raise
            if not ok:
                # Flush the validation notices so the drain can commit
                # everything earlier, then signal the misspeculation.
                yield from val_queue.flush_pending()
                yield from self.endpoint.send_ctl(
                    system.commit_tid, CTL_MISSPEC, iteration
                )
                raise RecoveryAbort(f"validation failed at iteration {iteration}")
            yield from val_queue.produce((VALIDATED, iteration))
            self.position += 1
            if (
                system.state.draining
                or self.position % self.VALIDATED_FLUSH_INTERVAL == 0
            ):
                yield from val_queue.flush_pending()
        yield from val_queue.flush_pending()

    def _validate_mtx(self, iteration: int) -> Generator[Event, Any, bool]:
        """Consume and check every subTX of ``iteration``, stage order."""
        system = self.system
        clean = True
        for stage in range(system.num_stages):
            worker_tid = system.worker_tid_for(stage, iteration)
            queue = system.tclog_queue(worker_tid)
            while True:
                entry = yield from self._consume_log_entry(queue, iteration)
                kind = entry[0]
                self.core.charge_instructions(system.config.check_instructions)
                if kind == END_SUBTX:
                    if entry[1] != iteration:  # pragma: no cover - invariant
                        raise RecoveryAbort(
                            f"validation stream out of sync: expected iteration "
                            f"{iteration}, got {entry}"
                        )
                    break
                if kind == WRITE:
                    self.overlay[entry[1]] = entry[2]
                elif kind == READ:
                    system.stats.reads_checked += 1
                    expected = yield from self._sequential_value(entry[1])
                    if entry[2] != expected:
                        clean = False
                elif kind == WRITE_BLOCK:
                    # One run-length entry standing for N per-word
                    # stores: same simulated check cost (the charge
                    # above covered the first word).
                    values = entry[2]
                    self.core.charge_instructions(
                        system.config.check_instructions * (len(values) - 1)
                    )
                    base = entry[1]
                    overlay = self.overlay
                    for offset, value in enumerate(values):
                        overlay[base + (offset << 3)] = value
                elif kind == READ_BLOCK:
                    values = entry[2]
                    count = len(values)
                    self.core.charge_instructions(
                        system.config.check_instructions * (count - 1)
                    )
                    system.stats.reads_checked += count
                    base = entry[1]
                    for offset, value in enumerate(values):
                        expected = yield from self._sequential_value(
                            base + (offset << 3)
                        )
                        if value != expected:
                            clean = False
        return clean

    def _consume_log_entry(self, queue, iteration: int) -> Generator[Event, Any, tuple]:
        """Blocking consume of the next access-log entry, abandoning
        the wait once ``iteration`` is doomed.

        When a worker detects a misspeculation directly, it reports to
        the commit unit without ever sending that iteration's log — so
        blocking on the log of an iteration at or past the drain's
        pause target can wait forever, deadlocking the drain (which
        needs this unit's batched VALIDATED notices to finish).  The
        commit unit's ``CTL_DRAIN`` ping wakes the blocked receive;
        the pause-target check here turns the wake-up into an abort.
        """
        endpoint = self.endpoint
        delivered = queue.delivered
        state = self.system.state
        while True:
            if state.in_recovery:
                raise RecoveryAbort("recovery started while consuming")
            if state.draining and iteration >= state.pause_target:
                raise RecoveryAbort(
                    f"iteration {iteration} is doomed by the drain "
                    f"(pause target {state.pause_target})"
                )
            if delivered:
                return delivered.popleft()
            envelope = yield from endpoint._recv_one()
            endpoint._route(envelope, arrival_order=False)

    def _sequential_value(self, address: int) -> Generator[Event, Any, Any]:
        """The value the sequential program would have loaded here."""
        if address in self.overlay:
            return self.overlay[address]
        try:
            return self.shadow.read(address)
        except ProtectionFault as fault:
            yield from self._coa_fetch(fault.page_number)
            return self.shadow.read(address)

    def _coa_fetch(self, page_no: int) -> Generator[Event, Any, None]:
        """Fetch committed state, exactly as a worker does.

        Safe without races: the commit unit has committed at most up to
        the MTX this unit is validating, so the fetched page holds the
        correct sequential prefix state.
        """
        yield from self.endpoint.send_ctl(
            self.system.commit_tid, CTL_COA_REQUEST, (page_no, self.tid, None)
        )
        while True:
            envelope = yield from self.endpoint.wait_ctl(CTL_COA_RESPONSE)
            got_page_no, _index, page = envelope.payload
            if got_page_no == page_no:
                break
        self.core.charge_instructions(self.system.config.coa_install_instructions)
        self.shadow.install_page(page)

    def _park(self) -> Generator[Event, Any, None]:
        """All iterations validated; stay alive until global termination
        (no further misspeculation is possible once everything is
        validated, but the protocol keeps the unit addressable)."""
        while not self.system.state.done:
            if self.system.state.in_recovery:
                raise RecoveryAbort("recovery while parked")
            envelope = yield from self.endpoint._recv_one()
            self.endpoint._route(envelope, arrival_order=False)

    # -- recovery -------------------------------------------------------------------------------

    def discard_speculative_state(self) -> int:
        """FLQ phase: drop the shadow cache and overlay."""
        dropped = self.shadow.reprotect_all()
        self.overlay.clear()
        self.endpoint.clear()
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TryCommitUnit tid={self.tid} position={self.position}>"
