"""System and pipeline configuration for the DSMTX runtime.

A parallelization is described by a :class:`PipelineConfig` — an ordered
list of :class:`StageSpec` entries, each sequential (``S``) or parallel
(``DOALL``), matching the paper's ``Spec-DSWP+[S,DOALL,S]`` notation.
Given a total core budget, :meth:`PipelineConfig.allocate` decides how
many worker replicas each stage receives: sequential stages get exactly
one, parallel stages split the remainder, and two cores are reserved for
the try-commit and commit units.

:class:`SystemConfig` bundles the cluster spec with runtime tunables —
queue batch size, flow-control depth, placement policy, and the channel
mode used for the Figure 5(b) communication-optimization comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.cluster.spec import DEFAULT_CLUSTER, ClusterSpec, MPIVariant
from repro.errors import ConfigurationError

__all__ = ["StageKind", "StageSpec", "PipelineConfig", "SystemConfig"]


class StageKind:
    """Stage kinds of the DSWP+ notation."""

    SEQUENTIAL = "S"
    PARALLEL = "DOALL"

    ALL = (SEQUENTIAL, PARALLEL)


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage of a (Spec-)DSWP parallelization."""

    name: str
    kind: str = StageKind.SEQUENTIAL

    def __post_init__(self) -> None:
        if self.kind not in StageKind.ALL:
            raise ConfigurationError(
                f"stage kind must be one of {StageKind.ALL}, got {self.kind!r}"
            )

    @property
    def is_parallel(self) -> bool:
        return self.kind == StageKind.PARALLEL


@dataclass(frozen=True)
class PipelineConfig:
    """An ordered pipeline of stages."""

    stages: tuple[StageSpec, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ConfigurationError("a pipeline needs at least one stage")
        object.__setattr__(self, "stages", tuple(self.stages))

    @classmethod
    def from_kinds(cls, kinds: Sequence[str]) -> "PipelineConfig":
        """Build from a kind list, e.g. ``["S", "DOALL", "S"]``."""
        stages = tuple(
            StageSpec(name=f"stage{i}", kind=kind) for i, kind in enumerate(kinds)
        )
        return cls(stages=stages)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def min_cores(self) -> int:
        """Smallest core count this pipeline runs on: one worker per
        stage plus the try-commit and commit units."""
        return self.num_stages + 2

    def allocate(self, total_cores: int, reserved_units: int = 2) -> list[int]:
        """Worker replica counts per stage for a ``total_cores`` budget.

        ``reserved_units`` cores go to the speculation-management units
        (try-commit and commit, plus any COA replicas); sequential
        stages take one worker each; parallel stages share the
        remainder as evenly as possible (earlier parallel stages get
        the odd extras).
        """
        if reserved_units < 2:
            raise ConfigurationError("at least try-commit and commit are reserved")
        if total_cores < self.num_stages + reserved_units:
            raise ConfigurationError(
                f"pipeline {self.describe()} needs at least "
                f"{self.num_stages + reserved_units} cores, got {total_cores}"
            )
        worker_budget = total_cores - reserved_units
        parallel_stages = [i for i, s in enumerate(self.stages) if s.is_parallel]
        replicas = [1] * self.num_stages
        spare = worker_budget - self.num_stages
        if parallel_stages:
            per_stage, extra = divmod(spare, len(parallel_stages))
            for rank, stage_index in enumerate(parallel_stages):
                replicas[stage_index] += per_stage + (1 if rank < extra else 0)
        # With no parallel stage, spare cores stay idle (pipeline width
        # is fixed) — matches DSWP's bounded scalability (section 2.1).
        return replicas

    def describe(self) -> str:
        """The paper's bracket notation, e.g. ``[S,DOALL,S]``."""
        return "[" + ",".join(stage.kind for stage in self.stages) + "]"


@dataclass(frozen=True)
class SystemConfig:
    """Tunables for one DSMTX run."""

    cluster: ClusterSpec = DEFAULT_CLUSTER
    #: Total cores used by this run (workers + try-commit + commit).
    total_cores: int = 8
    #: Queue batch size in bytes; ``None`` uses the cluster default.
    batch_bytes: Optional[int] = None
    #: Maximum unacknowledged batches per queue (worker run-ahead bound).
    max_inflight_batches: int = 8
    #: Thread placement policy ("pack" or "spread").
    placement: str = "pack"
    #: Channel transport: "batched" (DSMTX queue) or "direct" (one MPI
    #: call per datum; the Figure 5(b) unoptimized baseline).
    channel_mode: str = "batched"
    #: MPI send flavour for channel traffic.
    mpi_variant: MPIVariant = MPIVariant.SEND
    #: Extra units serving Copy-On-Access for read-only pages (an
    #: extension: shards the commit unit's COA hot spot; see
    #: :mod:`repro.core.replica`).  Each takes one core off the budget.
    coa_replicas: int = 0
    #: Instructions charged per mtx_read/mtx_write bookkeeping.
    access_instructions: int = 12
    #: Instructions to install one COA-transferred page (local memcpy).
    coa_install_instructions: int = 200
    #: Copy-On-Access transfer granularity.  The paper argues (section
    #: 4.2) that word-granularity COA would be prohibitive on a cluster
    #: because every word costs a round trip; page granularity amortizes
    #: it as constructive prefetching.  False switches to word
    #: granularity for the ablation bench.
    coa_page_granularity: bool = True
    #: Instructions charged by the try-commit unit per log entry checked.
    check_instructions: int = 30
    #: Instructions charged by the commit unit per committed word.
    commit_instructions: int = 20
    #: Instructions charged per unit at each recovery barrier.
    barrier_instructions: int = 400
    #: Instructions to reinstate protection on one page during recovery.
    reprotect_instructions_per_page: int = 150
    #: Enable the failure-aware runtime: heartbeat failure detection,
    #: sequence-numbered ack/retransmit on unit traffic, epoch
    #: checkpointing, and degraded-mode restart after a node crash
    #: (docs/RESILIENCE.md).  Off by default — the fault-free fast path
    #: is byte-identical with this disabled.
    fault_tolerance: bool = False
    #: Commits between epoch checkpoints of the commit unit's state.
    checkpoint_interval_mtxs: int = 64
    #: Fixed instructions per checkpoint (metadata + fsync analogue).
    checkpoint_base_instructions: int = 5000
    #: Instructions per word written since the previous checkpoint.
    checkpoint_word_instructions: int = 4
    #: Run a hot-standby replica of the commit unit on a survivor node,
    #: kept current by epoch checkpoints plus streaming replication of
    #: committed write logs, and promoted when the failure detector
    #: declares the primary's node dead (docs/RESILIENCE.md).  Requires
    #: ``fault_tolerance``; takes one core off the worker budget.
    commit_replication: bool = False
    #: Node hosting the standby.  ``None`` picks deterministically: the
    #: standby keeps its placement-policy seat when that already lands
    #: off the commit node, otherwise the first node (preferring empty
    #: ones) other than the commit unit's with a free core.
    standby_node: Optional[int] = None
    #: End-to-end integrity mode: every framed send carries a CRC32 of
    #: its payload (verified and dropped-on-mismatch at the receiver, so
    #: silent wire corruption becomes a loss the retransmit machinery
    #: repairs), epoch checkpoints and replication folds carry state
    #: digests (a corrupted image is *refused* at promotion), and a
    #: periodic scrubber audits committed pages against the commit
    #: unit's digest table (docs/RESILIENCE.md).  Requires
    #: ``fault_tolerance`` — detection without retransmission could only
    #: turn silent corruption into a hang.
    integrity: bool = False
    #: Seconds between committed-page scrub sweeps (integrity mode).
    scrub_interval_s: float = 0.005

    def __post_init__(self) -> None:
        if self.total_cores < 3:
            raise ConfigurationError(
                f"DSMTX needs at least 3 cores (worker + try-commit + commit), "
                f"got {self.total_cores}"
            )
        if self.total_cores > self.cluster.total_cores:
            raise ConfigurationError(
                f"requested {self.total_cores} cores but the cluster has "
                f"{self.cluster.total_cores}"
            )
        if self.max_inflight_batches < 1:
            raise ConfigurationError("max_inflight_batches must be >= 1")
        if self.checkpoint_interval_mtxs < 1:
            raise ConfigurationError("checkpoint_interval_mtxs must be >= 1")
        if self.commit_replication and not self.fault_tolerance:
            raise ConfigurationError(
                "commit_replication needs the failure-aware runtime: "
                "set fault_tolerance=True"
            )
        if self.integrity and not self.fault_tolerance:
            raise ConfigurationError(
                "integrity needs the failure-aware runtime (checksummed "
                "frames repair via retransmission): set fault_tolerance=True"
            )
        if self.scrub_interval_s <= 0:
            raise ConfigurationError("scrub_interval_s must be positive")
        if self.standby_node is not None:
            if not self.commit_replication:
                raise ConfigurationError(
                    "standby_node is meaningless without commit_replication"
                )
            if not 0 <= self.standby_node < self.cluster.nodes:
                raise ConfigurationError(
                    f"standby_node {self.standby_node} outside the cluster's "
                    f"{self.cluster.nodes} nodes"
                )

    @property
    def reserved_units(self) -> int:
        """Cores reserved off the worker budget: try-commit + commit,
        the COA replicas, and the commit standby when replicated."""
        return 2 + self.coa_replicas + (1 if self.commit_replication else 0)

    def with_cores(self, total_cores: int) -> "SystemConfig":
        """A copy of this config at a different core count."""
        return replace(self, total_cores=total_cores)

    @property
    def effective_batch_bytes(self) -> int:
        return self.batch_bytes if self.batch_bytes is not None else self.cluster.queue_batch_bytes
