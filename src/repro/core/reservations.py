"""Deterministic-reservations commit-unit service (``write_min`` table).

The PBBS/parlaylib *deterministic reservations* paradigm resolves
cross-iteration conflicts the opposite way from the paper's TLS /
Spec-DSWP pipeline: instead of running ahead speculatively and
squashing on a detected conflict, every iteration first **reserves**
the shared slots it wants to mutate with a priority ``write_min``
(lowest iteration index wins), then **checks** whether it won all of
its reservations, and only then **commits**.  Iterations that lost a
reservation are carried into the next round.  Because min is
commutative, the winner of every slot depends only on *which*
iterations reserved it — never on worker count, scheduling, or message
arrival order — which is what makes the paradigm deterministic.

This module is the service half: the :class:`ReservationTable` (the
``write_min`` slots, backed by an :class:`~repro.memory.AddressSpace`
so reservations live in the same memory substrate as everything else)
and the :class:`ReservationCommitService` the ``speculative_for``
runtime hosts on its commit unit — it owns the master memory, applies
reservation batches, adjudicates per-iteration verdicts, and group
commits the winners' writes in iteration order.  The round scheduler
driving it lives in :mod:`repro.paradigms.specfor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.memory import AddressSpace

__all__ = [
    "EMPTY",
    "ReservationTable",
    "ReservationStats",
    "RoundRecord",
    "ReservationCommitService",
    "next_round_size",
]


def next_round_size(size: int, attempted: int, carried: int, max_round: int) -> int:
    """Contention-adaptive round size (worker-count independent).

    High carry ratio (> 1/4 of the batch retried) halves the round —
    smaller prefixes conflict less; low ratio (< 1/16) doubles it back,
    capped at ``max_round``.  Lives here (not in the scheduler) so the
    hot-standby replica can mirror the primary's scheduling state from
    the replicated round records alone.
    """
    if carried * 4 >= attempted:
        return max(1, size // 2)
    if carried * 16 <= attempted:
        return min(max_round, size * 2)
    return size

#: Table value meaning *unreserved* (an :class:`AddressSpace` word that
#: was never written reads back 0, so empty slots cost no storage).
EMPTY = 0


class ReservationTable:
    """``write_min`` reservation slots over an address space.

    Slots are word-indexed (slot ``s`` lives at word address ``8 * s``
    inside a dedicated space).  Priorities are iteration indices;
    internally they are stored as ``iteration + 1`` so the empty value
    0 never collides with iteration 0.
    """

    __slots__ = ("space", "slots", "reservations", "lost")

    def __init__(self, slots: int, space: Optional[AddressSpace] = None) -> None:
        if slots < 1:
            raise ConfigurationError(
                f"a reservation table needs at least one slot, got {slots}"
            )
        self.slots = slots
        self.space = space if space is not None else AddressSpace("reservations")
        #: ``write_min`` calls applied (attempted reservations).
        self.reservations = 0
        #: Attempts that lost to a lower iteration already in the slot.
        self.lost = 0

    def _address(self, slot: int) -> int:
        if not 0 <= slot < self.slots:
            raise ConfigurationError(
                f"reservation slot {slot} outside table of {self.slots}"
            )
        return slot << 3

    def reserve(self, slot: int, iteration: int) -> int:
        """``write_min(slot, iteration)``: lowest iteration wins.

        Returns the iteration now holding the slot.  Re-reserving with
        the same iteration is idempotent; reserving with a higher
        iteration than the holder is a recorded loss.
        """
        if iteration < 0:
            raise ConfigurationError(
                f"reservation priorities are iteration indices, got {iteration}"
            )
        self.reservations += 1
        winner = self.space.write_min(self._address(slot), iteration + 1) - 1
        if winner != iteration:
            self.lost += 1
        return winner

    def holder(self, slot: int) -> Optional[int]:
        """Iteration holding ``slot``, or ``None`` when unreserved."""
        value = self.space.read(self._address(slot))
        return None if value == EMPTY else value - 1

    def check(self, slot: int, iteration: int) -> bool:
        """True iff ``iteration`` won ``slot`` (the parlay ``check``)."""
        return self.space.read(self._address(slot)) == iteration + 1

    def check_reset(self, slot: int, iteration: int) -> bool:
        """``check`` and, on success, release the slot (parlay idiom)."""
        if self.check(slot, iteration):
            self.release(slot)
            return True
        return False

    def release(self, slot: int) -> None:
        """Clear one slot back to empty."""
        self.space.write(self._address(slot), EMPTY)

    def reset(self, slots: Optional[Iterable[int]] = None) -> None:
        """Clear the listed slots (or every slot) for the next round."""
        if slots is None:
            slots = range(self.slots)
        for slot in slots:
            self.release(slot)

    # -- epoch checkpointing (fault-tolerant mode) -----------------------------

    def counters(self) -> tuple[int, int]:
        """Checkpoint of the cumulative counters.  Between rounds every
        slot is released, so the counters *are* the table's durable
        state — replicating them per round is the table's epoch
        checkpoint."""
        return (self.reservations, self.lost)

    def restore_counters(self, counters: tuple[int, int]) -> None:
        """Roll the counters back to a checkpoint (round abort, or a
        promoted standby resuming from the replicated state)."""
        self.reservations, self.lost = counters


@dataclass
class RoundRecord:
    """One reserve -> check -> commit round of a ``speculative_for``."""

    round_index: int
    #: Iterations attempted this round (the pending-prefix batch size).
    attempted: int
    #: Iterations that completed (committed or decided they had no work).
    completed: int
    #: Iterations that lost at least one reservation.
    reservation_failures: int
    #: Iterations whose commit step declined after winning (rare).
    commit_failures: int
    #: Iterations carried into the next round.
    carried: int
    #: Words group-committed by the service this round.
    words_committed: int

    def as_tuple(self) -> tuple:
        """Wire form for the replication stream (fault-tolerant mode)."""
        return (
            self.round_index, self.attempted, self.completed,
            self.reservation_failures, self.commit_failures,
            self.carried, self.words_committed,
        )

    @classmethod
    def from_tuple(cls, fields: tuple) -> "RoundRecord":
        return cls(*fields)


@dataclass
class ReservationStats:
    """Aggregated ``speculative_for`` statistics (the run record)."""

    #: Per-round records, in execution order.
    rounds: list = field(default_factory=list)
    #: Total ``write_min`` reservations applied by the service.
    reservations: int = 0
    #: Iterations that lost a reservation, summed over rounds.
    reservation_failures: int = 0
    #: Iterations whose commit step declined after winning, summed.
    commit_failures: int = 0
    #: Iterations carried forward, summed over rounds (re-tries).
    carried_total: int = 0
    #: Iterations completed.
    committed: int = 0
    #: Words group-committed.
    words_committed: int = 0

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def record_round(self, record: RoundRecord) -> None:
        self.rounds.append(record)
        self.reservation_failures += record.reservation_failures
        self.commit_failures += record.commit_failures
        self.carried_total += record.carried
        self.committed += record.completed
        self.words_committed += record.words_committed


class ReservationCommitService:
    """Commit-unit half of the round protocol.

    Owns the committed master memory and the reservation table; the
    round scheduler feeds it reservation batches and winner write-sets.
    The service is *pure bookkeeping* — it charges no simulated time
    itself; the hosting unit (:class:`repro.paradigms.specfor.SpecForSystem`'s
    commit process) prices each call in core cycles.
    """

    def __init__(self, slots: int, master: Optional[AddressSpace] = None) -> None:
        self.master = master if master is not None else AddressSpace("master")
        self.table = ReservationTable(slots)
        self.stats = ReservationStats()
        #: Slots touched in the current round (reset targets).
        self._touched: set[int] = set()

    # -- reserve phase ---------------------------------------------------------

    def apply_reservations(self, pairs: Sequence[tuple]) -> int:
        """Apply a batch of ``(slot, iteration)`` reservations.

        Order inside (and across) batches is irrelevant: ``write_min``
        commutes.  Returns the number applied (the hosting unit charges
        per-entry cycles from it).
        """
        for slot, iteration in pairs:
            self.table.reserve(slot, iteration)
            self._touched.add(slot)
        self.stats.reservations = self.table.reservations
        return len(pairs)

    # -- check phase -----------------------------------------------------------

    def verdict(self, iteration: int, slots: Sequence[int]) -> bool:
        """True iff ``iteration`` holds *every* slot it reserved."""
        return all(self.table.check(slot, iteration) for slot in slots)

    # -- commit phase ----------------------------------------------------------

    def commit_writes(self, writes_by_iteration: Sequence[tuple]) -> int:
        """Group commit winners' write-sets **in iteration order**.

        ``writes_by_iteration`` is ``[(iteration, [(addr, value), ...]), ...]``;
        sorting by iteration keeps the committed image identical to the
        sequential execution whatever order workers reported in.
        Returns words committed.
        """
        words = 0
        for _iteration, writes in sorted(writes_by_iteration):
            if writes:
                self.master.apply_writes(writes)
                words += len(writes)
        return words

    def end_round(self) -> None:
        """Release every slot touched this round (fresh table for the
        next batch; untouched slots cost nothing)."""
        self.table.reset(sorted(self._touched))
        self._touched.clear()
