"""Reliable transport for unit traffic (fault-tolerant mode).

The simulated wire is FIFO and lossless by construction, so the baseline
runtime sends envelopes raw.  Under fault injection the wire may drop or
duplicate messages, and a node crash silently discards everything in
flight to or from it — so when :attr:`SystemConfig.fault_tolerance` is
on, every envelope bound for a unit inbox is wrapped in a
:class:`~repro.core.messages.Frame` carrying a per-(src, dst) sequence
number, and the destination's inbox is fronted by an :class:`IngestBox`:

* **dedup / reorder** — a frame below the expected sequence number is a
  duplicate and is dropped; one above it is parked in a reorder buffer;
  the expected frame is unwrapped into the real inbox (so the
  :class:`~repro.core.endpoint.Endpoint` machinery above is unchanged).
* **cumulative ack** — every ingested frame triggers a small ack on the
  management path telling the sender everything up to the highest
  in-order sequence number arrived.
* **retransmit** — the sender keeps unacknowledged frames and re-sends
  on a per-frame timer with capped exponential backoff
  (:attr:`ClusterSpec.retransmit_timeout_s` /
  :attr:`~ClusterSpec.retransmit_backoff` /
  :attr:`~ClusterSpec.retransmit_timeout_cap_s`), giving up after
  :attr:`~ClusterSpec.max_retransmits` attempts (by which point the
  failure detector has declared the destination dead).

Acks and retransmissions travel the *management path*: a latency-only
delivery that bypasses NIC serialization, modelling the dedicated
low-volume control network real clusters run alongside the data fabric.
Their cost is therefore pure latency, never core time — which also
keeps the transport's bookkeeping off the units' critical paths.

With ``fault_tolerance`` off, none of this is constructed and the send
paths pay a single ``is None`` check (the obs-layer pattern).
"""

from __future__ import annotations

from typing import Any

from repro.cluster.interconnect import _Delivery
from repro.core.integrity import CHECKSUM_BYTES, payload_checksum
from repro.core.messages import FRAME_HEADER_BYTES, Frame

__all__ = ["ReliableTransport", "IngestBox"]


class _SenderLink:
    """Sender-side state of one directed (src_tid, dst_tid) link."""

    __slots__ = ("next_seq", "unacked")

    def __init__(self) -> None:
        self.next_seq = 0
        #: seq -> (frame, wire_bytes); present until cumulatively acked.
        self.unacked: dict[int, tuple[Frame, int]] = {}


class IngestBox:
    """Store-shaped receiver front-end for one destination unit.

    Passed as the ``mailbox`` of wire deliveries: the interconnect calls
    :meth:`put_nowait` exactly as it would on the real inbox.  Frames
    are deduplicated, reordered, acknowledged, and unwrapped into the
    real inbox; anything from a crashed source node is dropped (the
    in-flight-loss semantics of a crash).
    """

    __slots__ = (
        "transport", "dst_tid", "inbox", "_expected", "_reorder",
        "_corrupt_seen",
    )

    def __init__(self, transport: "ReliableTransport", dst_tid: int, inbox: Any) -> None:
        self.transport = transport
        self.dst_tid = dst_tid
        self.inbox = inbox
        #: Per-source next-expected sequence number.
        self._expected: dict[int, int] = {}
        #: Per-source out-of-order frames: src_tid -> {seq: payload}.
        self._reorder: dict[int, dict[int, Any]] = {}
        #: (src_tid, seq) of frames dropped for checksum mismatch; an
        #: intact later arrival of the same frame counts as a repair.
        self._corrupt_seen: set[tuple[int, int]] = set()

    def put_nowait(self, frame: Frame) -> None:
        transport = self.transport
        src = frame.src_tid
        if transport.is_dead_unit(src) or transport.is_dead_unit(self.dst_tid):
            transport.stats.ft_frames_from_dead_dropped += 1
            return
        seq = frame.seq
        if transport.integrity and frame.checksum != -1:
            if payload_checksum(frame.payload) != frame.checksum:
                # Detection converts silent corruption into loss: the
                # frame is dropped unacknowledged, and the sender's
                # retransmit timer re-delivers the intact original (the
                # unacked buffer aliases the uncorrupted frame).
                transport.stats.ft_corruptions_detected += 1
                self._corrupt_seen.add((src, seq))
                obs = transport.system.obs
                if obs is not None:
                    from repro.obs.tracer import CAT_INTEGRITY, PID_RUNTIME

                    obs.tracer.instant(
                        CAT_INTEGRITY, "frame_checksum_mismatch",
                        PID_RUNTIME, self.dst_tid, src=src, seq=seq,
                    )
                    obs.metrics.counter("integrity.frames_dropped").inc()
                return
            if self._corrupt_seen and (src, seq) in self._corrupt_seen:
                self._corrupt_seen.discard((src, seq))
                transport.stats.ft_corruptions_repaired += 1
                obs = transport.system.obs
                if obs is not None:
                    obs.metrics.counter("integrity.frames_repaired").inc()
        expected = self._expected.get(src, 0)
        if seq < expected:
            transport.stats.ft_duplicates_dropped += 1
        elif seq == expected:
            self.inbox.put_nowait(frame.payload)
            expected += 1
            parked = self._reorder.get(src)
            if parked:
                while expected in parked:
                    self.inbox.put_nowait(parked.pop(expected))
                    expected += 1
            self._expected[src] = expected
        else:
            parked = self._reorder.setdefault(src, {})
            if seq in parked:
                transport.stats.ft_duplicates_dropped += 1
            else:
                parked[seq] = frame.payload
                transport.stats.ft_frames_reordered += 1
        transport.send_ack(src, self.dst_tid, expected - 1)

    def forget_source(self, src_tid: int) -> None:
        """Drop reorder state from a source declared dead."""
        self._reorder.pop(src_tid, None)


class ReliableTransport:
    """All sender links, ingest boxes, and retransmit timers of a run."""

    def __init__(self, system: "DSMTXSystem") -> None:  # noqa: F821
        self.system = system
        self.env = system.env
        self.stats = system.stats
        spec = system.cluster
        self._rto = spec.retransmit_timeout_s
        self._backoff = spec.retransmit_backoff
        self._rto_cap = spec.retransmit_timeout_cap_s
        self._max_retransmits = spec.max_retransmits
        self._ack_bytes = spec.ack_bytes
        #: Checksum mode (``SystemConfig.integrity``): stamp a CRC32 on
        #: every frame, verify at every ingest.
        self.integrity = system.config.integrity
        #: Wire bytes the checksum adds per frame (0 when integrity is
        #: off).  Senders that already price the frame header themselves
        #: add just this.
        self.checksum_bytes = CHECKSUM_BYTES if self.integrity else 0
        #: Wire bytes the transport adds per framed envelope — the frame
        #: header, plus the checksum when integrity is on.  Callers add
        #: this instead of ``FRAME_HEADER_BYTES`` so both modes price
        #: their actual framing.
        self.extra_bytes = FRAME_HEADER_BYTES + self.checksum_bytes
        self._links: dict[tuple[int, int], _SenderLink] = {}
        self._boxes: dict[int, IngestBox] = {}
        #: (latency, bandwidth) of the wire between two units, cached.
        self._wire: dict[tuple[int, int], tuple[float, float]] = {}
        self._dead_tids: set[int] = set()

    # -- topology helpers ----------------------------------------------------

    def ingest_box(self, dst_tid: int) -> IngestBox:
        box = self._boxes.get(dst_tid)
        if box is None:
            box = self._boxes[dst_tid] = IngestBox(
                self, dst_tid, self.system.inbox_of(dst_tid)
            )
        return box

    def _wire_of(self, src_tid: int, dst_tid: int) -> tuple[float, float]:
        wire = self._wire.get((src_tid, dst_tid))
        if wire is None:
            system = self.system
            wire = self._wire[(src_tid, dst_tid)] = system.cluster.wire_parameters(
                system.core_of(src_tid).index, system.core_of(dst_tid).index
            )
        return wire

    def is_dead_unit(self, tid: int) -> bool:
        return tid in self._dead_tids

    # -- sender side ---------------------------------------------------------

    def stamp(self, src_tid: int, dst_tid: int, envelope: Any, wire_bytes: int) -> Frame:
        """Wrap ``envelope`` in the next sequence-numbered frame on the
        (src, dst) link and arm its retransmit timer."""
        link = self._links.get((src_tid, dst_tid))
        if link is None:
            link = self._links[(src_tid, dst_tid)] = _SenderLink()
        seq = link.next_seq
        link.next_seq = seq + 1
        if self.integrity:
            frame = Frame(
                src_tid, dst_tid, seq, envelope, payload_checksum(envelope)
            )
        else:
            frame = Frame(src_tid, dst_tid, seq, envelope)
        link.unacked[seq] = (frame, wire_bytes)
        self._arm_timer(link, frame, self._rto, 0)
        return frame

    def _arm_timer(self, link: _SenderLink, frame: Frame, timeout: float, attempt: int) -> None:
        self.env.sleep(timeout).callbacks.append(
            lambda _event: self._on_timer(link, frame, timeout, attempt)
        )

    def _on_timer(self, link: _SenderLink, frame: Frame, timeout: float, attempt: int) -> None:
        if frame.seq not in link.unacked or self.system.state.done:
            return
        if frame.dst_tid in self._dead_tids or frame.src_tid in self._dead_tids:
            del link.unacked[frame.seq]
            return
        if attempt >= self._max_retransmits:
            self.stats.ft_retransmit_giveups += 1
            del link.unacked[frame.seq]
            return
        self.stats.ft_retransmits += 1
        _frame, wire_bytes = link.unacked[frame.seq]
        latency, bandwidth = self._wire_of(frame.src_tid, frame.dst_tid)
        # Management-path resend: latency-only, no NIC contention.
        _Delivery(
            self.env, None, wire_bytes, latency, bandwidth,
            self.ingest_box(frame.dst_tid), _frame, None,
        )
        next_timeout = min(timeout * self._backoff, self._rto_cap)
        self._arm_timer(link, frame, next_timeout, attempt + 1)

    # -- receiver side -------------------------------------------------------

    def send_ack(self, src_tid: int, dst_tid: int, upto: int) -> None:
        """Cumulative ack from ``dst`` back to ``src`` (management path)."""
        self.stats.ft_acks += 1
        latency, bandwidth = self._wire_of(dst_tid, src_tid)
        _Delivery(
            self.env, None, self._ack_bytes, latency, bandwidth,
            None, None, lambda: self._on_ack(src_tid, dst_tid, upto),
        )

    def _on_ack(self, src_tid: int, dst_tid: int, upto: int) -> None:
        link = self._links.get((src_tid, dst_tid))
        if link is None or not link.unacked:
            return
        for seq in [s for s in link.unacked if s <= upto]:
            del link.unacked[seq]

    # -- failover ------------------------------------------------------------

    def forget_units(self, dead_tids) -> None:
        """Degraded-mode restart: abandon every frame to or from the
        dead units and their reorder state; stop their retransmits."""
        self._dead_tids.update(dead_tids)
        for (src, dst), link in self._links.items():
            if src in self._dead_tids or dst in self._dead_tids:
                link.unacked.clear()
        for box in self._boxes.values():
            for tid in dead_tids:
                box.forget_source(tid)
