"""Misspeculation recovery (paper section 4.3).

When an MTX conflicts with an earlier one, the system rolls back:

1. **ERM** — all threads synchronize into recovery mode.  The commit
   unit (the orchestrator) releases queue credits and flushes every
   inbox so blocked units wake; everyone meets at the first barrier.
2. **FLQ** — message queues holding speculative state are flushed, and
   all threads but the commit unit reinstate the access protections on
   their heaps, discarding the remaining speculative state.  A second
   barrier ends the phase.
3. **SEQ** — the commit unit re-executes the uncommitted iterations up
   to and including the misspeculated one in single-threaded fashion
   against committed memory.
4. A final barrier releases everyone; the epoch advances, workers
   recompute their round-robin assignments from the new restart base,
   and Copy-On-Access guarantees they see fresh committed data.  The
   **RFP** (refill pipeline) cost — the squashed run-ahead work —
   follows implicitly, which is why it dominates Figure 6.

This module provides the shared barriers and the participant-side
protocol; the orchestrator side lives in
:class:`~repro.core.commit.CommitUnit`.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ChannelFlushedError, RecoveryAbort
from repro.obs.tracer import (
    CAT_RECOVERY_ERM,
    CAT_RECOVERY_FLQ,
    CAT_RECOVERY_SEQ,
    PID_RUNTIME,
)
from repro.sim import Barrier, Event

__all__ = ["RecoveryCoordinator"]


class RecoveryCoordinator:
    """Shared barriers plus the participant protocol."""

    def __init__(self, system: "DSMTXSystem", parties: int) -> None:  # noqa: F821
        self.system = system
        self.parties = parties
        env = system.env
        self.erm_barrier = Barrier(env, parties)
        self.flq_barrier = Barrier(env, parties)
        self.resume_barrier = Barrier(env, parties)
        self._deregistered: set[int] = set()

    def deregister(self, dead_tids) -> None:
        """Remove dead units from the barrier protocol (failure detector).

        Called at declaration time, *before* the commit unit orchestrates
        the failover: a rollback already in progress must complete with
        the survivors instead of deadlocking on parties that will never
        arrive.  Shrinks every barrier and withdraws any arrival the dead
        unit already made (it may have died waiting at a barrier).
        """
        fresh = [tid for tid in dead_tids if tid not in self._deregistered]
        if not fresh:
            return
        self._deregistered.update(fresh)
        self.parties -= len(fresh)
        for barrier in (self.erm_barrier, self.flq_barrier, self.resume_barrier):
            for tid in fresh:
                barrier.drop(tid)
            barrier.set_parties(self.parties)

    def substitute(self, old_tid: int, new_tid: int) -> None:
        """Pass a dead orchestrator's barrier seat to its replacement
        (commit-standby promotion).

        Unlike :meth:`deregister`, the party count is *unchanged*: the
        promoted unit arrives at every barrier under its own tid.  Any
        arrival the dead unit already made is withdrawn (it may have
        died waiting at a barrier mid-recovery).
        """
        if old_tid in self._deregistered:
            return
        self._deregistered.add(old_tid)
        for barrier in (self.erm_barrier, self.flq_barrier, self.resume_barrier):
            barrier.drop(old_tid)

    def _barrier_cost(self, unit) -> Generator[Event, Any, None]:
        """Software + wire cost of one barrier round for one unit."""
        unit.core.charge_instructions(self.system.config.barrier_instructions)
        yield from unit.core.drain()

    def participate(self, unit) -> Generator[Event, Any, None]:
        """Run the participant side of recovery for a worker or the
        try-commit unit.  Returns after the resume barrier (or at once
        if the run terminated instead)."""
        system = self.system
        obs = system.obs
        env = system.env
        entered = env.now if obs is not None else 0.0
        # Wait for the commit unit to actually enter recovery mode; the
        # inbox flush it performs will wake us if we block meanwhile.
        # Termination is re-checked on *every* pass: the commit unit may
        # decide the run is done (rather than entering recovery) while
        # this unit sits in this loop — e.g. when a drain was requested
        # but every remaining iteration commits cleanly, or when the
        # terminating inbox flush itself raised the error that brought
        # us here.  Joining the ERM barrier after termination would
        # strand this unit (nobody else will ever arrive).
        while not system.state.in_recovery:
            if system.state.done:
                return
            try:
                envelope = yield from unit.endpoint._recv_one()
                unit.endpoint._route(envelope, arrival_order=False)
            except (ChannelFlushedError, RecoveryAbort):
                continue
        # ERM: synchronize into recovery mode.
        yield from self._barrier_cost(unit)
        yield self.erm_barrier.wait(unit.tid)
        if obs is not None:
            obs.tracer.complete(
                CAT_RECOVERY_ERM, "erm", PID_RUNTIME, unit.tid, entered
            )
            erm_done = env.now
        # FLQ: reinstate protections, discard local speculative state.
        dropped_pages = unit.discard_speculative_state()
        unit.core.charge_instructions(
            dropped_pages * system.config.reprotect_instructions_per_page
        )
        yield from self._barrier_cost(unit)
        yield self.flq_barrier.wait(unit.tid)
        if obs is not None:
            obs.tracer.complete(
                CAT_RECOVERY_FLQ, "flq", PID_RUNTIME, unit.tid, erm_done,
                dropped_pages=dropped_pages,
            )
            flq_done = env.now
        # SEQ runs at the commit unit; we wait for the resume barrier.
        yield from self._barrier_cost(unit)
        yield self.resume_barrier.wait(unit.tid)
        # Propagation of the resume notification.
        yield system.env.timeout(2 * system.cluster.inter_node_latency_s)
        if obs is not None:
            obs.tracer.complete(
                CAT_RECOVERY_SEQ, "seq.wait", PID_RUNTIME, unit.tid, flq_done
            )
