"""Worker units.

A worker executes subTXs: the body of one pipeline stage, over the
iterations assigned to its replica slot (round-robin within the stage).
Per the paper's execution model (Figure 3):

* ``mtx_begin`` refreshes the worker's memory with the uncommitted
  stores of earlier subTXs in the same MTX (consuming the forwarding
  queues until the END markers of every earlier stage);
* the body's speculative loads and stores hit the worker's private
  memory, with Copy-On-Access faults fetching committed pages from the
  commit unit;
* ``mtx_end`` forwards this subTX's stores to all later stages
  (flushing those queues — uncommitted values are explicitly forwarded
  at subTX end), and appends the access log to the try-commit and
  commit streams (which flush lazily, by batch).

Workers detect misspeculation either directly (a failed speculation
assertion -> ``mtx_misspec`` to the commit unit) or indirectly (queue
flush / state poll), then join the recovery barriers of section 4.3.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.context import MTXContext
from repro.core.messages import (
    CTL_COA_REQUEST,
    CTL_COA_RESPONSE,
    CTL_MISSPEC,
    DATA,
    END_SUBTX,
    WRITE,
    WRITE_BLOCK,
)
from repro.errors import (
    ChannelFlushedError,
    MisspeculationDetected,
    NodeCrashed,
    ProcessInterrupt,
    ProtectionFault,
    RecoveryAbort,
)
from repro.memory import AddressSpace, page_number, word_index
from repro.obs.tracer import CAT_COMPUTE, CAT_PAGE_FAULT, CAT_QUEUE, PID_RUNTIME
from repro.sim import Event

__all__ = ["Worker"]


class Worker:
    """One worker unit: a stage replica pinned to a core."""

    def __init__(self, system: "DSMTXSystem", tid: int, stage_index: int, replica: int) -> None:  # noqa: F821
        self.system = system
        self.tid = tid
        self.stage_index = stage_index
        self.replica = replica
        self.core = system.core_of(tid)
        self.endpoint = system.endpoint_of_unit(tid)
        self.space = AddressSpace(f"worker{tid}", faulting=True)
        #: Forwarded writes for pages not yet COA-installed.
        self.foreign_pending: dict[int, dict[int, Any]] = {}
        #: Access log of the current subTX (R/W entries, program order).
        self.current_log: list[tuple] = []
        #: Writes of the current subTX awaiting forwarding at mtx_end.
        self.pending_forwards: list[tuple] = []
        #: TLS loop-carried values when producer == consumer worker.
        self.self_sync: dict[str, Any] = {}
        self.context = MTXContext(self)
        #: Iterations this worker completed (stats/debugging).
        self.iterations_executed = 0
        # Per-entry queue-op cost in cycles, resolved once for the
        # mtx_begin consume loop.
        self._queue_op_cycles = (
            self.system.cluster.queue_op_instructions
            / self.system.cluster.instructions_per_cycle
        )
        # Lazily-cached queue handles, filled on first use so the queue
        # registry's creation order (which recovery iterates) is
        # exactly what it would be without the cache.
        self._tclog = None
        self._clog = None
        self._fw_out: dict[int, Any] = {}
        self._fw_in: dict[int, Any] = {}

    # -- main process ----------------------------------------------------------------------

    def run(self) -> Generator[Event, Any, None]:
        """The worker's top-level process."""
        try:
            while True:
                if self.system.state.done:
                    return
                try:
                    yield from self._run_epoch()
                    yield from self._park()
                    return
                except (RecoveryAbort, ChannelFlushedError):
                    yield from self.system.recovery.participate(self)
        except ProcessInterrupt as interrupt:
            if isinstance(interrupt.cause, NodeCrashed):
                # Our node died under us (fault injection): stop
                # silently; the failure detector handles the cluster
                # side, and in-flight state dies with this unit.
                return
            raise

    def _run_epoch(self) -> Generator[Event, Any, None]:
        """Execute all iterations assigned to this replica in the
        current epoch (restart base), round-robin over the stage's
        live replicas."""
        system = self.system
        base = system.state.restart_base
        live = system.live_by_stage[self.stage_index]
        replicas = len(live)
        iteration = base + live.index(self.tid)
        first = True
        while iteration < system.total_iterations:
            state = system.state
            if state.draining and iteration >= state.pause_target:
                # This iteration is doomed: flush completed logs so the
                # drain can finish, then wait for the rollback.
                yield from self._flush_log_queues()
                raise RecoveryAbort("paused for draining")
            yield from self.mtx_begin(iteration)
            self.context.first_on_worker = first
            first = False
            body = system.workload_stage_body(self.stage_index)
            obs = system.obs
            start = system.env.now if obs is not None else 0.0
            try:
                yield from body(self.context)
            except MisspeculationDetected as misspec:
                if obs is not None:
                    obs.tracer.complete(
                        CAT_COMPUTE, f"stage{self.stage_index}.body",
                        PID_RUNTIME, self.tid, start,
                        iteration=iteration, misspec=True,
                    )
                yield from self._report_misspec(misspec)
                raise RecoveryAbort(str(misspec)) from misspec
            if obs is not None:
                obs.tracer.complete(
                    CAT_COMPUTE, f"stage{self.stage_index}.body",
                    PID_RUNTIME, self.tid, start, iteration=iteration,
                )
                obs.metrics.counter("worker.subtxs").inc()
            yield from self.mtx_end(iteration)
            self.iterations_executed += 1
            iteration += replicas
        yield from self._flush_log_queues()

    def _park(self) -> Generator[Event, Any, None]:
        """Wait after finishing assigned work: the run is not over until
        the commit unit commits everything — a later misspeculation may
        still squash this worker's iterations."""
        while not self.system.state.done:
            if self.system.state.in_recovery:
                raise RecoveryAbort("recovery while parked")
            envelope = yield from self.endpoint._recv_one()
            self.endpoint._route(envelope, arrival_order=False)

    # -- MTX life cycle -----------------------------------------------------------------------

    def mtx_begin(self, iteration: int) -> Generator[Event, Any, None]:
        """Enter the subTX for ``iteration``: refresh memory with the
        uncommitted stores of all earlier subTXs in this MTX."""
        if self.system.state.in_recovery:
            raise RecoveryAbort("recovery at mtx_begin")
        self.context.begin_iteration(iteration)
        self.current_log = []
        self.pending_forwards = []
        obs = self.system.obs
        start = self.system.env.now if obs is not None else 0.0
        if self.stage_index > 0:
            # About to block on upstream subTXs: push out any completed
            # log batches first, so the validation and commit units are
            # never starved by data sitting in a blocked worker.
            yield from self._flush_log_queues()
        for earlier_stage in range(self.stage_index):
            producer_tid = self.system.worker_tid_for(earlier_stage, iteration)
            queue = self._fw_in.get(producer_tid)
            if queue is None:
                queue = self._fw_in[producer_tid] = self.system.forward_queue(
                    producer_tid, self.tid
                )
            while True:
                entry = yield from self.endpoint.consume_from(queue)
                kind = entry[0]
                self.core.charge_cycles(self._queue_op_cycles)
                if kind == END_SUBTX:
                    if entry[1] != iteration:  # pragma: no cover - invariant
                        raise RecoveryAbort(
                            f"forwarding stream out of sync: expected END for "
                            f"iteration {iteration}, got {entry}"
                        )
                    break
                if kind == WRITE:
                    self.apply_forwarded(entry[1], entry[2])
                elif kind == WRITE_BLOCK:
                    base = entry[1]
                    for offset, value in enumerate(entry[2]):
                        self.apply_forwarded(base + (offset << 3), value)
                elif kind == DATA:
                    self.context.incoming.setdefault(entry[1], []).append(entry[2])
        if obs is not None and self.stage_index > 0:
            obs.tracer.complete(
                CAT_QUEUE, "mtx_begin.wait", PID_RUNTIME, self.tid, start,
                iteration=iteration,
            )

    def mtx_end(self, iteration: int) -> Generator[Event, Any, None]:
        """Exit the subTX: forward stores to later stages (flushed now)
        and append the access log to the validation/commit streams."""
        if self.system.state.in_recovery:
            raise RecoveryAbort("recovery at mtx_end")
        system = self.system
        obs = system.obs
        start = system.env.now if obs is not None else 0.0
        # Uncommitted value forwarding to later stages (writeAll/writeTo).
        # ``produce`` returns an empty tuple on its buffered fast path;
        # branching on it skips the ``yield from`` machinery per entry.
        for later_stage in range(self.stage_index + 1, system.num_stages):
            consumer_tid = system.worker_tid_for(later_stage, iteration)
            queue = self._fw_out.get(consumer_tid)
            if queue is None:
                queue = self._fw_out[consumer_tid] = system.forward_queue(
                    self.tid, consumer_tid
                )
            produce = queue.produce
            for entry, targets in self.pending_forwards:
                if targets is None or later_stage in targets:
                    events = produce(entry)
                    if events:
                        yield from events
            yield from produce((END_SUBTX, iteration, self.stage_index))
            yield from queue.flush_pending()
        # Access log to the try-commit unit (reads + writes)...
        tclog = self._tclog_queue()
        produce = tclog.produce
        for entry in self.current_log:
            events = produce(entry)
            if events:
                yield from events
        yield from produce((END_SUBTX, iteration, self.stage_index))
        # ... and writes to the commit unit.
        clog = self._clog_queue()
        produce = clog.produce
        for entry in self.current_log:
            kind = entry[0]
            if kind == WRITE or kind == WRITE_BLOCK:
                events = produce(entry)
                if events:
                    yield from events
        yield from produce((END_SUBTX, iteration, self.stage_index))
        self.current_log = []
        self.pending_forwards = []
        if obs is not None:
            obs.tracer.complete(
                CAT_QUEUE, "mtx_end.forward", PID_RUNTIME, self.tid, start,
                iteration=iteration,
            )
        if system.state.draining:
            # While the system drains toward a rollback, logs must reach
            # the validation/commit units promptly.
            yield from self._flush_log_queues()

    def _tclog_queue(self):
        queue = self._tclog
        if queue is None:
            queue = self._tclog = self.system.tclog_queue(self.tid)
        return queue

    def _clog_queue(self):
        queue = self._clog
        if queue is None:
            queue = self._clog = self.system.clog_queue(self.tid)
        return queue

    def _flush_log_queues(self) -> Generator[Event, Any, None]:
        """Push out partial log batches (end of assigned work)."""
        yield from self._tclog_queue().flush_pending()
        yield from self._clog_queue().flush_pending()

    def _report_misspec(self, misspec: MisspeculationDetected) -> Generator[Event, Any, None]:
        """Notify the commit unit (``mtx_misspec``).

        Completed log batches are flushed first: the drain needs them to
        commit everything before the aborted MTX.
        """
        yield from self._flush_log_queues()
        yield from self.endpoint.send_ctl(
            self.system.commit_tid, CTL_MISSPEC, misspec.iteration
        )

    # -- speculative memory ------------------------------------------------------------------------

    def speculative_read(self, address: int) -> Generator[Event, Any, Any]:
        """Read through private memory, COA-faulting as needed."""
        if not self.system.config.coa_page_granularity:
            return (yield from self._word_granular_read(address))
        try:
            return self.space.read(address)
        except ProtectionFault as fault:
            yield from self._coa_fetch(fault.page_number)
            return self.space.read(address)

    def speculative_write(self, address: int, value: Any) -> Generator[Event, Any, None]:
        """Write to private memory, COA-faulting as needed (the access
        protections trip on stores too)."""
        if not self.system.config.coa_page_granularity:
            self._word_granular_write(address, value)
            return
        try:
            self.space.write(address, value)
        except ProtectionFault as fault:
            yield from self._coa_fetch(fault.page_number)
            self.space.write(address, value)

    # Word-granularity COA (the paper's rejected design, kept for the
    # ablation bench): per-word presence is tracked in software, every
    # missing word costs its own round trip, and stores write-allocate
    # without fetching.

    def _word_granular_read(self, address: int) -> Generator[Event, Any, Any]:
        page_no = page_number(address)
        index = word_index(address)
        page = self.space.pages.get(page_no)
        if page is not None and page.present_mask >> index & 1:
            return page.words[index]
        value = yield from self._coa_fetch_word(page_no, index)
        if page is None:
            from repro.memory import Page
            page = Page(page_no)
            self.space.install_page(page)
        page.install_word(index, value)  # present but clean (committed copy)
        return value

    def _word_granular_write(self, address: int, value: Any) -> None:
        page_no = page_number(address)
        page = self.space.pages.get(page_no)
        if page is None:
            from repro.memory import Page
            page = Page(page_no)
            self.space.install_page(page)
        page.write(word_index(address), value)

    def apply_forwarded(self, address: int, value: Any) -> None:
        """Apply an uncommitted store forwarded by an earlier subTX."""
        if not self.system.config.coa_page_granularity:
            self._word_granular_write(address, value)
            return
        page_no = page_number(address)
        if self.space.has_page(page_no):
            self.space.get_page(page_no).write(word_index(address), value)
        else:
            self.foreign_pending.setdefault(page_no, {})[word_index(address)] = value

    def _coa_fetch(self, page_no: int) -> Generator[Event, Any, None]:
        """Copy-On-Access: fetch the committed page from the commit unit.

        One round trip; the whole 4 KiB page comes back, prefetching
        neighbouring words (section 4.2).
        """
        obs = self.system.obs
        start = self.system.env.now if obs is not None else 0.0
        target_tid = self.system.coa_target_tid(page_no, self.tid)
        yield from self.endpoint.send_ctl(
            target_tid, CTL_COA_REQUEST, (page_no, self.tid, None)
        )
        while True:
            envelope = yield from self.endpoint.wait_ctl(CTL_COA_RESPONSE)
            got_page_no, _index, page = envelope.payload
            if got_page_no == page_no:
                break
            # A stale response from before a rollback; keep waiting.
        self.core.charge_instructions(self.system.config.coa_install_instructions)
        self.space.install_page(page)
        pending = self.foreign_pending.pop(page_no, None)
        if pending:
            for index, value in pending.items():
                page.write(index, value)
        if obs is not None:
            obs.tracer.complete(
                CAT_PAGE_FAULT, "coa.fetch", PID_RUNTIME, self.tid, start,
                page=page_no, server=target_tid,
            )
            obs.metrics.counter("coa.page_fetches").inc()

    def _coa_fetch_word(self, page_no: int, index: int) -> Generator[Event, Any, Any]:
        """Word-granularity COA: one round trip for a single word."""
        obs = self.system.obs
        start = self.system.env.now if obs is not None else 0.0
        yield from self.endpoint.send_ctl(
            self.system.commit_tid, CTL_COA_REQUEST, (page_no, self.tid, index)
        )
        while True:
            envelope = yield from self.endpoint.wait_ctl(CTL_COA_RESPONSE)
            got_page_no, got_index, value = envelope.payload
            if got_page_no == page_no and got_index == index:
                if obs is not None:
                    obs.tracer.complete(
                        CAT_PAGE_FAULT, "coa.fetch_word", PID_RUNTIME, self.tid,
                        start, page=page_no, word=index,
                    )
                    obs.metrics.counter("coa.word_fetches").inc()
                return value

    # -- recovery ------------------------------------------------------------------------------------

    def discard_speculative_state(self) -> int:
        """FLQ phase: reinstate page protections and drop local state.

        Returns the number of pages dropped (used to cost the phase).
        """
        dropped = self.space.reprotect_all()
        self.foreign_pending.clear()
        self.current_log = []
        self.pending_forwards = []
        self.self_sync.clear()
        self.endpoint.clear()
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Worker tid={self.tid} stage={self.stage_index} replica={self.replica}>"
