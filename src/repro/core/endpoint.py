"""Per-unit message endpoint.

Every DSMTX unit (worker, try-commit, commit) owns one inbox: a FIFO
store into which all of its incoming traffic — queue batches and control
messages — is delivered by the MPI layer.  The endpoint multiplexes that
inbox in one of two styles:

* *streamed* (workers, try-commit): the unit blocks on a specific queue
  with :meth:`consume_from` or on a control kind with :meth:`wait_ctl`;
  envelopes for other queues are routed into their buffers meanwhile.
* *arrival-order* (commit unit): the unit is event-driven and takes
  whatever comes next with :meth:`next_message`.

Both styles apply epoch filtering: batches and control messages sent
before the last rollback are recognized by their epoch tag and dropped
(their flow-control credits are still released).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from repro.core.messages import BatchEnvelope, ControlEnvelope
from repro.errors import RecoveryAbort
from repro.obs.tracer import CAT_MPI_RECV, PID_RUNTIME
from repro.sim import Event, Store

__all__ = ["Endpoint"]


class Endpoint:
    """Inbox plus routing for one runtime unit."""

    def __init__(self, system: "DSMTXSystem", tid: int) -> None:  # noqa: F821
        self.system = system
        self.tid = tid
        self.inbox = Store(system.env)
        # Per-receive costs and the owning core, resolved once:
        # _recv_one runs for every envelope this unit takes in.
        cluster = system.cluster
        ipc = cluster.instructions_per_cycle
        self._core = system.core_of(tid)
        self._recv_ready_cycles = cluster.mpi_recv_ready_instructions / ipc
        self._recv_blocked_cycles = cluster.mpi_recv_instructions / ipc
        self._state = system.state
        self._mpi_variant = system.config.mpi_variant
        #: Reliable transport (fault-tolerant mode) or ``None``.
        self._transport = system.transport
        #: Per-destination (core index, tag, inbox) for send_ctl, filled
        #: on first use — all three are fixed for the life of the system.
        self._ctl_dst: dict[int, tuple] = {}
        #: Control envelopes awaiting a wait_ctl caller.
        self.pending_ctl: deque[ControlEnvelope] = deque()
        #: Arrival-order records for next_message consumers.
        self.pending_messages: deque = deque()

    # -- receiving ---------------------------------------------------------------

    def _recv_one(self, check_state: bool = True) -> Generator[Event, Any, Any]:
        """Block for the next envelope, paying the MPI receive cost.

        A message that already arrived takes the fast polling path; a
        receive that actually blocks pays the full MPI_Recv cost.
        Re-checks the system state after realizing deferred work: the
        recovery (or termination) inbox flush may have happened while
        this unit was draining, in which case blocking now would hang.
        ``check_state=False`` is for units with no recovery-barrier
        obligations (COA replicas): they simply sleep through rollbacks.
        """
        core = self._core
        yield from core.drain()
        # Evaluate readiness only *after* realizing deferred work: the
        # recovery flush may have emptied the inbox meanwhile, and
        # blocking on it then would hang past the rollback.
        ready = len(self.inbox.items) > 0
        state = self._state
        if check_state and not ready and (state.in_recovery or state.done):
            raise RecoveryAbort("system state changed while draining")
        obs = self.system.obs
        start = self.system.env.now if obs is not None else 0.0
        envelope = yield self.inbox.get()
        core.charge_cycles(self._recv_ready_cycles if ready else self._recv_blocked_cycles)
        if obs is not None:
            if not ready:
                # Only receives that actually blocked get a span; the
                # polling fast path would flood the trace with zero-width
                # events.
                obs.tracer.complete(
                    CAT_MPI_RECV, "inbox.recv", PID_RUNTIME, self.tid, start
                )
                obs.metrics.counter("endpoint.recv_blocked").inc()
            else:
                obs.metrics.counter("endpoint.recv_ready").inc()
        return envelope

    def _route(self, envelope: Any, arrival_order: bool) -> None:
        """File one envelope into the right buffer (or drop it as stale)."""
        if isinstance(envelope, BatchEnvelope):
            queue = self.system.queue_by_name(envelope.queue_name)
            accepted = queue.accept_batch(envelope)
            if accepted and arrival_order:
                self.pending_messages.append(("batch", queue))
        elif isinstance(envelope, ControlEnvelope):
            if envelope.epoch != self.system.state.epoch:
                return
            if arrival_order:
                self.pending_messages.append(("ctl", envelope))
            else:
                self.pending_ctl.append(envelope)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected inbox item: {envelope!r}")

    # -- streamed style -------------------------------------------------------------

    def consume_from(self, queue: "RuntimeQueue") -> Generator[Event, Any, tuple]:  # noqa: F821
        """Blocking consume of the next entry from ``queue``.

        Other queues' batches and control messages arriving meanwhile
        are buffered.  Raises :class:`RecoveryAbort` if the system
        enters recovery while waiting (the inbox flush wakes us).
        """
        delivered = queue.delivered
        while True:
            if delivered:
                return delivered.popleft()
            if self._state.in_recovery:
                raise RecoveryAbort("recovery started while consuming")
            envelope = yield from self._recv_one()
            self._route(envelope, arrival_order=False)

    def wait_ctl(self, kind: str, check_state: bool = True) -> Generator[Event, Any, ControlEnvelope]:
        """Blocking wait for the next control message of ``kind``."""
        while True:
            for i, envelope in enumerate(self.pending_ctl):
                if envelope.kind == kind:
                    del self.pending_ctl[i]
                    return envelope
            if check_state and self._state.in_recovery:
                raise RecoveryAbort("recovery started while waiting for control")
            envelope = yield from self._recv_one(check_state=check_state)
            self._route(envelope, arrival_order=False)

    # -- arrival-order style -----------------------------------------------------------

    def next_message(self) -> Generator[Event, Any, tuple]:
        """Next routed record in arrival order: ``("ctl", envelope)`` or
        ``("batch", queue)`` (whose entries are then popped from the
        queue's local buffer)."""
        while not self.pending_messages:
            envelope = yield from self._recv_one()
            self._route(envelope, arrival_order=True)
        return self.pending_messages.popleft()

    # -- sending control messages --------------------------------------------------------

    def send_ctl(
        self, dst_tid: int, kind: str, payload: Any, nbytes: int = 16
    ) -> Generator[Event, Any, None]:
        """Send one control message to unit ``dst_tid``."""
        envelope = ControlEnvelope(
            kind=kind,
            epoch=self._state.epoch,
            sender_tid=self.tid,
            payload=payload,
        )
        transport = self._transport
        dst = self._ctl_dst.get(dst_tid)
        if dst is None:
            dst = self._ctl_dst[dst_tid] = (
                self.system.core_of(dst_tid).index,
                ("inbox", dst_tid),
                self.system.inbox_of(dst_tid)
                if transport is None
                else transport.ingest_box(dst_tid),
            )
        payload_out = envelope
        if transport is not None:
            nbytes += transport.extra_bytes
            payload_out = transport.stamp(self.tid, dst_tid, envelope, nbytes)
        yield from self.system.mpi.send(
            self._core.index,
            dst[0],
            payload_out,
            nbytes,
            dst[1],
            self._mpi_variant,
            dst[2],
        )

    # -- recovery -----------------------------------------------------------------------

    def clear(self) -> int:
        """Drop all buffered envelopes (FLQ phase).  The inbox store
        itself is flushed by the recovery orchestrator."""
        dropped = len(self.pending_ctl) + len(self.pending_messages)
        self.pending_ctl.clear()
        self.pending_messages.clear()
        return dropped
