"""COA read replicas (extension of the paper's section 3.2 note).

The paper observes that the try-commit and commit units' algorithms are
parallelizable; in this runtime the measured hot spot is the commit
unit's Copy-On-Access service — every worker's first touch of shared
input data (parser's dictionary, bzip2's file buffer, alvinn's weights)
funnels through one NIC.

A :class:`CoaReplica` is an extra unit that serves COA requests for
pages in *declared read-only* allocations (``uva.malloc(read_only=True)``)
from a local cache, fetching each page from the commit unit once.
Because no committed write may ever touch a read-only page (the commit
unit enforces this), replica caches can never go stale, no invalidation
protocol is needed, and correctness is unconditional.  Requests for
mutable pages keep going to the commit unit.

Replicas hold no speculative state, so they do not participate in the
recovery barriers: they sleep through rollbacks and their caches stay
valid across them.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.messages import CTL_COA_REQUEST, CTL_COA_RESPONSE
from repro.errors import (
    ChannelFlushedError,
    NodeCrashed,
    ProcessInterrupt,
    RecoveryAbort,
)
from repro.memory import Page
from repro.sim import Event

__all__ = ["CoaReplica"]

#: Instructions to serve one request from the replica cache.
REPLICA_SERVICE_INSTRUCTIONS = 300


class CoaReplica:
    """A read-only COA cache unit."""

    def __init__(self, system: "DSMTXSystem", tid: int) -> None:  # noqa: F821
        self.system = system
        self.tid = tid
        self.core = system.core_of(tid)
        self.endpoint = system.endpoint_of_unit(tid)
        #: Cached read-only pages.
        self.cache: dict[int, Page] = {}
        #: Requests served from the cache (stats).
        self.hits = 0
        #: Pages fetched from the commit unit (stats).
        self.misses = 0

    def run(self) -> Generator[Event, Any, None]:
        system = self.system
        try:
            while not system.state.done:
                try:
                    request = yield from self.endpoint.wait_ctl(
                        CTL_COA_REQUEST, check_state=False
                    )
                    yield from self._serve(request.payload)
                except (ChannelFlushedError, RecoveryAbort):
                    # A rollback interrupted us; any in-flight requester
                    # has aborted its wait and will re-fault after the
                    # resume.
                    continue
        except ProcessInterrupt as interrupt:
            if isinstance(interrupt.cause, NodeCrashed):
                # Node crash under fault injection: requests re-route to
                # the surviving replicas (or the commit unit) after the
                # degraded-mode restart.
                return
            raise

    def _serve(self, payload) -> Generator[Event, Any, None]:
        page_no, requester_tid, _word_index = payload
        system = self.system
        self.core.charge_instructions(REPLICA_SERVICE_INSTRUCTIONS)
        page = self.cache.get(page_no)
        if page is None:
            page = yield from self._fetch_from_commit(page_no)
            self.cache[page_no] = page
            self.misses += 1
        else:
            self.hits += 1
        system.stats.coa_pages_served += 1
        system.stats.record_queue_bytes("coa", system.cluster.page_bytes)
        yield from self.endpoint.send_ctl(
            requester_tid,
            CTL_COA_RESPONSE,
            (page_no, None, page.snapshot()),
            nbytes=system.cluster.page_bytes,
        )

    def _fetch_from_commit(self, page_no: int) -> Generator[Event, Any, Page]:
        """Populate the cache: one page fetch from the commit unit.

        Requests arriving meanwhile buffer in this unit's inbox.  A
        rollback may destroy the request or the reply in flight (queue
        flushes, epoch fencing); the fetch then backs off until the
        system resumes and re-sends — read-only pages make the retry
        unconditionally safe.
        """
        system = self.system
        while True:
            while system.state.in_recovery:
                yield system.env.timeout(5e-6)  # back off through the rollback
            sent_epoch = system.state.epoch
            yield from self.endpoint.send_ctl(
                system.commit_tid, CTL_COA_REQUEST, (page_no, self.tid, None)
            )
            resend = False
            while not resend:
                try:
                    envelope = yield from self.endpoint.wait_ctl(
                        CTL_COA_RESPONSE, check_state=False
                    )
                except (ChannelFlushedError, RecoveryAbort):
                    resend = True
                    continue
                got_page_no, _index, page = envelope.payload
                if got_page_no == page_no:
                    return page
                if system.state.epoch != sent_epoch:
                    resend = True  # reply may have been fenced; try again

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CoaReplica tid={self.tid} cached={len(self.cache)}>"
