"""Message formats used inside the DSMTX runtime.

Two layers of framing exist:

* **Envelopes** travel through MPI into a unit's inbox: either a queue
  batch (many log/data entries amortizing one MPI call) or a control
  message (COA request/response, misspeculation, validation notice).
  Every envelope carries the sender's recovery *epoch*; stale envelopes
  that were in flight across a rollback are discarded on receipt.

* **Entries** are the individual records inside a batch: speculative
  writes ``(W, addr, value)``, speculative reads ``(R, addr, value)``
  for value-based validation, subTX end markers, and raw dataflow items
  produced through ``mtx_produce``.
"""

from __future__ import annotations

from typing import Any, NamedTuple

__all__ = [
    "WRITE",
    "READ",
    "WRITE_BLOCK",
    "READ_BLOCK",
    "END_SUBTX",
    "DATA",
    "VALIDATED",
    "REPL_FRONTIER",
    "REPL_CHECKPOINT",
    "CTL_COA_REQUEST",
    "CTL_COA_RESPONSE",
    "CTL_MISSPEC",
    "CTL_VALIDATED",
    "CTL_WORKER_DONE",
    "CTL_NODE_FAILED",
    "CTL_PROMOTE",
    "SF_REPL_ROUND",
    "SF_REPL_CHECKPOINT",
    "SF_STOP",
    "BatchEnvelope",
    "ControlEnvelope",
    "Frame",
    "Ack",
    "FRAME_HEADER_BYTES",
    "entry_bytes",
]

# -- batch entry kinds ---------------------------------------------------------

#: Speculative store: ("W", address, value).
WRITE = "W"
#: Speculative load observation: ("R", address, value_read).
READ = "R"
#: End-of-subTX marker: ("END", iteration, stage_index).
END_SUBTX = "END"
#: Dataflow item from mtx_produce: ("DATA", value).
DATA = "DATA"
#: Validation notice from the try-commit unit: ("VAL", iteration).
#: Batched on a queue rather than sent per MTX, so the commit unit's
#: receive overhead amortizes across many validations.
VALIDATED = "VAL"
#: Replication frontier marker on the commit -> standby stream:
#: ("RF", frontier).  Every committed write of iterations below
#: ``frontier`` precedes this marker on the stream, so the standby's
#: replay log is a consistent sequential prefix at each marker.
REPL_FRONTIER = "RF"
#: Replication checkpoint marker: ("RC", frontier).  The primary just
#: took an epoch checkpoint; the standby folds its replay log into its
#: base image (mirroring the checkpoint) and starts a fresh log.
REPL_CHECKPOINT = "RC"
#: Run-length speculative store: ("WB", address, (v0, v1, ...)) — the
#: batch form of N consecutive ``WRITE`` entries.  Wire size is N
#: address/value pairs (no compression is modeled); batching buys the
#: *runtime* amortized per-entry handling, exactly the paper's §4.2
#: argument, not fewer bytes.
WRITE_BLOCK = "WB"
#: Run-length load observation: ("RB", address, (v0, v1, ...)) — the
#: batch form of N consecutive ``READ`` entries for value-based
#: validation.
READ_BLOCK = "RB"

# -- control message kinds ------------------------------------------------------

#: Worker -> commit: fetch a committed page.  Payload: (page_no, tid).
CTL_COA_REQUEST = "coa_request"
#: Commit -> worker: page copy.  Payload: (page_no, Page snapshot).
CTL_COA_RESPONSE = "coa_response"
#: Any unit -> commit: misspeculation.  Payload: iteration.
CTL_MISSPEC = "misspec"
#: Try-commit -> commit: MTX validated.  Payload: iteration.
CTL_VALIDATED = "validated"
#: Worker -> commit: finished all assigned iterations.  Payload: tid.
CTL_WORKER_DONE = "worker_done"
#: Commit -> try-commit: a drain began (or its pause target dropped).
#: Payload: pause target iteration.  A wake-up ping: the try-commit
#: unit may be blocked consuming the access log of an iteration at or
#: past the pause target, whose worker misspeculated and will never
#: send it; the authoritative signal is ``SystemState.pause_target``.
CTL_DRAIN = "drain"
#: Failure detector -> commit: a node stopped heartbeating.  Payload:
#: node index.  Injected locally at the commit unit (the detector runs
#: on the commit node), so it is a wake-up ping, not wire traffic; the
#: authoritative signal is ``SystemState.failover_pending``.
CTL_NODE_FAILED = "node_failed"
#: Standby watcher -> commit standby: the primary's node died, promote.
#: Payload: node index.  Like ``CTL_NODE_FAILED``, a local wake-up ping
#: (watcher and standby share a node); the authoritative signal is
#: ``SystemState.promote_pending``.
CTL_PROMOTE = "promote"

# -- speculative_for fault-tolerant protocol kinds -------------------------------
# Shared between the round scheduler (repro.paradigms.specfor) and the
# reservation-service standby (repro.core.standby); defined here so the
# standby never imports the paradigm module (which imports the runtime
# that imports the standby).

#: Reservation service -> standby: one completed round.  Payload:
#: ("SFR", round-record tuple, committed delta entries, carried list,
#: table counters) — everything the standby's shadow of the primary's
#: scheduling state needs to advance one round.
SF_REPL_ROUND = "SFR"
#: Reservation service -> standby: epoch checkpoint marker ("SFC",
#: frontier).  The standby folds its replay log into its base image.
SF_REPL_CHECKPOINT = "SFC"
#: Reservation service -> worker/standby: the loop is done, exit.
SF_STOP = "sf_stop"


class BatchEnvelope(NamedTuple):
    """A queue batch delivered into a unit inbox."""

    queue_name: str
    epoch: int
    credit_id: int
    entries: tuple
    nbytes: int


class ControlEnvelope(NamedTuple):
    """A control message delivered into a unit inbox."""

    kind: str
    epoch: int
    sender_tid: int
    payload: Any


class Frame(NamedTuple):
    """Reliable-transport framing around an envelope (fault-tolerant
    mode only): a per-(src, dst) sequence number the receiver uses to
    deduplicate, reorder, and cumulatively acknowledge unit traffic.

    Under ``SystemConfig.integrity`` the sender also stamps a CRC32 of
    the payload's canonical encoding (:mod:`repro.core.integrity`);
    ``checksum == -1`` means unstamped (integrity off).
    """

    src_tid: int
    dst_tid: int
    seq: int
    payload: Any
    checksum: int = -1


class Ack(NamedTuple):
    """Cumulative acknowledgement: every frame with ``seq <= upto`` on
    the (src, dst) link has been ingested at the destination."""

    src_tid: int
    dst_tid: int
    upto: int


#: Extra wire bytes the reliable transport adds per framed envelope.
FRAME_HEADER_BYTES = 8

#: Wire size of one log entry: an (address, value) pair of words.
ENTRY_BYTES = 16
#: Wire size of a subTX end marker.
MARKER_BYTES = 8


def entry_bytes(entry: tuple) -> int:
    """Wire size of one batch entry.

    Write entries may carry an explicit size as a fourth element: a
    store standing for a bulk write-set (e.g. a compressed block in a
    TLS transaction) is shipped at its real volume.
    """
    kind = entry[0]
    if kind == END_SUBTX:
        return MARKER_BYTES
    if kind == WRITE and len(entry) > 3 and isinstance(entry[3], int):
        return entry[3]
    if kind == WRITE_BLOCK or kind == READ_BLOCK:
        return ENTRY_BYTES * len(entry[2])
    return ENTRY_BYTES
