"""The DSMTX library interface (paper Table 1).

This module exposes the paper's API surface by name, mapped onto the
object-oriented runtime underneath.  Programs parallelized against the
SMTX library run on DSMTX without modification (section 3.3); likewise,
code written against this facade is agnostic to the machinery behind
it.

Mapping notes
-------------
* ``DSMTX_Init``/``DSMTX_Finalize`` bracket a session, mirroring the
  required ``MPI_Init``/``MPI_Finalize`` calls of the MPI-based
  implementation.
* ``mtx_newDSMTXsystem(n, configuration)`` builds a system of ``n``
  threads for a pipeline configuration.
* ``mtx_spawn`` registers the function a worker tid executes — in this
  runtime, the per-stage bodies carried by the workload plan.
* The running operations (``mtx_begin``, ``mtx_end``, ``mtx_writeTo``,
  ``mtx_writeAll``, ``mtx_read``, ``mtx_produce``, ``mtx_consume``,
  ``mtx_misspec``) act on the executing worker's context, exactly as
  the C API acts on the calling thread.
* There are no custom ``malloc``/``free`` entries: DSMTX hooks the
  system allocator to implement UVA (section 4.1) — here,
  :meth:`dsmtx_malloc`/:meth:`dsmtx_free` stand in for those hooks.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.core.config import SystemConfig
from repro.core.context import MTXContext
from repro.core.runtime import DSMTXSystem, RunResult
from repro.errors import ConfigurationError

__all__ = [
    "DSMTX_Init",
    "DSMTX_Finalize",
    "mtx_newDSMTXsystem",
    "mtx_deleteDSMTXsystem",
    "mtx_spawn",
    "mtx_run",
    "mtx_begin",
    "mtx_end",
    "mtx_writeTo",
    "mtx_writeAll",
    "mtx_read",
    "mtx_produce",
    "mtx_consume",
    "mtx_misspec",
    "mtx_terminate",
    "dsmtx_malloc",
    "dsmtx_free",
]

_session_active = False


def DSMTX_Init(args: Optional[list] = None) -> None:
    """Initialize the DSMTX session (wraps ``MPI_Init`` + UVA setup)."""
    global _session_active
    if _session_active:
        raise ConfigurationError("DSMTX_Init called twice without Finalize")
    _session_active = True


def DSMTX_Finalize() -> None:
    """Tear down the DSMTX session (wraps ``MPI_Finalize``)."""
    global _session_active
    if not _session_active:
        raise ConfigurationError("DSMTX_Finalize without a matching Init")
    _session_active = False


def mtx_newDSMTXsystem(n: int, configuration: Any, workload: Any = None) -> DSMTXSystem:
    """Initialize a system of ``n`` threads with the given pipeline
    configuration; creates units, queues, and address spaces.

    ``configuration`` is a :class:`SystemConfig`, a
    :class:`PipelineConfig`, or a list of stage kinds.  ``workload`` is
    the parallel plan the system executes.
    """
    if not _session_active:
        raise ConfigurationError("call DSMTX_Init before creating a system")
    if workload is None:
        raise ConfigurationError("a workload plan is required")
    if isinstance(configuration, SystemConfig):
        config = configuration.with_cores(n)
    else:
        config = SystemConfig(total_cores=n)
    return DSMTXSystem(workload, config)


def mtx_deleteDSMTXsystem(system: DSMTXSystem) -> None:
    """Finalize a system; delete its data structures."""
    system._queues.clear()


def mtx_spawn(system: DSMTXSystem, function: Callable, tid: int, argument: Any = None) -> None:
    """Execute ``function`` on the worker whose thread id matches ``tid``.

    Unlike SMTX, DSMTX spawns all workers at program start (section
    4.1); this call only binds the function to the matching worker's
    stage slot.
    """
    for worker in system.workers:
        if worker.tid == tid:
            system._stage_bodies[worker.stage_index] = (
                function if argument is None else (lambda ctx: function(ctx, argument))
            )
            return
    raise ConfigurationError(f"no worker with tid {tid}")


def mtx_run(system: DSMTXSystem, iterations: Optional[int] = None) -> RunResult:
    """Run the parallel region to completion (spawns the worker,
    try-commit, and commit processes and drives the simulation)."""
    return system.run(iterations)


# -- running operations (act on the executing worker's context) --------------------


def mtx_begin(worker, iteration: int) -> Generator:
    """Enter an MTX: refresh memory with earlier subTXs' stores and
    notify the commit unit; returns the system state for polling."""
    yield from worker.mtx_begin(iteration)
    return worker.system.state


def mtx_end(worker, iteration: int) -> Generator:
    """Exit the current MTX, forwarding its stores to later stages and
    the validation/commit units; returns the system state."""
    yield from worker.mtx_end(iteration)
    return worker.system.state


def mtx_writeTo(context: MTXContext, stage: int, address: int, value: Any) -> Generator:
    """Forward an (addr, value) store to one specific later stage."""
    yield from context.store(address, value, forward=(stage,))


def mtx_writeAll(context: MTXContext, address: int, value: Any) -> Generator:
    """Forward an (addr, value) store to all later stages, the
    try-commit unit, and the commit unit."""
    yield from context.store(address, value, forward=True)


def mtx_read(context: MTXContext, address: int) -> Generator:
    """Speculative load: the (addr, value) observation is forwarded to
    the try-commit unit for value-based conflict checking."""
    value = yield from context.load(address, speculative=True)
    return value


def mtx_produce(context: MTXContext, queue: str, value: Any, nbytes: int = 16) -> Generator:
    """Enqueue ``value`` in the specified pipeline queue."""
    yield from context.produce(queue, value, nbytes=nbytes)


def mtx_consume(context: MTXContext, queue: str) -> Any:
    """Dequeue and return the next upstream value."""
    return context.consume(queue)


def mtx_misspec(context: MTXContext, reason: str = "") -> None:
    """Notify the commit unit of misspeculation (aborts the MTX)."""
    context.misspec(reason)


def mtx_terminate(system: DSMTXSystem) -> None:
    """Notify the commit unit of termination of the parallel section."""
    system.state.terminate()
    system.flush_all_inboxes()


def dsmtx_malloc(system: DSMTXSystem, tid: int, nbytes: int) -> int:
    """The hooked ``malloc``: allocate from the calling thread's UVA
    region (section 3.3)."""
    return system.uva.malloc(tid, nbytes)


def dsmtx_free(system: DSMTXSystem, address: int) -> None:
    """The hooked ``free``: owner recovered from the address bits."""
    system.uva.free(address)
