"""DSMTX system assembly and execution.

:class:`DSMTXSystem` wires one parallel run together: the simulated
cluster, the unit layout (stage workers, try-commit unit, commit unit),
their inboxes and queues, the shared recovery coordinator, and the
Unified Virtual Address space.  :meth:`DSMTXSystem.run` executes the
workload's parallel region to completion and returns a
:class:`RunResult` with the simulated duration and full statistics.

Unit thread ids (tids) are assigned stage-major: workers of stage 0
first, then stage 1, ..., then the try-commit unit, then the commit
unit.  Tids map to global core indices through the placement policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.cluster import MPI, Interconnect, Machine, place_units
from repro.core.commit import CommitUnit
from repro.core.replica import CoaReplica
from repro.core.config import PipelineConfig, SystemConfig
from repro.core.endpoint import Endpoint
from repro.core.failure import FailureDetector
from repro.core.queues import RuntimeQueue
from repro.core.recovery import RecoveryCoordinator
from repro.core.standby import StandbyUnit
from repro.core.state import SystemState
from repro.core.stats import RunStats
from repro.core.transport import ReliableTransport
from repro.core.try_commit import TryCommitUnit
from repro.core.worker import Worker
from repro.errors import ClusterFailedError, ConfigurationError
from repro.memory import UnifiedVirtualAddressSpace
from repro.sim import Environment

__all__ = ["DSMTXSystem", "RunResult", "place_standby"]


def place_standby(
    cluster, core_indices: list, commit_tid: int, standby_tid: int,
    wanted: Optional[int],
) -> None:
    """Put a hot standby on a node other than its primary's.

    A standby sharing the primary's node is useless — the one crash it
    exists to survive would take both.  The standby keeps the seat the
    placement policy gave it when that seat is already off the commit
    node (spread placement typically arranges this); otherwise it
    deterministically moves to the first free core on the
    lowest-numbered other node, preferring nodes that host no unit at
    all (a pure survivor).  ``wanted`` (``SystemConfig.standby_node``)
    overrides the choice.  Mutates ``core_indices`` in place.  Shared
    by the DSMTX commit standby and the specfor reservation-service
    standby.
    """
    tid = standby_tid
    commit_node = cluster.node_of_core(core_indices[commit_tid])
    used = {
        index
        for other_tid, index in enumerate(core_indices)
        if other_tid != tid
    }

    def free_core_on(node: int) -> Optional[int]:
        base = node * cluster.cores_per_node
        for core in range(base, base + cluster.cores_per_node):
            if core not in used:
                return core
        return None

    if wanted is not None:
        if wanted == commit_node:
            raise ConfigurationError(
                f"standby_node={wanted} is the commit unit's node; the "
                f"standby must live on a different node to survive it"
            )
        core = free_core_on(wanted)
        if core is None:
            raise ConfigurationError(
                f"standby_node={wanted} has no free core for the standby"
            )
        core_indices[tid] = core
        return
    natural_node = cluster.node_of_core(core_indices[tid])
    if natural_node != commit_node:
        return
    occupied = {cluster.node_of_core(index) for index in used}
    candidates = sorted(
        range(cluster.nodes),
        key=lambda node: (node in occupied, node),
    )
    for node in candidates:
        if node == commit_node:
            continue
        core = free_core_on(node)
        if core is not None:
            core_indices[tid] = core
            return
    raise ConfigurationError(
        "no free core outside the commit unit's node for the standby; "
        "commit_replication needs at least two nodes with capacity"
    )


@dataclass
class RunResult:
    """Outcome of one parallel run."""

    #: Simulated wall-clock duration of the parallel region (seconds).
    elapsed_seconds: float
    #: Full runtime statistics.
    stats: RunStats
    #: Iterations executed (committed MTXs, including SEQ re-executions).
    iterations: int
    #: Total cores the run used (workers + try-commit + commit).
    total_cores: int

    def speedup_over(self, sequential_seconds: float) -> float:
        """Speedup against a sequential execution time."""
        if self.elapsed_seconds <= 0:
            raise ConfigurationError("run has no elapsed time")
        return sequential_seconds / self.elapsed_seconds


class DSMTXSystem:
    """One configured DSMTX runtime instance."""

    def __init__(self, workload: Any, config: SystemConfig) -> None:
        self.workload = workload
        self.config = config
        self.cluster = config.cluster
        self.env = Environment()
        self.machine = Machine(self.env, self.cluster)
        self.interconnect = Interconnect(self.env, self.machine)
        self.mpi = MPI(self.env, self.machine, self.interconnect)
        self.state = SystemState()
        self.stats = RunStats()
        #: Observability hub (:func:`repro.obs.instrument` attaches one);
        #: every runtime hook site no-ops while this is ``None``.
        self.obs = None

        pipeline: PipelineConfig = workload.pipeline()
        self.pipeline = pipeline
        self.replicas = pipeline.allocate(
            config.total_cores, reserved_units=config.reserved_units
        )
        self.num_workers = sum(self.replicas)
        self.trycommit_tid = self.num_workers
        self.commit_tid = self.num_workers + 1
        #: Tids of the COA read replicas (empty unless configured).
        self.replica_tids = [
            self.num_workers + 2 + index for index in range(config.coa_replicas)
        ]
        #: Replicas still alive (node failures remove entries).
        self.live_replica_tids = list(self.replica_tids)
        #: Tid of the commit-unit hot standby; ``None`` unless
        #: ``commit_replication`` is on.  Assigned last so the worker /
        #: try-commit / commit / COA-replica layout is unchanged.
        self.standby_tid = (
            self.num_workers + 2 + config.coa_replicas
            if config.commit_replication
            else None
        )
        self.num_units = self.num_workers + 2 + config.coa_replicas + (
            1 if config.commit_replication else 0
        )
        #: First worker tid of each stage.
        self.stage_base_tid: list[int] = []
        base = 0
        for count in self.replicas:
            self.stage_base_tid.append(base)
            base += count
        #: Live worker tids per stage.  Identical to the static layout
        #: until a node failure; degraded-mode restart removes the dead
        #: tids and survivors re-partition the iteration space over
        #: these lists (relative to the new restart base).
        self.live_by_stage: list[list[int]] = [
            list(range(b, b + count))
            for b, count in zip(self.stage_base_tid, self.replicas)
        ]
        #: Units lost to node failures so far.
        self.dead_tids: set[int] = set()

        self._core_indices = place_units(self.cluster, self.num_units, config.placement)
        if self.standby_tid is not None:
            self._place_standby()
        #: Reliable ack/retransmit transport; ``None`` keeps the
        #: fault-free fast path untouched (a single is-None check).
        self.transport = ReliableTransport(self) if config.fault_tolerance else None
        self._endpoints = [Endpoint(self, tid) for tid in range(self.num_units)]
        self.uva = UnifiedVirtualAddressSpace(owners=self.num_units)

        #: Runtime queues by name (created before the units: the commit
        #: unit opens its replication stream at construction time).
        self._queues: dict[str, RuntimeQueue] = {}

        self.workers: list[Worker] = []
        for stage_index, count in enumerate(self.replicas):
            for replica in range(count):
                tid = self.stage_base_tid[stage_index] + replica
                self.workers.append(Worker(self, tid, stage_index, replica))
        self.try_commit = TryCommitUnit(self, self.trycommit_tid)
        self.commit = CommitUnit(self, self.commit_tid)
        self.coa_replicas = [CoaReplica(self, tid) for tid in self.replica_tids]
        #: Commit-unit hot standby; ``None`` without commit replication.
        self.standby = (
            StandbyUnit(self, self.standby_tid)
            if self.standby_tid is not None
            else None
        )
        # Replicas and the standby hold no speculative state: they are
        # not barrier parties (the standby joins the barriers only once
        # promoted, substituting for the dead primary).
        self.recovery = RecoveryCoordinator(self, parties=self.num_workers + 2)

        #: Heartbeat failure detection; ``None`` outside fault-tolerant
        #: mode.  Started by :meth:`run` once unit processes exist.
        self.failure_detector = (
            FailureDetector(self) if config.fault_tolerance else None
        )
        #: Simulation processes hosted on each node (unit main loops,
        #: heartbeat emitters): the kill set of a node-crash fault.
        self._node_processes: dict[int, list] = {}

        self.total_iterations = 0
        self._stage_bodies: dict[int, Callable] = {}

    def _place_standby(self) -> None:
        """Seat the commit standby (see :func:`place_standby`)."""
        place_standby(
            self.cluster, self._core_indices, self.commit_tid,
            self.standby_tid, self.config.standby_node,
        )

    # -- layout queries ---------------------------------------------------------------------

    @property
    def num_stages(self) -> int:
        return self.pipeline.num_stages

    def replicas_of_stage(self, stage_index: int) -> int:
        return self.replicas[stage_index]

    def worker_tid_for(self, stage_index: int, iteration: int) -> int:
        """Tid of the worker executing ``iteration``'s subTX of a stage.

        Round-robin over the stage's *live* replicas, relative to the
        current epoch's restart base, so the mapping stays consistent
        across rollbacks and re-partitions itself after a node failure
        (every failover bumps the epoch and resets the base).
        """
        live = self.live_by_stage[stage_index]
        return live[(iteration - self.state.restart_base) % len(live)]

    def core_of(self, tid: int):
        return self.machine.core(self._core_indices[tid])

    def endpoint_of_unit(self, tid: int) -> Endpoint:
        return self._endpoints[tid]

    def coa_target_tid(self, page_no: int, requester_tid: int) -> int:
        """Unit that serves a COA request for ``page_no``.

        Read-only pages may be served by a replica (sharded by the
        requester so each worker sticks to one cache); everything else
        goes to the commit unit, the owner of mutable committed state.
        """
        live = self.live_replica_tids
        if live and self.uva.page_is_read_only(page_no):
            return live[requester_tid % len(live)]
        return self.commit_tid

    def inbox_of(self, tid: int):
        return self._endpoints[tid].inbox

    # -- queues -----------------------------------------------------------------------------

    def _queue(self, name: str, purpose: str, src_tid: int, dst_tid: int,
               flush_each_subtx: bool, durable: bool = False) -> RuntimeQueue:
        queue = self._queues.get(name)
        if queue is None:
            queue = RuntimeQueue(
                self, name, purpose, src_tid, dst_tid, flush_each_subtx,
                durable=durable,
            )
            self._queues[name] = queue
        return queue

    def forward_queue(self, src_tid: int, dst_tid: int) -> RuntimeQueue:
        """Uncommitted-value-forwarding queue between two workers."""
        return self._queue(
            f"fw:{src_tid}>{dst_tid}", "forward", src_tid, dst_tid, flush_each_subtx=True
        )

    def tclog_queue(self, worker_tid: int) -> RuntimeQueue:
        """Access-log stream from a worker to the try-commit unit."""
        return self._queue(
            f"tclog:{worker_tid}", "log", worker_tid, self.trycommit_tid,
            flush_each_subtx=False,
        )

    def clog_queue(self, worker_tid: int) -> RuntimeQueue:
        """Write-log stream from a worker to the commit unit."""
        return self._queue(
            f"clog:{worker_tid}", "log", worker_tid, self.commit_tid,
            flush_each_subtx=False,
        )

    def validated_queue(self) -> RuntimeQueue:
        """Validation-notice stream from try-commit to commit."""
        return self._queue(
            "validated", "log", self.trycommit_tid, self.commit_tid,
            flush_each_subtx=False,
        )

    def sync_queue(self, label: str, src_tid: int, dst_tid: int) -> RuntimeQueue:
        """TLS synchronized-dependence queue (flushed per value)."""
        return self._queue(
            f"sync:{label}:{src_tid}>{dst_tid}", "sync", src_tid, dst_tid,
            flush_each_subtx=True,
        )

    def repl_queue(self) -> RuntimeQueue:
        """Commit-to-standby replication stream (commit replication).

        Durable: it carries *committed* state, so epoch fences and FLQ
        flushes must never drop its batches.
        """
        return self._queue(
            "repl", "repl", self.commit_tid, self.standby_tid,
            flush_each_subtx=False, durable=True,
        )

    def queue_by_name(self, name: str) -> RuntimeQueue:
        return self._queues[name]

    def all_queues(self):
        return self._queues.values()

    def flush_all_inboxes(self) -> None:
        """Flush every unit inbox, waking blocked receivers (recovery
        kick-off and termination).

        The standby's inbox is exempt until termination: it may hold
        replication batches of *committed* state, which a speculative
        rollback must not destroy.  At termination the flush goes
        through — it is exactly what wakes a blocked standby so it can
        observe ``state.done`` and exit.
        """
        skip = self.standby_tid if not self.state.done else None
        for tid, endpoint in enumerate(self._endpoints):
            if tid == skip:
                continue
            endpoint.inbox.flush()

    # -- node failure -----------------------------------------------------------------------

    def register_node_process(self, node: int, process) -> None:
        """Track a simulation process as hosted on ``node`` so a
        node-crash fault kills it along with the node."""
        self._node_processes.setdefault(node, []).append(process)

    def processes_on_node(self, node: int) -> list:
        """Every registered simulation process hosted on ``node``."""
        return list(self._node_processes.get(node, ()))

    def apply_node_failure(self, node: int, dead_tids) -> None:
        """Re-partition onto the survivors (degraded-mode restart).

        Removes the dead tids from the live scheduling lists.  A stage
        whose every replica died is unrecoverable — the lost subTX logs
        cannot be regenerated by anyone — as is (checked earlier, at
        declaration) the loss of the commit or try-commit unit.
        """
        self.dead_tids.update(dead_tids)
        for stage_index, live in enumerate(self.live_by_stage):
            survivors = [tid for tid in live if tid not in self.dead_tids]
            if not survivors:
                raise ClusterFailedError(
                    f"node {node} took stage {stage_index}'s last worker "
                    f"replica; the pipeline cannot be re-partitioned"
                )
            self.live_by_stage[stage_index] = survivors
        self.live_replica_tids = [
            tid for tid in self.live_replica_tids if tid not in self.dead_tids
        ]
        if self.transport is not None:
            self.transport.forget_units(dead_tids)

    def promote_standby(self, standby) -> CommitUnit:
        """Swap the promoted standby in as the system's commit unit.

        Called by :meth:`StandbyUnit._promote` after the replay: builds
        a fresh :class:`CommitUnit` over the standby's replayed image
        with its frontier, retires the replication stream, swaps the
        layout, and redirects every queue that fed the dead primary
        (worker write logs, the validation-notice stream) to the new
        unit.  Control traffic (COA requests, misspeculation notices)
        follows ``self.commit_tid`` and needs no redirection.  Returns
        the new unit; the caller drives its run loop.
        """
        old_tid = self.commit_tid
        old_commit = self.commit
        frontier = standby.frontier
        #: Iterations the dead primary committed past the replicated
        #: frontier: lost with its master memory, re-executed by the
        #: survivors — so their first count is backed out here.
        recommitted = max(0, old_commit.next_commit - frontier)
        repl = self._queues.get("repl")
        if repl is not None:
            repl.retire()
        # Construct *before* the layout swap: with tid != commit_tid the
        # new unit does not open a replication stream to itself (a
        # promoted unit runs without a second standby).
        unit = CommitUnit(self, standby.tid)
        unit.master = standby.image
        unit.next_commit = frontier
        unit._last_checkpoint_iteration = frontier
        unit._recommitted = recommitted
        self.commit = unit
        self.commit_tid = standby.tid
        for queue in self._queues.values():
            if queue.dst_tid == old_tid and not queue.retired:
                queue.redirect(standby.tid)
        self.stats.committed_mtxs -= recommitted
        return unit

    # -- workload access ---------------------------------------------------------------------

    def workload_stage_body(self, stage_index: int) -> Callable:
        body = self._stage_bodies.get(stage_index)
        if body is None:
            body = self.workload.stage_body(stage_index)
            self._stage_bodies[stage_index] = body
        return body

    def workload_sequential_body(self) -> Callable:
        return self.workload.sequential_body

    # -- execution --------------------------------------------------------------------------------

    def utilization(self) -> dict:
        """Busy fraction of every unit's core over the run so far.

        Keys are human-readable unit labels; values are busy-cycles
        divided by elapsed cycles.  Useful for spotting the bottleneck
        unit (e.g. a saturated sequential stage or the commit unit's
        COA service).
        """
        elapsed = self.env.now
        if elapsed <= 0:
            return {}
        clock = self.cluster.clock_hz

        def fraction(tid: int) -> float:
            return self.core_of(tid).busy_cycles / (elapsed * clock)

        report = {}
        for worker in self.workers:
            label = f"worker[{worker.stage_index}.{worker.replica}]"
            report[label] = fraction(worker.tid)
        report["try-commit"] = fraction(self.trycommit_tid)
        report["commit"] = fraction(self.commit_tid)
        for index, tid in enumerate(self.replica_tids):
            report[f"coa-replica[{index}]"] = fraction(tid)
        if self.standby_tid is not None:
            report["commit-standby"] = fraction(self.standby_tid)
        return report

    def stage_utilization(self) -> dict:
        """Mean busy fraction per pipeline stage plus the units."""
        per_unit = self.utilization()
        if not per_unit:
            return {}
        summary: dict = {}
        for stage_index in range(self.num_stages):
            fractions = [
                per_unit[f"worker[{stage_index}.{replica}]"]
                for replica in range(self.replicas[stage_index])
            ]
            summary[f"stage{stage_index}"] = sum(fractions) / len(fractions)
        summary["try-commit"] = per_unit["try-commit"]
        summary["commit"] = per_unit["commit"]
        return summary

    def _spawn_unit(self, tid: int, generator, label: str):
        """Start one unit's main process, registered to its host node."""
        process = self.env.process(generator, name=label)
        self.register_node_process(
            self.cluster.node_of_core(self._core_indices[tid]), process
        )
        return process

    def _scrub_process(self):
        """Periodic page-digest audit of committed memory.

        Re-reads ``self.commit`` every sweep so the scrubber follows a
        standby promotion, and sits out sweeps while the commit unit's
        node is dead (the promotion races the detector) or a recovery
        is rolling master forward (SEQ writes words across many yield
        points; auditing half-applied state would read legitimate
        re-execution as corruption)."""
        from repro.core.state import RunMode

        interval = self.config.scrub_interval_s
        while not self.state.done:
            yield self.env.timeout(interval)
            if self.state.done:
                return
            if self.state.mode != RunMode.RUN:
                continue
            commit = self.commit
            if commit.tid in self.dead_tids:
                continue
            commit.scrub_once()

    def run(self, iterations: Optional[int] = None) -> RunResult:
        """Execute the workload's parallel region to completion."""
        self.total_iterations = (
            iterations if iterations is not None else self.workload.iterations
        )
        if self.total_iterations < 1:
            raise ConfigurationError("need at least one iteration")
        self.workload.setup(self)
        if self.standby is not None:
            # The initial image is the epoch-0 checkpoint: the standby
            # starts from the same program state as the primary.
            self.standby.seed_image(self.commit.master)
        start = self.env.now
        processes = [
            self._spawn_unit(
                worker.tid, worker.run(),
                f"worker[{worker.stage_index}.{worker.replica}]",
            )
            for worker in self.workers
        ]
        processes.append(
            self._spawn_unit(self.trycommit_tid, self.try_commit.run(), "try-commit")
        )
        processes.append(
            self._spawn_unit(self.commit_tid, self.commit.run(), "commit")
        )
        processes.extend(
            self._spawn_unit(replica.tid, replica.run(), f"coa-replica[{index}]")
            for index, replica in enumerate(self.coa_replicas)
        )
        if self.standby is not None:
            processes.append(
                self._spawn_unit(
                    self.standby_tid, self.standby.run(), "commit-standby"
                )
            )
        if self.failure_detector is not None:
            self.failure_detector.start()
        if self.config.integrity:
            # Auxiliary process (not in the completion set): abandoned
            # when the run's own processes finish.
            self.env.process(self._scrub_process(), name="scrubber")
        if self.env.chaos is not None:
            self.env.chaos.bind_system(self)
        self.env.run(until=self.env.all_of(processes))
        elapsed = self.env.now - start
        self.stats.elapsed_seconds = elapsed
        return RunResult(
            elapsed_seconds=elapsed,
            stats=self.stats,
            iterations=self.stats.committed_mtxs,
            total_cores=self.config.total_cores,
        )
