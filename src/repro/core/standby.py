"""Hot-standby replica of the commit unit (commit replication).

DSMTX centralizes all non-speculative program state in the commit unit,
which makes its node the one failure the fault-tolerant runtime cannot
otherwise survive.  With ``SystemConfig.commit_replication`` on, a
:class:`StandbyUnit` runs on a node other than the primary's and is kept
current by two mechanisms, both priced on the simulated wire through the
reliable transport:

* **streaming replication** — after every group-commit round (and every
  SEQ re-execution) the primary streams the committed writes followed by
  a ``REPL_FRONTIER`` marker down a *durable* runtime queue.  The
  standby accumulates them in a replay log; at each marker the log is a
  consistent sequential prefix of master memory.
* **checkpoint mirroring** — when the primary takes an epoch checkpoint
  it appends a ``REPL_CHECKPOINT`` marker; the standby folds its replay
  log into its base image, so the image tracks the primary's checkpoints
  and the replay log stays short (promotion replay cost is bounded by
  the checkpoint interval).

The stream is durable because it carries *committed* state: epoch fences
and FLQ flushes — which exist to destroy speculative state — must never
touch it, and the standby is exempt from recovery barriers and inbox
flushes for the same reason.

When the standby-side watcher (:mod:`repro.core.failure`) declares the
primary's node dead, the standby discards any half-replicated round,
replays the log onto its checkpoint image, and is promoted: it becomes
the system's commit unit (:meth:`DSMTXSystem.promote_standby` swaps the
layout, redirects the write-log and validation queues, and substitutes
the barrier party), then drives the ordinary degraded-mode restart from
the last replicated frontier.  Iterations the primary committed past
that frontier died with its master memory and are re-executed by the
survivors — deterministically, so the final committed memory is byte-
identical to the fault-free run.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.messages import (
    REPL_CHECKPOINT,
    REPL_FRONTIER,
    SF_REPL_CHECKPOINT,
    SF_REPL_ROUND,
    SF_STOP,
    WRITE,
    WRITE_BLOCK,
    ControlEnvelope,
)
from repro.core.reservations import (
    ReservationStats,
    RoundRecord,
    next_round_size,
)
from repro.core.stats import FailureRecord
from repro.errors import (
    ChannelFlushedError,
    ClusterFailedError,
    NodeCrashed,
    ProcessInterrupt,
    RecoveryAbort,
)
from repro.memory import AddressSpace
from repro.obs.tracer import CAT_FT_PROMOTION, CAT_FT_REPLICATION, PID_RUNTIME
from repro.sim import Event

__all__ = ["StandbyUnit", "ReservationStandby"]


class StandbyUnit:
    """Commit-unit hot standby: replication sink, promotion candidate."""

    def __init__(self, system: "DSMTXSystem", tid: int) -> None:  # noqa: F821
        self.system = system
        self.tid = tid
        self.core = system.core_of(tid)
        self.endpoint = system.endpoint_of_unit(tid)
        #: Base image: master memory as of the last mirrored checkpoint.
        self.image = AddressSpace(f"standby{tid}", faulting=False)
        #: Committed writes since the last checkpoint fold, complete up
        #: to :attr:`frontier` (replayed onto the image at promotion).
        self.replay_log: list[tuple[int, int]] = []
        #: Writes of the round in progress (no frontier marker yet);
        #: discarded at promotion — a half-replicated round is not
        #: known-consistent, its iterations are simply re-executed.
        self._round: list[tuple[int, int]] = []
        #: Last replicated commit frontier: image + replay log hold
        #: exactly the committed effects of iterations below this.
        self.frontier = 0
        #: True once this unit has been promoted to commit unit.
        self.promoted = False
        #: Integrity mode: verify every fold's result against the
        #: primary's checkpoint digest.
        self._integrity = system.config.integrity
        #: Sticky corruption flag: a fold whose folded image failed its
        #: digest check.  Promotion *refuses* a corrupted image; a later
        #: fold that verifies clean (the corrupt word was overwritten by
        #: replayed writes) clears it and counts a repair.
        self.image_corrupt = False
        #: Digest of the image at the last *clean* fold.
        self._verified_digest = None

    def seed_image(self, master: AddressSpace) -> None:
        """Bootstrap the base image from the initial master memory.

        The workload's sequential prologue writes program state into the
        primary's master before the parallel region starts; that initial
        image is the epoch-0 checkpoint, distributed with the program
        (process launch, not the simulated wire).  Without it a promoted
        standby would resurrect an empty heap and every committed result
        derived from the initial data would be wrong.
        """
        self.image.apply_blocks(master.extract_blocks())

    # -- main process ------------------------------------------------------------------

    def run(self) -> Generator[Event, Any, None]:
        system = self.system
        state = system.state
        endpoint = self.endpoint
        try:
            while True:
                if state.promote_pending is not None:
                    yield from self._promote(state.promote_pending)
                    return
                if endpoint.pending_messages:
                    kind, item = endpoint.pending_messages.popleft()
                    if kind == "batch":
                        yield from self._drain_repl(item)
                    # "ctl" records are wake-up pings (CTL_PROMOTE); the
                    # authoritative signal is state.promote_pending.
                    continue
                if state.done:
                    return
                try:
                    envelope = yield from endpoint._recv_one(check_state=False)
                except (ChannelFlushedError, RecoveryAbort):
                    # Termination flush (recovery flushes skip us).
                    continue
                endpoint._route(envelope, arrival_order=True)
        except ProcessInterrupt as interrupt:
            if isinstance(interrupt.cause, NodeCrashed):
                # The standby's own node died; the primary notices via
                # the ordinary declaration path and stops streaming.
                return
            raise

    # -- replication sink --------------------------------------------------------------

    def _drain_repl(self, queue) -> Generator[Event, Any, None]:
        """Ingest newly delivered replication entries."""
        system = self.system
        op_instructions = system.cluster.queue_op_instructions
        delivered = queue.delivered
        words = 0
        while delivered:
            entry = delivered.popleft()
            kind = entry[0]
            if kind == WRITE:
                self._round.append((entry[1], entry[2]))
                words += 1
            elif kind == WRITE_BLOCK:
                # Expand a run-length record into per-word replay pairs:
                # the replay log, folds, and promotion stay word-ordered.
                base = entry[1]
                values = entry[2]
                self._round.extend(
                    (base + (offset << 3), value)
                    for offset, value in enumerate(values)
                )
                words += len(values)
            elif kind == REPL_FRONTIER:
                self.replay_log.extend(self._round)
                self._round = []
                self.frontier = entry[1]
            elif kind == REPL_CHECKPOINT:
                # A 3rd element is the primary's master digest at the
                # checkpoint (integrity mode).
                self._fold(entry[1], entry[2] if len(entry) > 2 else None)
            self.core.charge_instructions(op_instructions)
        if words:
            system.stats.ft_repl_words += words
            obs = system.obs
            if obs is not None:
                obs.metrics.counter("ft.repl_words").inc(words)
        yield from self.core.drain()

    def _fold(self, frontier: int, digest=None) -> None:
        """Checkpoint marker: fold the replay log into the base image
        (the standby-side mirror of the primary's epoch checkpoint).

        In integrity mode the marker carries the primary's master
        digest; after the fold, image and master hold the same
        committed prefix, so any mismatch means the image (or the
        stream) was silently corrupted — the image is flagged and a
        promotion will refuse it."""
        system = self.system
        words = len(self.replay_log)
        if words:
            self.image.apply_writes(self.replay_log)
            self.replay_log = []
            self.core.charge_instructions(
                words * system.config.checkpoint_word_instructions
            )
            system.stats.ft_repl_folded_words += words
        if digest is not None:
            self._verify_image(digest, frontier)
        if not words:
            return
        obs = system.obs
        if obs is not None:
            obs.tracer.instant(
                CAT_FT_REPLICATION, f"fold:{frontier}", PID_RUNTIME, self.tid,
                frontier=frontier, words=words,
            )
            obs.metrics.counter("ft.repl_folds").inc()

    def _verify_image(self, digest: int, frontier: int) -> None:
        """Compare the folded image against the primary's checkpoint
        digest; flag (or heal) the sticky corruption state."""
        from repro.core.integrity import space_digest

        system = self.system
        stats = system.stats
        actual = space_digest(self.image)
        self.core.charge_instructions(
            sum(page.word_count for page in self.image.iter_pages())
            * system.config.checkpoint_word_instructions
        )
        obs = system.obs
        if actual == digest:
            self._verified_digest = digest
            if self.image_corrupt:
                # The corrupted words were overwritten by replayed
                # committed writes: the image verifies clean again.
                self.image_corrupt = False
                stats.ft_corruptions_repaired += 1
                if obs is not None:
                    obs.metrics.counter("integrity.image_healed").inc()
            return
        if not self.image_corrupt:
            self.image_corrupt = True
            stats.ft_corruptions_detected += 1
            if obs is not None:
                from repro.obs.tracer import CAT_INTEGRITY

                obs.tracer.instant(
                    CAT_INTEGRITY, "checkpoint_digest_mismatch",
                    PID_RUNTIME, self.tid, frontier=frontier,
                )
                obs.metrics.counter("integrity.image_corrupt").inc()

    # -- promotion ---------------------------------------------------------------------

    def _promote(self, request) -> Generator[Event, Any, None]:
        """Become the commit unit: replay the log onto the checkpoint
        image, take over the primary's seat, then drive the ordinary
        degraded-mode restart from the replicated frontier."""
        system = self.system
        env = system.env
        config = system.config
        node, _dead_tids, detected_at, _last_heard_at = request
        system.state.promote_pending = None
        if self._integrity:
            # With nothing left to replay, the fold-verified image is
            # promoted verbatim: re-check its digest to catch corruption
            # that landed *after* the last fold.  (A nonempty log has no
            # reference digest at this frontier; the sticky fold-time
            # flag is the authority there.)
            if not self.replay_log and self._verified_digest is not None:
                from repro.core.integrity import space_digest

                if space_digest(self.image) != self._verified_digest:
                    self.image_corrupt = True
                    system.stats.ft_corruptions_detected += 1
            if self.image_corrupt:
                stats = system.stats
                stats.ft_corruptions_unrepairable += 1
                stats.failures.append(
                    FailureRecord(
                        node=node,
                        dead_tids=tuple(_dead_tids),
                        last_heard_at=_last_heard_at,
                        detected_at=detected_at,
                        resumed_at=env.now,
                        promoted_tid=self.tid,
                        corrupt_image=True,
                    )
                )
                obs = system.obs
                if obs is not None:
                    from repro.obs.tracer import CAT_INTEGRITY

                    obs.tracer.instant(
                        CAT_INTEGRITY, "promotion_refused", PID_RUNTIME,
                        self.tid, node=node, frontier=self.frontier,
                    )
                    obs.metrics.counter("integrity.promotions_refused").inc()
                raise ClusterFailedError(
                    f"standby tid {self.tid} refuses promotion: its "
                    f"checkpoint image failed the digest check (silent "
                    f"corruption with no clean copy to repair from)"
                )
        # A half-replicated round is not known-consistent; its
        # iterations are at or past the frontier and re-execute anyway.
        self._round = []
        replayed = len(self.replay_log)
        if self.replay_log:
            self.image.apply_writes(self.replay_log)
            self.replay_log = []
        self.core.charge_instructions(
            config.checkpoint_base_instructions
            + replayed * config.commit_instructions
        )
        yield from self.core.drain()
        self.promoted = True
        commit = system.promote_standby(self)
        promotion_seconds = env.now - detected_at
        commit._promotion = (
            self.tid, promotion_seconds, replayed, commit._recommitted
        )
        stats = system.stats
        stats.ft_promotions += 1
        stats.ft_replayed_words += replayed
        obs = system.obs
        if obs is not None:
            obs.tracer.complete(
                CAT_FT_PROMOTION, f"promote:node{node}", PID_RUNTIME, self.tid,
                detected_at, replayed_words=replayed,
                frontier=self.frontier, recommitted=commit._recommitted,
            )
            obs.metrics.counter("ft.promotions").inc()
            obs.metrics.counter("ft.replayed_words").inc(replayed)
        # From here on this process *is* the commit unit; its first act
        # is popping the failover request queued by the watcher and
        # running the degraded-mode restart with the survivors.
        yield from commit.run()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<StandbyUnit tid={self.tid} frontier={self.frontier} "
            f"log={len(self.replay_log)}>"
        )


class ReservationStandby:
    """Hot standby of the ``speculative_for`` reservation service.

    The reservation service owns the committed image, the ``write_min``
    table, and the round scheduler's state — all of it a single point of
    failure without replication.  The primary streams one
    ``SF_REPL_ROUND`` record per completed round (the round record, the
    committed delta, the carried list, and the table counters); because
    every scheduling decision — batch prefix, round size, carry order —
    is a pure function of that per-round state, the standby can *shadow*
    the scheduler exactly: it maintains its own pending queue, round
    size, stats, and table counters one replicated round at a time, and
    folds the delta stream into a base image on ``SF_REPL_CHECKPOINT``
    markers (mirroring the primary's epoch checkpoints, which bound the
    promotion replay).

    At promotion the standby replays the log tail onto its checkpoint
    image, resumes a round engine at its shadow of the scheduling state,
    and runs the service loop itself, re-broadcasting the full image so
    workers rebuild their snapshots.  Rounds the primary completed past
    the replicated frontier died with its memory and simply re-execute —
    deterministically, so winners, stats, and the committed image stay
    byte-identical to the fault-free run.
    """

    def __init__(self, system: "SpecForSystem", tid: int) -> None:  # noqa: F821
        self.system = system
        self.tid = tid
        self.core = system.core_of(tid)
        #: Base image: committed master as of the last mirrored checkpoint.
        self.image = AddressSpace(f"sf.standby{tid}", faulting=False)
        #: Committed round deltas since the last checkpoint fold,
        #: replayed onto the image at promotion.
        self.replay_log: list[tuple[int, int]] = []
        #: Completed rounds replicated so far == committed iterations at
        #: the shadow's frontier.
        self.frontier = 0
        #: Shadow of the primary's :class:`ReservationStats` (rounds up
        #: to the replicated frontier; becomes the promoted service's
        #: stats object).
        self.shadow_stats = ReservationStats()
        iterations = system.workload.iterations
        #: Shadow of the scheduler state (mirrors ``_RoundEngine``).
        self.max_round = iterations // system.granularity + 1
        self.shadow_pending: list[int] = list(range(iterations))
        self.shadow_size = max(1, self.max_round // 2)
        self.shadow_round_index = 0
        #: Shadow of the reservation-table counters at the frontier.
        self.table_counters: tuple[int, int] = (0, 0)
        #: True once this unit has been promoted to reservation service.
        self.promoted = False

    def seed_image(self, master: AddressSpace) -> None:
        """Bootstrap the base image from the built program state (the
        epoch-0 checkpoint, distributed with the program launch)."""
        self.image.apply_blocks(master.extract_blocks())

    # -- main process ------------------------------------------------------------------

    def run(self) -> Generator[Event, Any, None]:
        system = self.system
        state = system.state
        try:
            while True:
                if state.promote_pending is not None:
                    yield from self._promote(state.promote_pending)
                    return
                if state.done:
                    return
                msg = yield from system._ft_recv(self.tid)
                if isinstance(msg, ControlEnvelope):
                    # CTL_PROMOTE wake-up ping; the loop top consumes the
                    # authoritative state.promote_pending.
                    continue
                kind = msg[0]
                if kind == SF_REPL_ROUND:
                    self._ingest_round(msg)
                    yield from self.core.drain()
                elif kind == SF_REPL_CHECKPOINT:
                    self._fold(msg[1])
                    yield from self.core.drain()
                elif kind == SF_STOP:
                    return
        except ProcessInterrupt as interrupt:
            if isinstance(interrupt.cause, NodeCrashed):
                # Our own node died; the service-side sweep declares it
                # and the run degrades to unreplicated.
                return
            raise

    # -- replication sink --------------------------------------------------------------

    def _ingest_round(self, payload) -> None:
        """Advance the shadow by one replicated round (no yields: the
        shadow mutates atomically, so any prefix of the stream is a
        consistent promotion point)."""
        system = self.system
        _kind, fields, entries, carried, counters = payload
        record = RoundRecord.from_tuple(fields)
        self.shadow_stats.record_round(record)
        self.replay_log.extend(entries)
        # Mirror _RoundEngine.complete: the primary took the batch as
        # the pending prefix of length ``attempted``; carried losers
        # come back in front of the rest.
        rest = self.shadow_pending[record.attempted:]
        self.shadow_pending = list(carried) + rest
        self.shadow_size = next_round_size(
            self.shadow_size, record.attempted, record.carried, self.max_round
        )
        self.shadow_round_index = record.round_index + 1
        self.table_counters = counters
        self.frontier = self.shadow_stats.committed
        words = len(entries)
        self.core.charge_instructions(
            system.cluster.queue_op_instructions * (words + len(carried) + 2)
        )
        if words:
            system.stats.ft_repl_words += words
            obs = system.obs
            if obs is not None:
                obs.metrics.counter("ft.repl_words").inc(words)

    def _fold(self, frontier: int) -> None:
        """Checkpoint marker: fold the replay log into the base image."""
        if not self.replay_log:
            return
        system = self.system
        words = len(self.replay_log)
        self.image.apply_writes(self.replay_log)
        self.replay_log = []
        self.core.charge_instructions(
            words * system.config.checkpoint_word_instructions
        )
        system.stats.ft_repl_folded_words += words
        obs = system.obs
        if obs is not None:
            obs.tracer.instant(
                CAT_FT_REPLICATION, f"fold:{frontier}", PID_RUNTIME, self.tid,
                frontier=frontier, words=words,
            )
            obs.metrics.counter("ft.repl_folds").inc()

    # -- promotion ---------------------------------------------------------------------

    def _promote(self, request) -> Generator[Event, Any, None]:
        """Become the reservation service: replay the log onto the
        checkpoint image, resume the round engine at the shadow state,
        and drive the service loop with the survivors."""
        system = self.system
        env = system.env
        config = system.config
        node, dead_tids, detected_at, last_heard_at = request
        system.state.promote_pending = None
        # The primary's declaration also sits on failover_pending; the
        # promotion record below is its accounting, and the promoted
        # loop must not re-consume it as a worker failover.
        system.state.failover_pending = [
            entry for entry in system.state.failover_pending if entry[0] != node
        ]
        system.apply_node_failure(node, dead_tids)
        if not system.live_workers:
            raise ClusterFailedError(
                f"node {node} hosted the reservation service and every "
                f"remaining worker; nothing survives to re-execute"
            )
        replayed = len(self.replay_log)
        if self.replay_log:
            self.image.apply_writes(self.replay_log)
            self.replay_log = []
        self.core.charge_instructions(
            config.checkpoint_base_instructions
            + replayed * config.commit_instructions
        )
        yield from self.core.drain()
        self.promoted = True
        # Rounds the primary committed past the replicated frontier died
        # with its master memory; the promoted service re-executes them.
        recommitted = max(
            0, system.service.stats.committed - self.shadow_stats.committed
        )
        _service, engine = system.promote_reservation_service(self)
        stats = system.stats
        stats.failures.append(
            FailureRecord(
                node=node,
                dead_tids=tuple(dead_tids),
                last_heard_at=last_heard_at,
                detected_at=detected_at,
                resumed_at=env.now,
                restart_base=self.shadow_round_index,
                lost_iterations=recommitted,
                surviving_workers=len(system.live_workers),
                promoted_tid=self.tid,
                promotion_seconds=env.now - detected_at,
                replayed_words=replayed,
                recommitted_iterations=recommitted,
            )
        )
        stats.ft_promotions += 1
        stats.ft_replayed_words += replayed
        obs = system.obs
        if obs is not None:
            obs.tracer.complete(
                CAT_FT_PROMOTION, f"promote:node{node}", PID_RUNTIME, self.tid,
                detected_at, replayed_words=replayed,
                frontier=self.frontier, recommitted=recommitted,
            )
            obs.metrics.counter("ft.promotions").inc()
            obs.metrics.counter("ft.replayed_words").inc(replayed)
        # From here on this process *is* the reservation service; the
        # full=True first broadcast makes every worker rebuild its
        # snapshot from the replicated image.
        yield from system._ft_service_loop(engine, self.tid, full_first=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ReservationStandby tid={self.tid} frontier={self.frontier} "
            f"log={len(self.replay_log)}>"
        )
