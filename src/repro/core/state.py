"""Global system state shared by all DSMTX units.

The paper's API returns a system *state* from ``mtx_begin``/``mtx_end``
so workers can detect misspeculation or termination without blocking
(Table 1).  Physically this is a small control word broadcast by the
commit unit; modelling it as a shared object is safe because only the
commit unit writes it, all other units poll it at MTX boundaries, and
the propagation delay is charged explicitly by the recovery barriers.

The *epoch* increments on every recovery.  Every queue batch is tagged
with the epoch at send time, so data that was in flight across a
rollback is recognized as stale and discarded at the receiver.
"""

from __future__ import annotations

from repro.errors import RecoveryError

__all__ = ["RunMode", "SystemState"]


class RunMode:
    """Execution modes of the parallel region."""

    RUN = "run"
    RECOVERY = "recovery"
    DONE = "done"


class SystemState:
    """Control state: mode, recovery epoch, and iteration restart base."""

    def __init__(self) -> None:
        self.mode = RunMode.RUN
        self.epoch = 0
        #: First iteration of the current epoch (workers schedule
        #: round-robin relative to this base).
        self.restart_base = 0
        #: Iteration at which the current/last misspeculation occurred.
        self.misspec_iteration: int | None = None
        #: True while the system drains committed-side work up to the
        #: misspeculated iteration before rolling back.  Workers pause
        #: at their next MTX boundary at or past ``pause_target``;
        #: everything earlier validates and commits normally, so the
        #: SEQ phase re-executes only the aborted iteration itself.
        self.draining = False
        #: First doomed iteration (the earliest reported misspeculation).
        self.pause_target: int | None = None
        #: Pending node-failure declarations from the failure detector:
        #: ``(node, dead_tids, detected_at, last_heard_at)`` tuples.
        #: Appended by the detector, popped by the commit unit at the
        #: top of its run loop (one failover at a time); authoritative
        #: over the CTL_NODE_FAILED wake-up ping (which may be filtered
        #: or arrive late).
        self.failover_pending: list = []
        #: Pending commit-standby promotion: the ``(node, dead_tids,
        #: detected_at, last_heard_at)`` declaration that took the
        #: commit unit's node, set by the standby-side watcher and
        #: consumed by the standby's run loop (commit replication only).
        #: The matching entry also sits on ``failover_pending``: the
        #: *promoted* commit unit pops it and drives the degraded-mode
        #: restart after the promotion replay.
        self.promote_pending: tuple | None = None
        #: Nodes declared dead so far (grows monotonically).
        self.failed_nodes: set[int] = set()

    @property
    def in_recovery(self) -> bool:
        return self.mode == RunMode.RECOVERY

    @property
    def done(self) -> bool:
        return self.mode == RunMode.DONE

    def begin_draining(self, misspec_iteration: int) -> None:
        """Start the pre-recovery drain (commit unit only)."""
        if self.mode == RunMode.DONE:
            raise RecoveryError("cannot start draining after termination")
        self.draining = True
        self.pause_target = misspec_iteration

    def lower_pause_target(self, misspec_iteration: int) -> None:
        """An earlier misspeculation arrived while draining."""
        if not self.draining:
            raise RecoveryError("lower_pause_target outside draining")
        self.pause_target = min(self.pause_target, misspec_iteration)

    def request_failover(
        self, node: int, dead_tids: tuple, detected_at: float, last_heard_at: float
    ) -> None:
        """Record a node-failure declaration (failure detector only).

        Only the first declaration per node sticks; the commit unit
        pops declarations one at a time and re-checks the queue at its
        loop top, so back-to-back failures serialize naturally.
        """
        if self.mode == RunMode.DONE or node in self.failed_nodes:
            return
        self.failed_nodes.add(node)
        self.failover_pending.append((node, dead_tids, detected_at, last_heard_at))

    def begin_recovery(self, misspec_iteration: int) -> None:
        """Enter recovery mode proper (commit unit only)."""
        if self.mode == RunMode.DONE:
            raise RecoveryError("cannot start recovery after termination")
        self.mode = RunMode.RECOVERY
        self.misspec_iteration = misspec_iteration

    def resume(self, restart_base: int) -> None:
        """Leave recovery: bump the epoch and set the new restart base."""
        if self.mode != RunMode.RECOVERY:
            raise RecoveryError("resume called outside recovery")
        self.mode = RunMode.RUN
        self.epoch += 1
        self.restart_base = restart_base
        self.draining = False
        self.pause_target = None

    def terminate(self) -> None:
        """Mark the parallel region finished."""
        self.mode = RunMode.DONE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SystemState {self.mode} epoch={self.epoch} "
            f"base={self.restart_base}>"
        )
