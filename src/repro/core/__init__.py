"""DSMTX: Distributed Software Multi-threaded Transactional memory.

The paper's primary contribution — a software-only runtime enabling TLS
and Spec-DSWP on clusters without shared memory.  The package contains
the worker/try-commit/commit units, the MTX life cycle, Copy-On-Access,
uncommitted value forwarding over batched queues, group transaction
commit, and the four-phase misspeculation recovery protocol.
"""

from repro.core.config import PipelineConfig, StageKind, StageSpec, SystemConfig
from repro.core.context import MasterContext, MTXContext, SequentialMeter
from repro.core.reservations import (
    ReservationCommitService,
    ReservationStats,
    ReservationTable,
    RoundRecord,
)
from repro.core.runtime import DSMTXSystem, RunResult
from repro.core.state import RunMode, SystemState
from repro.core.stats import RecoveryRecord, RunStats

__all__ = [
    "DSMTXSystem",
    "RunResult",
    "ReservationTable",
    "ReservationCommitService",
    "ReservationStats",
    "RoundRecord",
    "SystemConfig",
    "PipelineConfig",
    "StageSpec",
    "StageKind",
    "MTXContext",
    "MasterContext",
    "SequentialMeter",
    "SystemState",
    "RunMode",
    "RunStats",
    "RecoveryRecord",
]
