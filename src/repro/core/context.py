"""Execution contexts for workload loop bodies.

A workload's loop body is written once as a generator function taking a
*context* and driving all of its effects through it: word loads/stores,
pipeline dataflow, cycle-cost accounting, and speculation assertions.
Three contexts implement that interface:

* :class:`MTXContext` — the speculative context used inside a worker's
  subTX.  Loads hit the worker's private memory and fault through
  Copy-On-Access; stores are logged and forwarded (``mtx_writeAll``);
  dataflow rides the DSMTX queues; speculation failures raise
  :class:`~repro.errors.MisspeculationDetected`.
* :class:`MasterContext` — direct, non-speculative execution against
  the commit unit's master memory; used for the sequential portions of
  the program and for the SEQ phase of misspeculation recovery.
* :class:`SequentialMeter` — a pure cost accumulator used to compute
  the sequential-baseline execution time without a simulator run.

Bodies are generator functions (``yield from ctx.load(...)``), so a
single body definition runs unchanged under all three contexts.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.messages import DATA, READ, READ_BLOCK, WRITE, WRITE_BLOCK
from repro.errors import (
    MisspeculationDetected,
    ProtectionFault,
    RecoveryAbort,
    TransactionError,
)
from repro.memory import AddressSpace
from repro.sim import Event

__all__ = ["MTXContext", "MasterContext", "SequentialMeter"]


class MTXContext:
    """The speculative MTX execution context (one subTX at a time)."""

    def __init__(self, worker: "Worker") -> None:  # noqa: F821 - runtime type
        self._worker = worker
        self._system = worker.system
        # Per-access state resolved once: load/store run for every word
        # a workload body touches, so attribute chains and divisions
        # there dominate the wall-clock profile.  All of these objects
        # are assigned exactly once for the lifetime of the system.
        system = worker.system
        ipc = system.cluster.instructions_per_cycle
        self._state = system.state
        self._space = worker.space
        self._charge = worker.core.charge_cycles
        self._access_cycles = system.config.access_instructions / ipc
        self._queue_op_cycles = system.cluster.queue_op_instructions / ipc
        self._page_coa = system.config.coa_page_granularity
        self.iteration = -1
        #: DATA entries received for this iteration, per label.
        self.incoming: dict[str, list] = {}
        #: True while executing this worker's first subTX of the epoch —
        #: the point where per-worker one-time state (e.g. a private
        #: copy of a shared input buffer) gets pulled in.
        self.first_on_worker = False

    # -- iteration management (called by the worker) ---------------------------------

    def begin_iteration(self, iteration: int) -> None:
        self.iteration = iteration
        self.incoming = {}

    # -- computation -------------------------------------------------------------------

    def compute(self, cycles: float) -> None:
        """Account ``cycles`` of computation (deferred, zero events)."""
        self._worker.core.charge_cycles(cycles)

    def compute_batch(self, cycles_per_item: float, count: int) -> None:
        """Account ``count`` items of ``cycles_per_item`` computation in
        one deferred charge — identical simulated cost to ``count``
        :meth:`compute` calls, one Python call."""
        self._worker.core.charge_cycles(cycles_per_item * count)

    # -- memory ------------------------------------------------------------------------

    def load(self, address: int, speculative: bool = False) -> Generator[Event, Any, Any]:
        """Read a word from the MTX's view of memory.

        ``speculative=True`` marks the load as validating a speculated
        memory dependence: its (address, value) is forwarded to the
        try-commit unit (``mtx_read``) and checked against the value the
        earlier store actually commits.
        """
        if self._state.in_recovery:
            raise RecoveryAbort("system entered recovery mid-subTX")
        worker = self._worker
        self._charge(self._access_cycles)
        # Non-faulting page-granularity reads (the common case by far)
        # run inline; everything else goes through the worker's COA
        # machinery.
        if self._page_coa:
            try:
                value = self._space.read(address)
            except ProtectionFault as fault:
                yield from worker._coa_fetch(fault.page_number)
                value = self._space.read(address)
        else:
            value = yield from worker._word_granular_read(address)
        if speculative:
            worker.current_log.append((READ, address, value))
        return value

    def store(
        self, address: int, value: Any, forward: Any = True, nbytes: Optional[int] = None
    ) -> Generator[Event, Any, None]:
        """Write a word speculatively.

        The store lands in the worker's private memory and is logged for
        validation and commit.  ``forward`` controls uncommitted value
        forwarding: ``True`` sends it to every later pipeline stage
        (``mtx_writeAll``); an iterable of stage indices targets specific
        stages (``mtx_writeTo``); ``False`` keeps it local to this
        worker (a thread-private location).  ``nbytes`` sets the wire
        size of the logged entry when the store stands for a bulk
        write-set (e.g. a whole output block).
        """
        if self._state.in_recovery:
            raise RecoveryAbort("system entered recovery mid-subTX")
        worker = self._worker
        self._charge(self._access_cycles)
        if self._page_coa:
            try:
                self._space.write(address, value)
            except ProtectionFault as fault:
                yield from worker._coa_fetch(fault.page_number)
                self._space.write(address, value)
        else:
            worker._word_granular_write(address, value)
        entry = (WRITE, address, value) if nbytes is None else (WRITE, address, value, nbytes)
        worker.current_log.append(entry)
        if forward is True:
            worker.pending_forwards.append((entry, None))
        elif forward:
            worker.pending_forwards.append((entry, tuple(forward)))

    def load_block(
        self, address: int, count: int, speculative: bool = False
    ) -> Generator[Event, Any, list]:
        """Read ``count`` consecutive words (the batch form of
        :meth:`load`).

        Simulated cost is exactly ``count`` per-word accesses — charged
        in one call — and a speculative block load appends ONE
        run-length ``READ_BLOCK`` record standing for ``count`` per-word
        observations (same wire bytes, same validation checks; only the
        Python-level bookkeeping is amortized).
        """
        if self._state.in_recovery:
            raise RecoveryAbort("system entered recovery mid-subTX")
        worker = self._worker
        self._charge(self._access_cycles * count)
        if self._page_coa:
            # A block may straddle several protected pages: fetch and
            # re-issue until the whole run is resident (reads are
            # idempotent, so the retry is safe).
            while True:
                try:
                    values = self._space.read_block(address, count)
                    break
                except ProtectionFault as fault:
                    yield from worker._coa_fetch(fault.page_number)
        else:
            values = []
            for offset in range(count):
                value = yield from worker._word_granular_read(address + (offset << 3))
                values.append(value)
        if speculative:
            worker.current_log.append((READ_BLOCK, address, tuple(values)))
        return values

    def store_block(
        self, address: int, values, forward: Any = True
    ) -> Generator[Event, Any, None]:
        """Write the run of words ``values`` (the batch form of
        :meth:`store`).

        Charges ``len(values)`` per-word accesses in one call and logs
        ONE run-length ``WRITE_BLOCK`` entry priced at ``len(values)``
        address/value pairs on the wire.  ``forward`` follows
        :meth:`store` semantics (``mtx_writeAll`` / ``mtx_writeTo`` /
        local).
        """
        if self._state.in_recovery:
            raise RecoveryAbort("system entered recovery mid-subTX")
        worker = self._worker
        count = len(values)
        self._charge(self._access_cycles * count)
        if self._page_coa:
            # Stores fault on protected pages too; re-issuing the whole
            # block after the fetch is idempotent (same values).
            while True:
                try:
                    self._space.write_block(address, values)
                    break
                except ProtectionFault as fault:
                    yield from worker._coa_fetch(fault.page_number)
        else:
            for offset, value in enumerate(values):
                worker._word_granular_write(address + (offset << 3), value)
        entry = (WRITE_BLOCK, address, tuple(values))
        worker.current_log.append(entry)
        if forward is True:
            worker.pending_forwards.append((entry, None))
        elif forward:
            worker.pending_forwards.append((entry, tuple(forward)))

    # -- pipeline dataflow ----------------------------------------------------------------

    def produce(
        self,
        label: str,
        value: Any,
        nbytes: int = 16,
        to_stage: Optional[int] = None,
    ) -> Generator[Event, Any, None]:
        """Send ``value`` down the pipeline (``mtx_produce``).

        The destination is the worker executing this iteration's subTX
        of ``to_stage`` (default: the next stage).
        """
        self._check_state()
        worker = self._worker
        stage = worker.stage_index + 1 if to_stage is None else to_stage
        if not worker.stage_index < stage < self._system.num_stages:
            raise TransactionError(
                f"produce from stage {worker.stage_index} to invalid stage {stage}"
            )
        dst_tid = self._system.worker_tid_for(stage, self.iteration)
        queue = worker._fw_out.get(dst_tid)
        if queue is None:
            queue = worker._fw_out[dst_tid] = self._system.forward_queue(
                worker.tid, dst_tid
            )
        events = queue.produce((DATA, label, value), nbytes=nbytes)
        if events:
            yield from events

    def consume(self, label: str) -> Any:
        """Take the next upstream value for ``label`` (``mtx_consume``).

        All upstream data for this iteration was collected at
        ``mtx_begin`` (the subTX refreshes its inputs before running),
        so this never blocks; consuming more than was produced is a
        parallelization bug.
        """
        self._check_state()
        items = self.incoming.get(label)
        if not items:
            raise TransactionError(
                f"consume of {label!r} at iteration {self.iteration}: no data "
                "(produce/consume counts disagree)"
            )
        self._charge(self._queue_op_cycles)
        return items.pop(0)

    def peek_count(self, label: str) -> int:
        """Number of not-yet-consumed upstream values for ``label``."""
        return len(self.incoming.get(label, ()))

    # -- TLS synchronized dependences --------------------------------------------------------

    def sync_send(self, label: str, value: Any, nbytes: int = 16) -> Generator[Event, Any, None]:
        """Forward a loop-carried value to the worker executing the next
        iteration (TLS synchronized dependence).

        This is the cyclic communication pattern that puts wire latency
        on TLS's critical path (Figure 1): the value is flushed
        immediately rather than batched.
        """
        self._check_state()
        worker = self._worker
        next_tid = self._system.worker_tid_for(worker.stage_index, self.iteration + 1)
        if next_tid == worker.tid:
            worker.self_sync[label] = value
            return
        queue = self._system.sync_queue(label, worker.tid, next_tid)
        yield from queue.produce((DATA, label, value), nbytes=nbytes)
        yield from queue.flush_pending()

    def sync_recv(self, label: str) -> Generator[Event, Any, Any]:
        """Receive the loop-carried value from the previous iteration.

        Returns ``None`` for the first iteration of an epoch — the body
        must then obtain the value from committed memory instead.
        """
        self._check_state()
        worker = self._worker
        if self.iteration == self._system.state.restart_base:
            return None
        prev_tid = self._system.worker_tid_for(worker.stage_index, self.iteration - 1)
        if prev_tid == worker.tid:
            return worker.self_sync.pop(label)
        # About to block on the predecessor: push out completed log
        # batches so downstream units are never starved by this wait.
        yield from worker._flush_log_queues()
        queue = self._system.sync_queue(label, prev_tid, worker.tid)
        entry = yield from worker.endpoint.consume_from(queue)
        return entry[2]

    # -- speculation ---------------------------------------------------------------------------

    def speculate(self, condition: bool, reason: str = "") -> None:
        """Assert a speculated condition (control flow or value).

        A false condition is a misspeculation: the MTX aborts and the
        recovery protocol of section 4.3 runs.
        """
        self._check_state()
        if not condition:
            raise MisspeculationDetected(self.iteration, reason)

    def misspec(self, reason: str = "") -> None:
        """Unconditionally signal misspeculation (``mtx_misspec``)."""
        raise MisspeculationDetected(self.iteration, reason)

    def mispredict(self, address: int, predicted: Any) -> None:
        """Record a wrong memory-value prediction (injection aid).

        Logs a speculative-load observation of ``predicted`` for
        ``address``; validation at the try-commit unit will find the
        mismatch.  Unlike a failed :meth:`speculate` assertion — which
        the executing worker reports immediately — this misspeculation
        is detected *by the validation pipeline*, so the detection lag
        depends on log batching (the section 5.4 trade-off).
        """
        self._worker.current_log.append((READ, address, predicted))

    # -- internals -------------------------------------------------------------------------------

    def _check_state(self) -> None:
        if self._system.state.in_recovery:
            raise RecoveryAbort("system entered recovery mid-subTX")


class MasterContext:
    """Non-speculative execution directly against master memory."""

    def __init__(
        self,
        system: "DSMTXSystem",
        space: AddressSpace,
        core: "Core",  # noqa: F821
        record_writes: bool = False,
    ) -> None:
        self._system = system
        self._space = space
        self._core = core
        self._record = record_writes
        #: (address, value) pairs stored, in program order, when
        #: ``record_writes`` — the commit unit replays SEQ-phase writes
        #: to its hot standby from this list.
        self.written: list = []
        self.iteration = -1
        self.incoming: dict[str, list] = {}
        #: Sequential execution has no per-worker one-time setup.
        self.first_on_worker = False

    def begin_iteration(self, iteration: int) -> None:
        self.iteration = iteration

    def compute(self, cycles: float) -> None:
        self._core.charge_cycles(cycles)

    def load(self, address: int, speculative: bool = False) -> Generator[Event, Any, Any]:
        self._core.charge_instructions(self._system.config.access_instructions)
        return self._space.read(address)
        yield  # pragma: no cover - makes this a generator

    def store(self, address: int, value: Any, forward: bool = True,
              nbytes: Optional[int] = None) -> Generator[Event, Any, None]:
        self._core.charge_instructions(self._system.config.access_instructions)
        self._space.write(address, value)
        if self._record:
            self.written.append((address, value))
        return
        yield  # pragma: no cover - makes this a generator

    def compute_batch(self, cycles_per_item: float, count: int) -> None:
        self._core.charge_cycles(cycles_per_item * count)

    def load_block(self, address: int, count: int,
                   speculative: bool = False) -> Generator[Event, Any, list]:
        self._core.charge_instructions(self._system.config.access_instructions * count)
        return self._space.read_block(address, count)
        yield  # pragma: no cover - makes this a generator

    def store_block(self, address: int, values,
                    forward: Any = True) -> Generator[Event, Any, None]:
        self._core.charge_instructions(
            self._system.config.access_instructions * len(values)
        )
        self._space.write_block(address, values)
        if self._record:
            self.written.extend(
                (address + (offset << 3), value)
                for offset, value in enumerate(values)
            )
        return
        yield  # pragma: no cover - makes this a generator

    def produce(self, label: str, value: Any, nbytes: int = 16,
                to_stage: Optional[int] = None) -> Generator[Event, Any, None]:
        """Sequential execution keeps dataflow in local lists."""
        self.incoming.setdefault(label, []).append(value)
        return
        yield  # pragma: no cover - makes this a generator

    def consume(self, label: str) -> Any:
        items = self.incoming.get(label)
        if not items:
            raise TransactionError(f"sequential consume of empty {label!r}")
        return items.pop(0)

    def peek_count(self, label: str) -> int:
        return len(self.incoming.get(label, ()))

    def sync_send(self, label: str, value: Any, nbytes: int = 16) -> Generator[Event, Any, None]:
        self.incoming.setdefault(("sync", label), []).append(value)
        return
        yield  # pragma: no cover - makes this a generator

    def sync_recv(self, label: str) -> Generator[Event, Any, Any]:
        items = self.incoming.get(("sync", label))
        value = items.pop(0) if items else None
        return value
        yield  # pragma: no cover - makes this a generator

    def speculate(self, condition: bool, reason: str = "") -> None:
        """Sequential execution never speculates; nothing to check."""

    def misspec(self, reason: str = "") -> None:
        """Sequential execution cannot misspeculate."""

    def mispredict(self, address: int, predicted: Any) -> None:
        """Sequential execution makes no value predictions."""


class SequentialMeter:
    """Pure cost meter: runs bodies with no simulator, summing cycles.

    Used to obtain the sequential-baseline execution time that speedups
    are computed against (Figure 4's y-axis).
    """

    def __init__(self, system_config, space: Optional[AddressSpace] = None) -> None:
        self._config = system_config
        self._space = space if space is not None else AddressSpace("seq")
        self.cycles = 0.0
        self.iteration = -1
        self.incoming: dict[str, list] = {}
        #: Sequential execution has no per-worker one-time setup.
        self.first_on_worker = False

    # The context protocol, cost-accumulating versions. -------------------------------

    def begin_iteration(self, iteration: int) -> None:
        self.iteration = iteration

    def compute(self, cycles: float) -> None:
        self.cycles += cycles

    def _charge_access(self) -> None:
        self.cycles += (
            self._config.access_instructions / self._config.cluster.instructions_per_cycle
        )

    def load(self, address: int, speculative: bool = False):
        self._charge_access()
        return self._space.read(address)
        yield  # pragma: no cover - makes this a generator

    def store(self, address: int, value: Any, forward: bool = True,
              nbytes: Optional[int] = None):
        self._charge_access()
        self._space.write(address, value)
        return
        yield  # pragma: no cover - makes this a generator

    def compute_batch(self, cycles_per_item: float, count: int) -> None:
        self.cycles += cycles_per_item * count

    def load_block(self, address: int, count: int, speculative: bool = False):
        self.cycles += count * (
            self._config.access_instructions / self._config.cluster.instructions_per_cycle
        )
        return self._space.read_block(address, count)
        yield  # pragma: no cover - makes this a generator

    def store_block(self, address: int, values, forward: Any = True):
        self.cycles += len(values) * (
            self._config.access_instructions / self._config.cluster.instructions_per_cycle
        )
        self._space.write_block(address, values)
        return
        yield  # pragma: no cover - makes this a generator

    def produce(self, label: str, value: Any, nbytes: int = 16, to_stage: Optional[int] = None):
        self.incoming.setdefault(label, []).append(value)
        return
        yield  # pragma: no cover - makes this a generator

    def consume(self, label: str) -> Any:
        items = self.incoming.get(label)
        if not items:
            raise TransactionError(f"sequential consume of empty {label!r}")
        return items.pop(0)

    def peek_count(self, label: str) -> int:
        return len(self.incoming.get(label, ()))

    def sync_send(self, label: str, value: Any, nbytes: int = 16):
        self.incoming.setdefault(("sync", label), []).append(value)
        return
        yield  # pragma: no cover - makes this a generator

    def sync_recv(self, label: str):
        items = self.incoming.get(("sync", label))
        value = items.pop(0) if items else None
        return value
        yield  # pragma: no cover - makes this a generator

    def speculate(self, condition: bool, reason: str = "") -> None:
        """No speculation sequentially."""

    def misspec(self, reason: str = "") -> None:
        """No misspeculation sequentially."""

    def mispredict(self, address: int, predicted: Any) -> None:
        """No value predictions sequentially."""

    @property
    def seconds(self) -> float:
        return self.cycles / self._config.cluster.clock_hz
