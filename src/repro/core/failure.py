"""Heartbeat-based failure detection (fault-tolerant mode).

Every node that hosts runtime units runs a lightweight *heartbeat
emitter* that pings the commit node every
:attr:`ClusterSpec.heartbeat_period_s`.  The :class:`FailureDetector`,
co-located with the commit unit, sweeps the per-node last-heard times;
a node silent for longer than :attr:`ClusterSpec.suspicion_timeout_s`
is declared dead:

1. the declaration is queued on ``SystemState.failover_pending`` (the
   authoritative signal the commit unit's run loop consumes);
2. the dead node's worker tids are *deregistered* from the recovery
   barriers, so a rollback already in flight completes with the
   survivors instead of deadlocking on parties that will never arrive;
3. a ``CTL_NODE_FAILED`` control envelope is injected locally into the
   commit unit's inbox as a wake-up ping, in case the commit unit is
   blocked on an empty inbox.

Heartbeats travel the management path (the dedicated low-volume control
network alongside the data fabric), so they cost neither core time nor
NIC serialization; their overhead is pure accounting.  The suspicion
timeout budgets several heartbeat periods plus wire latency, so a
healthy node is never suspected: transient link faults only delay data
traffic (absorbed by the reliable transport) and never trigger a
spurious failover.

A crash of the commit node or try-commit node is not survivable —
committed master memory and the validation pipeline have no replica —
and raises :class:`~repro.errors.ClusterFailedError` (the paper's
recovery protocol assumes the non-speculative units persist).
"""

from __future__ import annotations

from typing import Generator

from repro.core.messages import CTL_NODE_FAILED, ControlEnvelope
from repro.errors import ClusterFailedError, NodeCrashed, ProcessInterrupt

__all__ = ["FailureDetector"]


class FailureDetector:
    """Per-node heartbeat emitters plus the commit-side sweep process."""

    def __init__(self, system: "DSMTXSystem") -> None:  # noqa: F821
        self.system = system
        spec = system.cluster
        self.period = spec.heartbeat_period_s
        self.suspicion_timeout = spec.suspicion_timeout_s
        #: Node hosting the commit unit (the detector's home; it cannot
        #: declare itself dead).
        self.commit_node = spec.node_of_core(
            system._core_indices[system.commit_tid]
        )
        #: tids hosted on each monitored node.
        self.tids_by_node: dict[int, list[int]] = {}
        for tid in range(system.num_units):
            node = spec.node_of_core(system._core_indices[tid])
            self.tids_by_node.setdefault(node, []).append(tid)
        self.last_heard: dict[int, float] = {}
        self.declared: set[int] = set()

    def start(self) -> None:
        """Spawn the emitters and the sweep as detached processes.

        Called by :meth:`DSMTXSystem.run` after unit processes exist, so
        emitters can be registered for chaos-engine crash targeting.
        """
        system = self.system
        env = system.env
        now = env.now
        for node in self.tids_by_node:
            self.last_heard[node] = now
            if node != self.commit_node:
                process = env.process(
                    self._emit(node), name=f"heartbeat[node{node}]"
                )
                system.register_node_process(node, process)
        env.process(self._sweep(), name="failure-detector")

    def _emit(self, node: int) -> Generator:
        """Heartbeat emitter hosted on ``node``; dies with the node.

        The beat is recorded at send time: the suspicion timeout already
        budgets the (microsecond-scale) management-path delay, so
        modelling the flight adds nothing but allocations.
        """
        system = self.system
        env = system.env
        period = self.period
        try:
            while not system.state.done:
                yield env.sleep(period)
                self.last_heard[node] = env.now
                system.stats.ft_heartbeats += 1
        except ProcessInterrupt as interrupt:
            if isinstance(interrupt.cause, NodeCrashed):
                return  # the emitter dies with its node; silence is the signal
            raise

    def _sweep(self) -> Generator:
        system = self.system
        env = system.env
        period = self.period
        while not system.state.done:
            yield env.sleep(period)
            now = env.now
            for node, heard in self.last_heard.items():
                if node in self.declared or node == self.commit_node:
                    continue
                if now - heard > self.suspicion_timeout:
                    self._declare(node)

    def _declare(self, node: int) -> None:
        """Declare ``node`` dead and hand the failover to the runtime."""
        system = self.system
        self.declared.add(node)
        dead_tids = tuple(self.tids_by_node[node])
        if system.commit_tid in dead_tids or system.trycommit_tid in dead_tids:
            raise ClusterFailedError(
                f"node {node} hosted the "
                f"{'commit' if system.commit_tid in dead_tids else 'try-commit'}"
                f" unit; committed state is unrecoverable"
            )
        system.state.request_failover(
            node, dead_tids, system.env.now, self.last_heard[node]
        )
        # Survivors must not wait for the dead at recovery barriers —
        # this also un-wedges a rollback already in progress.
        system.recovery.deregister(
            [tid for tid in dead_tids if tid < system.num_workers]
        )
        # Wake the commit unit if it is blocked on an empty inbox; the
        # run-loop top consumes state.failover_pending, this envelope is
        # only the ping.
        system.inbox_of(system.commit_tid).put_nowait(
            ControlEnvelope(
                CTL_NODE_FAILED, system.state.epoch, -1, node
            )
        )
