"""Heartbeat-based failure detection (fault-tolerant mode).

Every node that hosts runtime units runs a lightweight *heartbeat
emitter* that pings the commit node every
:attr:`ClusterSpec.heartbeat_period_s`.  The :class:`FailureDetector`,
co-located with the commit unit, sweeps the per-node last-heard times;
a node silent for longer than :attr:`ClusterSpec.suspicion_timeout_s`
is declared dead:

1. the declaration is queued on ``SystemState.failover_pending`` (the
   authoritative signal the commit unit's run loop consumes);
2. the dead node's worker tids are *deregistered* from the recovery
   barriers, so a rollback already in flight completes with the
   survivors instead of deadlocking on parties that will never arrive;
3. a ``CTL_NODE_FAILED`` control envelope is injected locally into the
   commit unit's inbox as a wake-up ping, in case the commit unit is
   blocked on an empty inbox.

Heartbeats travel the management path (the dedicated low-volume control
network alongside the data fabric), so they cost neither core time nor
NIC serialization; their overhead is pure accounting.  The suspicion
timeout budgets several heartbeat periods plus wire latency, so a
healthy node is never suspected: transient link faults only delay data
traffic (absorbed by the reliable transport) and never trigger a
spurious failover.

A crash of the try-commit node is not survivable — the validation
pipeline has no replica — and raises
:class:`~repro.errors.ClusterFailedError`.  The same goes for the
commit node, *unless* commit replication is on
(``SystemConfig.commit_replication``): then the detection duty for the
primary moves to a **standby-side watcher** co-located with the hot
standby, because the commit-side sweep dies with the primary.  The
watcher declares the primary dead only when

* the primary has been silent past the suspicion timeout, **and**
* a quorum of the *other* monitored nodes has been heard recently
  (:attr:`ClusterSpec.quorum_fraction` — a watcher that has itself been
  partitioned away hears from nobody and stays quiet rather than
  promote a second commit unit), **and**
* its own node is the lowest-numbered surviving standby host (the
  deterministic promotion winner; trivial with a single standby).

The declaration queues the failover, passes the primary's barrier seat
to the standby, and sets ``SystemState.promote_pending`` — the signal
the standby's run loop turns into a promotion.
"""

from __future__ import annotations

from typing import Generator

from repro.core.messages import CTL_NODE_FAILED, CTL_PROMOTE, ControlEnvelope
from repro.errors import ClusterFailedError, NodeCrashed, ProcessInterrupt

__all__ = ["FailureDetector", "SpecForFailureDetector"]


class FailureDetector:
    """Per-node heartbeat emitters plus the commit-side sweep process."""

    def __init__(self, system: "DSMTXSystem") -> None:  # noqa: F821
        self.system = system
        spec = system.cluster
        self.period = spec.heartbeat_period_s
        self.suspicion_timeout = spec.suspicion_timeout_s
        #: Node hosting the commit unit (the sweep's home; the sweep
        #: cannot declare its own node dead).  Reassigned to the standby
        #: node at promotion, when the watcher takes over sweep duty.
        self.commit_node = spec.node_of_core(
            system._core_indices[system.commit_tid]
        )
        #: Node hosting the commit standby; ``None`` without commit
        #: replication.
        self.standby_node = (
            spec.node_of_core(system._core_indices[system.standby_tid])
            if system.standby_tid is not None
            else None
        )
        #: tids hosted on each monitored node.
        self.tids_by_node: dict[int, list[int]] = {}
        for tid in range(system.num_units):
            node = spec.node_of_core(system._core_indices[tid])
            self.tids_by_node.setdefault(node, []).append(tid)
        self.last_heard: dict[int, float] = {}
        self.declared: set[int] = set()

    @property
    def replicated(self) -> bool:
        return self.standby_node is not None

    def start(self) -> None:
        """Spawn the emitters and the sweep as detached processes.

        Called by :meth:`DSMTXSystem.run` after unit processes exist, so
        emitters can be registered for chaos-engine crash targeting.
        """
        system = self.system
        env = system.env
        now = env.now
        for node in self.tids_by_node:
            self.last_heard[node] = now
            # With commit replication the commit node beats too: its
            # silence is what the standby-side watcher detects.
            if node != self.commit_node or self.replicated:
                process = env.process(
                    self._emit(node), name=f"heartbeat[node{node}]"
                )
                system.register_node_process(node, process)
        sweep = env.process(self._sweep(), name="failure-detector")
        if self.replicated:
            # The sweep is co-located with the commit unit: it dies with
            # the primary, and the watcher below takes over its duty.
            system.register_node_process(self.commit_node, sweep)
            watcher = env.process(self._watch_primary(), name="standby-watcher")
            system.register_node_process(self.standby_node, watcher)

    def _emit(self, node: int) -> Generator:
        """Heartbeat emitter hosted on ``node``; dies with the node.

        The beat is recorded at send time: the suspicion timeout already
        budgets the (microsecond-scale) management-path delay, so
        modelling the flight adds nothing but allocations.
        """
        system = self.system
        env = system.env
        period = self.period
        try:
            while not system.state.done:
                yield env.sleep(period)
                self.last_heard[node] = env.now
                system.stats.ft_heartbeats += 1
        except ProcessInterrupt as interrupt:
            if isinstance(interrupt.cause, NodeCrashed):
                return  # the emitter dies with its node; silence is the signal
            raise

    def _sweep(self) -> Generator:
        system = self.system
        env = system.env
        period = self.period
        try:
            while not system.state.done:
                yield env.sleep(period)
                self._sweep_round(env.now)
        except ProcessInterrupt as interrupt:
            if isinstance(interrupt.cause, NodeCrashed):
                # Commit replication only: the sweep shares the primary's
                # node and dies with it; the standby-side watcher is the
                # detector from here on.
                return
            raise

    def _sweep_round(self, now: float) -> None:
        for node, heard in self.last_heard.items():
            if node in self.declared or node == self.commit_node:
                continue
            if now - heard > self.suspicion_timeout:
                self._declare(node)

    def _watch_primary(self) -> Generator:
        """Standby-side watcher (commit replication only).

        Monitors the primary's heartbeats; after promotion — when
        :attr:`commit_node` has become this watcher's own node — it
        takes over the ordinary sweep duty from the dead primary's
        sweep.
        """
        system = self.system
        env = system.env
        period = self.period
        try:
            while not system.state.done:
                yield env.sleep(period)
                now = env.now
                if self.commit_node == self.standby_node:
                    # Promoted: this process is the survivors' sweep now.
                    self._sweep_round(now)
                    continue
                if self.commit_node in self.declared:
                    continue
                if now - self.last_heard[self.commit_node] <= self.suspicion_timeout:
                    continue
                if not self._quorum_agrees(now):
                    continue
                if not self._is_lowest_standby_survivor():
                    continue
                self._declare(self.commit_node)
        except ProcessInterrupt as interrupt:
            if isinstance(interrupt.cause, NodeCrashed):
                # Our own node died; the commit-side sweep declares it.
                return
            raise

    def _quorum_agrees(self, now: float) -> bool:
        """Majority-of-survivors gate on declaring the primary.

        Count the *other* monitored nodes (not the primary's, not our
        own, not already declared) heard within the suspicion timeout;
        require at least ``quorum_fraction`` of them.  A watcher that
        itself fell off the network hears from nobody and stays quiet
        instead of promoting a second commit unit.
        """
        others = [
            node
            for node in self.last_heard
            if node not in (self.commit_node, self.standby_node)
            and node not in self.declared
        ]
        if not others:
            return True
        heard = sum(
            1
            for node in others
            if now - self.last_heard[node] <= self.suspicion_timeout
        )
        return heard >= len(others) * self.system.cluster.quorum_fraction

    def _is_lowest_standby_survivor(self) -> bool:
        """Deterministic promotion winner: the lowest-numbered surviving
        standby host declares and promotes.  Trivially true with a
        single standby; the check pins the protocol's tie-break rule.
        """
        candidates = [
            self.standby_node
        ]  # single-standby deployment; lowest node id wins
        return self.standby_node == min(candidates)

    def _declare(self, node: int) -> None:
        """Declare ``node`` dead and hand the failover to the runtime."""
        system = self.system
        self.declared.add(node)
        dead_tids = tuple(self.tids_by_node[node])
        if system.trycommit_tid in dead_tids:
            raise ClusterFailedError(
                f"node {node} hosted the try-commit unit; the validation "
                f"pipeline has no replica and its loss is unrecoverable"
            )
        if system.commit_tid in dead_tids:
            self._declare_primary(node, dead_tids)
            return
        system.state.request_failover(
            node, dead_tids, system.env.now, self.last_heard[node]
        )
        # Survivors must not wait for the dead at recovery barriers —
        # this also un-wedges a rollback already in progress.
        system.recovery.deregister(
            [tid for tid in dead_tids if tid < system.num_workers]
        )
        if system.standby_tid in dead_tids:
            # The replication consumer died: retire the stream *now* so
            # a primary blocked on its flow control wakes up (a dead
            # standby can never return credits).  The run degrades to
            # unreplicated; the primary drops its stream handle when it
            # orchestrates the failover.
            repl = system._queues.get("repl")
            if repl is not None:
                repl.retire()
        # Wake the commit unit if it is blocked on an empty inbox; the
        # run-loop top consumes state.failover_pending, this envelope is
        # only the ping.
        system.inbox_of(system.commit_tid).put_nowait(
            ControlEnvelope(
                CTL_NODE_FAILED, system.state.epoch, -1, node
            )
        )

    def _declare_primary(self, node: int, dead_tids: tuple) -> None:
        """The primary's node died: queue the failover *and* the
        promotion (standby-side watcher, commit replication)."""
        system = self.system
        standby_tid = system.standby_tid
        if (
            standby_tid is None
            or standby_tid in system.dead_tids
            or standby_tid in dead_tids
        ):
            raise ClusterFailedError(
                f"node {node} hosted the commit unit; committed state is "
                f"unrecoverable without a live replicated standby"
            )
        detected_at = system.env.now
        last_heard_at = self.last_heard[node]
        system.state.request_failover(node, dead_tids, detected_at, last_heard_at)
        system.state.promote_pending = (
            node, dead_tids, detected_at, last_heard_at
        )
        system.recovery.deregister(
            [tid for tid in dead_tids if tid < system.num_workers]
        )
        # The dead primary's barrier seat passes to the standby: the
        # promoted unit orchestrates the failover under its own tid.
        system.recovery.substitute(system.commit_tid, standby_tid)
        # From here on this watcher's own node is the primary's.
        self.commit_node = self.standby_node
        # Wake the standby if it is blocked on an empty inbox; the
        # authoritative signal is state.promote_pending.
        system.inbox_of(standby_tid).put_nowait(
            ControlEnvelope(CTL_PROMOTE, system.state.epoch, -1, node)
        )


class SpecForFailureDetector(FailureDetector):
    """Failure detection for the ``speculative_for`` runtime.

    Same heartbeat emitters, sweep, and standby-side watcher as the
    pipeline detector — only the declaration differs.  The reservation
    runtime has no try-commit unit (nothing is categorically fatal
    besides losing the service without a standby), no recovery barriers
    to deregister, and no runtime queues to retire: a worker's death
    queues a failover the round scheduler consumes (void the in-flight
    round, re-partition over the survivors), and the service's death
    with a live standby queues a promotion.
    """

    def _declare(self, node: int) -> None:
        system = self.system
        self.declared.add(node)
        dead_tids = tuple(self.tids_by_node[node])
        if system.commit_tid in dead_tids:
            self._declare_primary(node, dead_tids)
            return
        system.state.request_failover(
            node, dead_tids, system.env.now, self.last_heard[node]
        )
        # Wake the service if it is blocked mid-gather on a reply the
        # dead worker will never send; the scheduler consumes
        # state.failover_pending, this envelope is only the ping.
        system.inbox_of(system.commit_tid).put_nowait(
            ControlEnvelope(CTL_NODE_FAILED, system.state.epoch, -1, node)
        )

    def _declare_primary(self, node: int, dead_tids: tuple) -> None:
        system = self.system
        standby_tid = system.standby_tid
        if (
            standby_tid is None
            or standby_tid in system.dead_tids
            or standby_tid in dead_tids
        ):
            raise ClusterFailedError(
                f"node {node} hosted the reservation service; the committed "
                f"image is unrecoverable without a live replicated standby"
            )
        detected_at = system.env.now
        last_heard_at = self.last_heard[node]
        system.state.request_failover(node, dead_tids, detected_at, last_heard_at)
        system.state.promote_pending = (node, dead_tids, detected_at, last_heard_at)
        # From here on this watcher's own node is the primary's.
        self.commit_node = self.standby_node
        # Wake the standby if it is blocked on an empty inbox; the
        # authoritative signal is state.promote_pending.
        system.inbox_of(standby_tid).put_nowait(
            ControlEnvelope(CTL_PROMOTE, system.state.epoch, -1, node)
        )
