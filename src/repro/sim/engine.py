"""Discrete-event simulation kernel.

A minimal but complete process-based discrete-event engine in the style of
SimPy, built from scratch so the reproduction has no dependency beyond the
standard library.  Processes are Python generators that ``yield`` events;
the :class:`Environment` advances a virtual clock and resumes processes as
the events they wait on trigger.

Design notes
------------
* Time is a ``float`` in **seconds**.  Computation expressed in CPU cycles
  is converted by the cluster layer (``cycles / clock_hz``).
* Events scheduled for the same instant fire in scheduling (FIFO) order,
  which makes runs fully deterministic.
* A process may be interrupted: :meth:`Process.interrupt` throws a
  :class:`~repro.errors.ProcessInterrupt` into the generator at the point
  of its current ``yield``.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import (
    DeadlockError,
    EventAlreadyTriggered,
    ProcessInterrupt,
    SimulationError,
)

__all__ = ["Environment", "Event", "Timeout", "Process", "PENDING"]

#: Sentinel for an event value that has not been set yet.
PENDING = object()

#: Priority bias folded into the heap key.  A heap entry is
#: ``(time, key, event)`` with ``key = eid`` for priority-0 events
#: (interrupts) and ``key = eid + _P1`` for everything else — the exact
#: lexicographic order of the old ``(time, priority, eid)`` key with one
#: fewer tuple element to build and compare per event.
_P1 = 1 << 62


class Event:
    """An occurrence in simulated time that processes may wait for.

    An event starts *pending*, is *triggered* exactly once (either
    :meth:`succeed` with a value or :meth:`fail` with an exception), and is
    *processed* when the environment has run its callbacks.

    Events are the unit of work of the hot loop, so the class is slotted
    and every state flag — including ``_defused`` — is a real attribute:
    the step loop reads them without ``getattr`` fallbacks or property
    descriptors.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: A failed event raises out of the step loop unless some handler
        #: marked the failure as taken care of.  True here means "nothing
        #: to surface"; :meth:`fail` arms it.
        self._defused = True

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (ok or failed)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the environment has executed the callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # Inlined Environment._enqueue: succeed() fires for every
        # resource grant and store hand-off, so the extra call counts.
        env = self.env
        env._eid = eid = env._eid + 1
        heappush(env._queue, (env._now, eid + _P1, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure; waiters will see it raised."""
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._defused = False
        self.env._enqueue(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed.

        If the event was already processed, the callback runs immediately.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after ``delay`` seconds."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Event.__init__ and Environment._enqueue inlined; timeouts are
        # the most-constructed event kind of a run.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = True
        self.delay = delay
        env._eid = eid = env._eid + 1
        heappush(env._queue, (env._now + delay, eid + _P1, self))


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._defused = True
        env._eid = eid = env._eid + 1
        heappush(env._queue, (env._now, eid + _P1, self))


class Process(Event):
    """A running process: wraps a generator and is itself an event that
    triggers when the generator returns (value = return value) or raises
    (failure).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        super().__init__(env)
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        self._generator = generator
        self._target: Optional[Event] = None
        #: Optional label used by deadlock diagnostics.
        self.name = name
        env._processes[self] = None
        Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on, if any."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`ProcessInterrupt` into the process at its current
        ``yield``.  Interrupting a finished process is an error.
        """
        if self._value is not PENDING:
            raise SimulationError("cannot interrupt a finished process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = ProcessInterrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env._enqueue(interrupt_event, priority=0)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or failure) of ``event``."""
        env = self.env
        env._active = self
        # Detach from whatever we were waiting on so a late trigger of the
        # old target (after an interrupt) does not resume us twice.
        if self._target is not None and self._target is not event:
            try:
                self._target.callbacks.remove(self._resume)
            except (ValueError, AttributeError):
                pass
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event._defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active = None
            env._processes.pop(self, None)
            self._ok = True
            self._value = stop.value
            env._eid = eid = env._eid + 1
            heappush(env._queue, (env._now, eid + _P1, self))
            return
        except BaseException as exc:
            env._active = None
            env._processes.pop(self, None)
            self._ok = False
            self._value = exc
            self._defused = False
            env._enqueue(self)
            return
        env._active = None
        try:
            target_callbacks = next_event.callbacks
        except AttributeError:
            raise SimulationError(
                f"process yielded a non-event: {next_event!r} "
                "(processes must yield Event instances)"
            ) from None
        if target_callbacks is None:
            # Already processed: resume immediately at the current time.
            bridge = Event(env)
            bridge._ok = next_event._ok
            bridge._value = next_event._value
            if not next_event._ok:
                bridge._defused = True
            bridge.callbacks.append(self._resume)
            env._enqueue(bridge)
            self._target = bridge
        else:
            target_callbacks.append(self._resume)
            self._target = next_event


class Environment:
    """The simulation environment: virtual clock plus event queue."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active: Optional[Process] = None
        #: Observability hub (:class:`repro.obs.Observability`) if one is
        #: attached; instrumentation hooks across the cluster layer read
        #: this and do nothing while it is ``None``.
        self.obs = None
        #: Chaos fault-injection engine (:class:`repro.chaos.ChaosEngine`)
        #: if one is attached; the wire-level hooks in the cluster layer
        #: read this and do nothing while it is ``None`` — the same
        #: zero-cost-when-disabled pattern as ``obs``.
        self.chaos = None
        #: Live processes, in creation order (deadlock diagnostics).
        self._processes: dict[Process, None] = {}
        #: Hooks invoked with each processed event (see ``repro.sim.trace``).
        self._step_listeners: list[Callable[[Event], None]] = []
        #: Events processed so far (the ``repro perf`` throughput metric).
        self.events_processed = 0

    # -- introspection ----------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    # -- event construction ------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float) -> Timeout:
        """Fast-path timeout: a bare delay with no value payload.

        Semantically identical to ``timeout(delay)`` but built without
        the :class:`Event` constructor chain — the cluster layer
        schedules one of these for every compute burst and wire
        serialization, which makes it the single most-allocated object
        of a run.
        """
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        timeout = Timeout.__new__(Timeout)
        timeout.env = self
        timeout.callbacks = []
        timeout._value = None
        timeout._ok = True
        timeout._defused = True
        timeout.delay = delay
        self._eid = eid = self._eid + 1
        heappush(self._queue, (self._now + delay, eid + _P1, timeout))
        return timeout

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start a new process running ``generator``.

        ``name`` labels the process in deadlock diagnostics.
        """
        return Process(self, generator, name)

    def blocked_report(self, limit: int = 16) -> str:
        """One line per live process: who it is, where its generator is
        suspended, and what event it waits on.  Empty string if no
        process is alive — the substance of every :class:`DeadlockError`
        this environment raises."""
        lines = []
        for process in self._processes:
            if len(lines) >= limit:
                lines.append(f"  ... and {len(self._processes) - limit} more")
                break
            label = process.name or process._generator.gi_code.co_name
            # Walk the yield-from chain to the innermost suspended frame:
            # that is where the process is actually blocked.
            gen = process._generator
            while getattr(gen, "gi_yieldfrom", None) is not None and hasattr(
                gen.gi_yieldfrom, "gi_frame"
            ):
                gen = gen.gi_yieldfrom
            frame = getattr(gen, "gi_frame", None)
            if frame is not None:
                where = f"{gen.gi_code.co_name}:{frame.f_lineno}"
            else:
                where = "<not started>"
            target = process._target
            waiting = "nothing (never resumed)" if target is None else repr(target)
            lines.append(f"  {label} suspended at {where}, waiting on {waiting}")
        return "\n".join(lines)

    def _deadlock(self, headline: str) -> DeadlockError:
        detail = self.blocked_report()
        if detail:
            return DeadlockError(
                f"{headline}; {len(self._processes)} process(es) still "
                f"blocked:\n{detail}"
            )
        return DeadlockError(headline)

    def all_of(self, events: Iterable[Event]) -> Event:
        """Event that succeeds when every event in ``events`` has succeeded.

        Its value is the list of the constituent events' values, in order.
        A failure of any constituent fails the combined event immediately.
        """
        events = list(events)
        combined = self.event()
        remaining = [len(events)]
        if not events:
            combined.succeed([])
            return combined

        def on_done(event: Event) -> None:
            if combined.triggered:
                return
            if not event._ok:
                event._defused = True
                combined.fail(event._value)
                return
            remaining[0] -= 1
            if remaining[0] == 0:
                combined.succeed([e._value for e in events])

        for e in events:
            e.add_callback(on_done)
        return combined

    def any_of(self, events: Iterable[Event]) -> Event:
        """Event that succeeds as soon as any constituent succeeds.

        Its value is ``(index, value)`` of the first event to trigger.
        """
        events = list(events)
        combined = self.event()
        if not events:
            combined.succeed((None, None))
            return combined

        def make_callback(index: int) -> Callable[[Event], None]:
            def on_done(event: Event) -> None:
                if combined.triggered:
                    if not event._ok:
                        event._defused = True
                    return
                if event._ok:
                    combined.succeed((index, event._value))
                else:
                    event._defused = True
                    combined.fail(event._value)

            return on_done

        for i, e in enumerate(events):
            e.add_callback(make_callback(i))
        return combined

    # -- scheduling / execution --------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        self._eid = eid = self._eid + 1
        if priority:
            eid += _P1
        heappush(self._queue, (self._now + delay, eid, event))

    def triggered_event(self, value: Any = None) -> Event:
        """A fresh event that is already triggered ok with ``value``.

        Equivalent to ``Event(env).succeed(value)`` in one step — the
        resources layer grants most requests immediately, so this path
        runs per store hand-off and resource grant.
        """
        event = Event.__new__(Event)
        event.env = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._defused = True
        self._eid = eid = self._eid + 1
        heappush(self._queue, (self._now, eid + _P1, event))
        return event

    def add_step_listener(self, listener: Callable[[Event], None]) -> None:
        """Register ``listener`` to observe every processed event."""
        self._step_listeners.append(listener)

    def remove_step_listener(self, listener: Callable[[Event], None]) -> None:
        """Unregister a step listener; missing listeners are ignored."""
        try:
            self._step_listeners.remove(listener)
        except ValueError:
            pass

    def step(self) -> None:
        """Process the single next event, advancing the clock."""
        if not self._queue:
            raise self._deadlock("event queue is empty")
        when, _key, event = heapq.heappop(self._queue)
        self._now = when
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failed event that nobody handled: surface the error.
            raise event._value
        if self._step_listeners:
            for listener in self._step_listeners:
                listener(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a time
        (run until the clock would pass it), or an :class:`Event` (run
        until that event is processed; its value is returned).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(f"until={stop_time} is in the past (now={self._now})")

        # The fused step loop.  One iteration here is :meth:`step` with
        # the per-event overhead stripped: the queue, heappop, and the
        # listener list are locals, the stop checks read slots directly
        # instead of going through properties, and the processed-event
        # count is flushed once at exit.  Listener registration mutates
        # ``_step_listeners`` in place, so the local alias stays live.
        # The loop body is replicated per stop mode so the common modes
        # (run to an event, run until the queue drains) pay no per-event
        # checks for the stop conditions they cannot hit.
        queue = self._queue
        listeners = self._step_listeners
        processed = 0
        try:
            if stop_time != float("inf"):
                while queue:
                    if stop_event is not None and stop_event.callbacks is None:
                        break
                    when = queue[0][0]
                    if when > stop_time:
                        self._now = stop_time
                        return None
                    event = heappop(queue)[2]
                    self._now = when
                    processed += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        # A failed event that nobody handled: surface it.
                        raise event._value
                    if listeners:
                        for listener in listeners:
                            listener(event)
            elif stop_event is not None:
                while queue:
                    if stop_event.callbacks is None:
                        break
                    item = heappop(queue)
                    self._now = item[0]
                    event = item[2]
                    processed += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    if listeners:
                        for listener in listeners:
                            listener(event)
            else:
                while queue:
                    item = heappop(queue)
                    self._now = item[0]
                    event = item[2]
                    processed += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    if listeners:
                        for listener in listeners:
                            listener(event)
        finally:
            self.events_processed += processed

        if stop_event is not None:
            if not stop_event.triggered:
                raise self._deadlock(
                    "simulation ended but the awaited event never triggered"
                )
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if until is not None and not isinstance(until, Event):
            self._now = stop_time
        return None
