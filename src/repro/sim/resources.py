"""Shared resources for the simulation kernel.

Three primitives cover everything the cluster and runtime layers need:

* :class:`Resource` — a counted resource (e.g. a CPU core) granting
  exclusive slots in FIFO order.
* :class:`Store` — an unbounded-or-bounded FIFO of items with blocking
  ``put``/``get``; the basis of message queues.
* :class:`Barrier` — an N-party synchronization barrier, used by the
  misspeculation recovery protocol (paper section 4.3).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.errors import ChannelFlushedError, SimulationError
from repro.sim.engine import Environment, Event

__all__ = ["Resource", "Store", "Barrier"]


class Resource:
    """A counted resource granting up to ``capacity`` concurrent users.

    Usage from a process::

        request = resource.request()
        yield request
        try:
            ...  # hold the resource
        finally:
            resource.release(request)
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: set[Event] = set()
        self._waiting: Deque[Event] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Event:
        """Return an event that succeeds when a slot is granted."""
        if len(self._users) < self.capacity:
            request = self.env.triggered_event()
            self._users.add(request)
        else:
            request = Event(self.env)
            self._waiting.append(request)
        return request

    def release(self, request: Event) -> None:
        """Release the slot held by ``request``."""
        users = self._users
        try:
            users.remove(request)
        except KeyError:
            # Releasing a never-granted (still waiting) request cancels it.
            try:
                self._waiting.remove(request)
                return
            except ValueError:
                raise SimulationError("release of a request that holds no slot") from None
        if self._waiting and len(users) < self.capacity:
            nxt = self._waiting.popleft()
            users.add(nxt)
            nxt.succeed()


class Store:
    """A FIFO store of items with blocking ``put`` and ``get``.

    ``capacity`` bounds the number of items held; ``put`` on a full store
    blocks until space frees up.  :meth:`flush` discards all items and
    fails every pending ``get`` and ``put`` with
    :class:`~repro.errors.ChannelFlushedError` — the mechanism behind
    queue flushing during misspeculation recovery.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def level(self) -> int:
        """Number of items currently stored."""
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Return an event that succeeds once ``item`` is in the store."""
        if self._getters:
            # Hand the item straight to the longest-waiting getter.
            self._getters.popleft().succeed(item)
            return self.env.triggered_event()
        if len(self.items) < self.capacity:
            self.items.append(item)
            return self.env.triggered_event()
        event = Event(self.env)
        self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Return an event that succeeds with the next item."""
        if self.items:
            event = self.env.triggered_event(self.items.popleft())
            if self._putters:
                put_event, item = self._putters.popleft()
                self.items.append(item)
                put_event.succeed()
            return event
        event = Event(self.env)
        self._getters.append(event)
        return event

    def put_nowait(self, item: Any) -> None:
        """Deposit ``item`` without allocating a put-acknowledge event.

        The fast path of the message-delivery layer: nobody ever waits
        on a network delivery's put, so the ack event of :meth:`put`
        (and its trip through the event queue) is pure overhead there.
        Only valid when the store has room; a bounded store that is full
        raises ``SimulationError`` rather than blocking.
        """
        if self._getters:
            # Hand the item straight to the longest-waiting getter.
            self._getters.popleft().succeed(item)
        elif len(self.items) < self.capacity:
            self.items.append(item)
        else:
            raise SimulationError("put_nowait on a full store")

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if not self.items:
            return False, None
        item = self.items.popleft()
        if self._putters:
            put_event, queued = self._putters.popleft()
            self.items.append(queued)
            put_event.succeed()
        return True, item

    def flush(self) -> int:
        """Discard all items; abort blocked getters and putters.

        Returns the number of items discarded.
        """
        discarded = len(self.items)
        self.items.clear()
        while self._getters:
            getter = self._getters.popleft()
            # An event with no callbacks is an orphan: its process was
            # interrupted (or killed by a node crash) and detached after
            # blocking here.  Failing it would raise unhandled out of
            # the engine loop, so orphans are silently dropped.
            if not getter.triggered and getter.callbacks:
                getter.fail(ChannelFlushedError("store flushed"))
        while self._putters:
            put_event, _item = self._putters.popleft()
            discarded += 1
            if not put_event.triggered and put_event.callbacks:
                put_event.fail(ChannelFlushedError("store flushed"))
        return discarded


class Barrier:
    """An N-party reusable barrier.

    Each party calls :meth:`wait` and yields the returned event; once all
    ``parties`` have arrived the barrier releases every waiter (value =
    generation number) and resets for the next generation.
    """

    def __init__(self, env: Environment, parties: int) -> None:
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.env = env
        self.parties = parties
        self.generation = 0
        self._waiting: list[tuple[Event, Any]] = []

    @property
    def arrived(self) -> int:
        """Number of parties currently waiting at the barrier."""
        return len(self._waiting)

    def wait(self, owner: Any = None) -> Event:
        """Arrive at the barrier; returns an event for the release.

        ``owner`` identifies the arriving party so a failed party's
        arrival can later be withdrawn with :meth:`drop`.
        """
        event = self.env.event()
        self._waiting.append((event, owner))
        self._maybe_release()
        return event

    def drop(self, owner: Any) -> bool:
        """Withdraw ``owner``'s pending arrival (the party died at the
        barrier).  Returns True if an arrival was removed.  Does not
        change ``parties`` — pair with :meth:`set_parties`."""
        for i, (_event, waiting_owner) in enumerate(self._waiting):
            if waiting_owner is not None and waiting_owner == owner:
                del self._waiting[i]
                return True
        return False

    def set_parties(self, parties: int) -> None:
        """Resize the barrier (degraded-mode restart after a node loss);
        releases immediately if the survivors have all arrived."""
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.parties = parties
        self._maybe_release()

    def _maybe_release(self) -> None:
        if len(self._waiting) >= self.parties:
            generation = self.generation
            self.generation += 1
            waiting, self._waiting = self._waiting, []
            for waiter, _owner in waiting:
                waiter.succeed(generation)
