"""Discrete-event simulation kernel for the DSMTX reproduction.

The kernel is deliberately small: an :class:`Environment` with a virtual
clock, generator-based :class:`Process` objects, and the three shared
resources (:class:`Resource`, :class:`Store`, :class:`Barrier`) the
cluster substrate is built from.
"""

from repro.sim.engine import PENDING, Environment, Event, Process, Timeout
from repro.sim.resources import Barrier, Resource, Store
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "PENDING",
    "Resource",
    "Store",
    "Barrier",
    "Tracer",
    "TraceRecord",
]
