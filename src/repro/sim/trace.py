"""Simulation event tracing.

A :class:`Tracer` records every processed event of an
:class:`~repro.sim.engine.Environment` — time, event type, outcome —
bounded by a ring buffer so long simulations stay cheap to trace.  It is
a debugging aid for runtime development: attach one, run, and dump the
tail when something deadlocks or misbehaves.

Usage::

    env = Environment()
    tracer = Tracer(env, capacity=10_000)
    ... run ...
    print(tracer.render_tail(50))
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from repro.sim.engine import Environment

__all__ = ["Tracer", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One processed event."""

    time: float
    kind: str
    ok: bool
    value_repr: str


class Tracer:
    """Ring-buffer tracer attached to an environment's step loop."""

    def __init__(self, env: Environment, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.records: deque[TraceRecord] = deque(maxlen=capacity)
        self.counts: Counter = Counter()
        self.total_events = 0
        self._original_step = env.step
        env.step = self._traced_step  # type: ignore[method-assign]

    def detach(self) -> None:
        """Restore the environment's untraced step loop."""
        self.env.step = self._original_step  # type: ignore[method-assign]

    def _traced_step(self) -> None:
        queue = self.env._queue
        head = queue[0][3] if queue else None
        self._original_step()
        if head is None:
            return
        kind = type(head).__name__
        self.total_events += 1
        self.counts[kind] += 1
        value = head._value
        self.records.append(
            TraceRecord(
                time=self.env.now,
                kind=kind,
                ok=bool(head._ok),
                value_repr=_short_repr(value),
            )
        )

    # -- reporting --------------------------------------------------------------

    def tail(self, count: int = 50) -> list[TraceRecord]:
        """The most recent ``count`` records."""
        records = list(self.records)
        return records[-count:]

    def render_tail(self, count: int = 50) -> str:
        """Human-readable dump of the trace tail."""
        lines = [f"{'time (us)':>12}  {'event':<12} {'ok':<3} value"]
        for record in self.tail(count):
            lines.append(
                f"{record.time * 1e6:>12.3f}  {record.kind:<12} "
                f"{'ok' if record.ok else 'ERR':<3} {record.value_repr}"
            )
        return "\n".join(lines)

    def summary(self) -> dict:
        """Event counts by kind plus the grand total."""
        return {"total": self.total_events, **dict(self.counts)}


def _short_repr(value: object, limit: int = 60) -> str:
    text = repr(value)
    if len(text) > limit:
        text = text[: limit - 3] + "..."
    return text
