"""Simulation event tracing.

A :class:`Tracer` records every processed event of an
:class:`~repro.sim.engine.Environment` — time, event type, outcome —
bounded by a ring buffer so long simulations stay cheap to trace.  It is
a debugging aid for runtime development: attach one, run, and dump the
tail when something deadlocks or misbehaves.

The tracer registers as a *step listener* on the environment (the same
hook API the structured ``repro.obs`` layer builds on) rather than
monkey-patching the step loop, and it is a context manager, so it can
be scoped to exactly the region of interest::

    env = Environment()
    with Tracer(env, capacity=10_000) as tracer:
        ... run ...
    print(tracer.render_tail(50))

For *typed* spans with categories, metrics, and Perfetto export — the
production observability layer — see :mod:`repro.obs`.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from repro.sim.engine import Environment, Event

__all__ = ["Tracer", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One processed event."""

    time: float
    kind: str
    ok: bool
    value_repr: str


class Tracer:
    """Ring-buffer tracer listening on an environment's step loop.

    Attaches on construction; use :meth:`detach` (or leave a ``with``
    block) to stop recording.  Attach/detach are idempotent.
    """

    def __init__(self, env: Environment, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.records: deque[TraceRecord] = deque(maxlen=capacity)
        self.counts: Counter = Counter()
        self.total_events = 0
        self._attached = False
        self.attach()

    # -- lifecycle --------------------------------------------------------------

    def attach(self) -> None:
        """Start (or resume) recording the environment's step loop."""
        if not self._attached:
            self.env.add_step_listener(self._on_step)
            self._attached = True

    def detach(self) -> None:
        """Stop recording; the environment's step loop is left untouched."""
        if self._attached:
            self.env.remove_step_listener(self._on_step)
            self._attached = False

    def __enter__(self) -> "Tracer":
        self.attach()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()

    def _on_step(self, event: Event) -> None:
        kind = type(event).__name__
        self.total_events += 1
        self.counts[kind] += 1
        self.records.append(
            TraceRecord(
                time=self.env.now,
                kind=kind,
                ok=bool(event._ok),
                value_repr=_short_repr(event._value),
            )
        )

    # -- reporting --------------------------------------------------------------

    def tail(self, count: int = 50) -> list[TraceRecord]:
        """The most recent ``count`` records."""
        records = list(self.records)
        return records[-count:]

    def render_tail(self, count: int = 50) -> str:
        """Human-readable dump of the trace tail."""
        lines = [f"{'time (us)':>12}  {'event':<12} {'ok':<3} value"]
        for record in self.tail(count):
            lines.append(
                f"{record.time * 1e6:>12.3f}  {record.kind:<12} "
                f"{'ok' if record.ok else 'ERR':<3} {record.value_repr}"
            )
        return "\n".join(lines)

    def summary(self) -> dict:
        """Event counts by kind plus the grand total."""
        return {"total": self.total_events, **dict(self.counts)}


def _short_repr(value: object, limit: int = 60) -> str:
    text = repr(value)
    if len(text) > limit:
        text = text[: limit - 3] + "..."
    return text
