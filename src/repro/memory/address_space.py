"""Per-process virtual address spaces.

Every DSMTX unit — worker, try-commit, commit — executes in its own
physical memory (paper section 3.1).  An :class:`AddressSpace` models
one such memory as a page table of flat-array
:class:`~repro.memory.page.Page` objects.

Two protection modes exist:

* ``faulting=False`` — the *master* space of the commit unit: pages
  materialize on demand, reads of untouched words return zero.
* ``faulting=True`` — a worker or try-commit space: every page starts
  access-protected; the first touch raises
  :class:`~repro.errors.ProtectionFault`, which the Copy-On-Access layer
  catches to fetch the committed page from the commit unit.  During
  misspeculation recovery, :meth:`reprotect_all` discards all local
  pages, reinstating the protections (paper section 4.3, step four).

Beyond single-word access, the space exposes *batch* primitives that
amortize Python-level overhead the way DSMTX batches messages to
amortize wire overhead (section 4.2): :meth:`read_block` /
:meth:`write_block` move runs of consecutive words as list slices,
:meth:`dirty_words` / :meth:`extract_blocks` pull write-sets and page
populations straight from the per-page bitmasks, and
:meth:`apply_entries` applies a commit group containing both per-word
and run-length records.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import ProtectionFault, UnmappedAddressError
from repro.memory.layout import (
    PAGE_MASK,
    PAGE_SHIFT,
    WORD_MASK,
    WORD_SHIFT,
    WORDS_PER_PAGE,
    check_word_aligned,
)
from repro.memory.page import Page
from repro.obs.tracer import CAT_PAGE_FAULT, PID_RUNTIME

__all__ = ["AddressSpace"]

#: Batch-entry kinds understood by :meth:`AddressSpace.apply_entries`.
#: These mirror ``repro.core.messages.WRITE`` / ``WRITE_BLOCK`` — the
#: memory layer cannot import the runtime layer, so the contract is
#: pinned by ``tests/memory/test_blocks.py``.
_ENTRY_WRITE = "W"
_ENTRY_WRITE_BLOCK = "WB"


class AddressSpace:
    """A page-table-backed, word-granular virtual memory."""

    __slots__ = (
        "name",
        "faulting",
        "pages",
        "pages_installed",
        "faults_taken",
        "obs",
        "owner_tid",
        "_dirty_pages",
        "_page_order",
    )

    def __init__(self, name: str, faulting: bool = False) -> None:
        self.name = name
        self.faulting = faulting
        self.pages: Dict[int, Page] = {}
        #: Pages installed via COA since the last reprotect (stats).
        self.pages_installed = 0
        #: Protection faults taken (stats; each one is a COA round trip).
        self.faults_taken = 0
        #: Observability hook: :func:`repro.obs.instrument` attaches the
        #: hub here (plus the owning unit's tid); ``None`` means no-op.
        self.obs = None
        self.owner_tid = -1
        #: Incrementally maintained count of dirty pages (kept by the
        #: write paths and by :meth:`Page.write` via the owner backref).
        self._dirty_pages = 0
        #: Sorted page numbers, invalidated on install/drop/materialize.
        self._page_order: List[int] | None = None

    # -- word access ------------------------------------------------------------

    def read(self, address: int) -> object:
        """Read the word at ``address``.

        In a faulting space, touching an uninstalled page raises
        :class:`ProtectionFault`.
        """
        # Fast path: aligned access to an installed page is one dict
        # lookup and one list index.  A word index derived from an
        # aligned non-negative address is always in range.
        page = self.pages.get(address >> PAGE_SHIFT)
        if page is not None and not address & WORD_MASK and address >= 0:
            return page.words[(address & PAGE_MASK) >> WORD_SHIFT]
        check_word_aligned(address)
        page = self._page_miss(address, address >> PAGE_SHIFT)
        return page.read((address & PAGE_MASK) >> WORD_SHIFT)

    def write(self, address: int, value: object) -> None:
        """Write ``value`` to the word at ``address``.

        Stores also fault on protected pages: the OS access protections
        DSMTX installs trip on any first touch (section 4.2).
        """
        page = self.pages.get(address >> PAGE_SHIFT)
        if page is not None and not address & WORD_MASK and address >= 0:
            index = (address & PAGE_MASK) >> WORD_SHIFT
            page.words[index] = value
            if not page.dirty_mask:
                self._dirty_pages += 1
            bit = 1 << index
            page.dirty_mask |= bit
            page.present_mask |= bit
            return
        check_word_aligned(address)
        page = self._page_miss(address, address >> PAGE_SHIFT)
        page.write((address & PAGE_MASK) >> WORD_SHIFT, value)

    def write_min(self, address: int, value: int) -> int:
        """Priority write: keep the *minimum* of ``value`` and the word
        already at ``address``; return the surviving winner.

        The commutative primitive behind deterministic reservations
        (Blelloch et al.): because min is order-independent, any
        interleaving of ``write_min`` calls over a round leaves the same
        winner in every slot, so reservation outcomes cannot depend on
        worker count or message arrival order.  An unwritten word reads
        back 0, which here means *empty* — callers encode priorities as
        positive integers (the reservation table stores ``iteration + 1``).
        """
        if value <= 0:
            raise UnmappedAddressError(
                f"write_min needs a positive priority, got {value!r}"
            )
        current = self.read(address)
        if current == 0 or value < current:
            self.write(address, value)
            return value
        return current

    def _page_miss(self, address: int, page_no: int) -> Page:
        if self.faulting:
            self.faults_taken += 1
            if self.obs is not None:
                self.obs.tracer.instant(
                    CAT_PAGE_FAULT, "protection_fault", PID_RUNTIME,
                    self.owner_tid, page=page_no, space=self.name,
                )
                self.obs.metrics.counter("memory.protection_faults").inc()
            raise ProtectionFault(address, page_no)
        page = Page(page_no)
        page.owner = self
        self.pages[page_no] = page
        self._page_order = None
        return page

    # -- block access ------------------------------------------------------------

    def read_block(self, address: int, count: int) -> list:
        """Read ``count`` consecutive words starting at ``address``.

        The run may straddle page boundaries; each page contributes one
        list-slice copy.  In a faulting space the first uninstalled page
        raises :class:`ProtectionFault` (the caller fetches it and
        retries — reads are idempotent).
        """
        if count <= 0:
            raise UnmappedAddressError(f"block length must be positive, got {count}")
        check_word_aligned(address)
        pages = self.pages
        out: list = []
        while count:
            page_no = address >> PAGE_SHIFT
            page = pages.get(page_no)
            if page is None:
                page = self._page_miss(address, page_no)
            index = (address & PAGE_MASK) >> WORD_SHIFT
            take = WORDS_PER_PAGE - index
            if take > count:
                take = count
            out += page.words[index:index + take]
            count -= take
            address += take << WORD_SHIFT
        return out

    def write_block(self, address: int, values: Sequence) -> None:
        """Write the run of words ``values`` starting at ``address``.

        Slice-assigns per page and updates the bitmasks with one mask OR
        per page.  In a faulting space an uninstalled page raises
        :class:`ProtectionFault` mid-run; the caller fetches the page
        and re-issues the whole block (idempotent: same values).
        """
        check_word_aligned(address)
        count = len(values)
        if count == 0:
            return
        pages = self.pages
        offset = 0
        while offset < count:
            page_no = address >> PAGE_SHIFT
            page = pages.get(page_no)
            if page is None:
                page = self._page_miss(address, page_no)
            index = (address & PAGE_MASK) >> WORD_SHIFT
            take = WORDS_PER_PAGE - index
            if take > count - offset:
                take = count - offset
            page.words[index:index + take] = values[offset:offset + take]
            if not page.dirty_mask:
                self._dirty_pages += 1
            run_mask = ((1 << take) - 1) << index
            page.dirty_mask |= run_mask
            page.present_mask |= run_mask
            offset += take
            address += take << WORD_SHIFT

    def dirty_words(self) -> List[Tuple[int, object]]:
        """Every dirty word as ``(address, value)``, ascending address.

        This is bitmask-driven write-set extraction: no dictionary diff,
        just bit scans over ``dirty_mask``.
        """
        out: List[Tuple[int, object]] = []
        append = out.append
        for page in self.iter_pages():
            mask = page.dirty_mask
            if not mask:
                continue
            base = page.number << PAGE_SHIFT
            words = page.words
            while mask:
                low = mask & -mask
                index = low.bit_length() - 1
                append((base | (index << WORD_SHIFT), words[index]))
                mask ^= low
        return out

    def extract_blocks(self) -> List[Tuple[int, list]]:
        """Present words as maximal run-length ``(address, values)``
        blocks, ascending address — the batch form of iterating
        ``page.items()`` word by word.  Used to seed replicas (standby
        image bootstrap) without a per-word Python loop.
        """
        blocks: List[Tuple[int, list]] = []
        append = blocks.append
        for page in self.iter_pages():
            mask = page.present_mask
            if not mask:
                continue
            base = page.number << PAGE_SHIFT
            words = page.words
            while mask:
                start = (mask & -mask).bit_length() - 1
                run = mask >> start
                # Length of the run of consecutive set bits from start:
                # position of the lowest zero bit of ``run``.
                length = ((run + 1) & ~run).bit_length() - 1
                append((base | (start << WORD_SHIFT), words[start:start + length]))
                mask &= ~(((1 << length) - 1) << start)
        return blocks

    # -- page management ---------------------------------------------------------

    def has_page(self, page_no: int) -> bool:
        """True if the page is installed (unprotected)."""
        return page_no in self.pages

    def get_page(self, page_no: int) -> Page:
        """Fetch (materializing in a non-faulting space) page ``page_no``.

        Negative page numbers are rejected up front: silently
        materializing a page at a negative address would hide workload
        address-arithmetic bugs behind phantom memory.
        """
        page = self.pages.get(page_no)
        if page is None:
            if page_no < 0:
                raise UnmappedAddressError(
                    f"page number {page_no} is negative; no page below "
                    "address 0 can exist"
                )
            if self.faulting:
                raise ProtectionFault(page_no * 4096, page_no)
            page = Page(page_no)
            page.owner = self
            self.pages[page_no] = page
            self._page_order = None
        return page

    def install_page(self, page: Page) -> None:
        """Install a COA-transferred page copy, clearing its protection."""
        self.pages[page.number] = page
        page.owner = self
        if page.dirty_mask:
            self._dirty_pages += 1
        self._page_order = None
        self.pages_installed += 1
        if self.obs is not None:
            self.obs.metrics.counter("memory.pages_installed").inc()

    def drop_page(self, page_no: int) -> None:
        """Discard one page, reinstating its protection."""
        page = self.pages.pop(page_no, None)
        if page is not None:
            page.owner = None
            if page.dirty_mask:
                self._dirty_pages -= 1
            self._page_order = None

    def reprotect_all(self) -> int:
        """Discard every page (recovery step four).

        Returns the number of pages dropped, which recovery uses to cost
        the protection-reinstatement work.
        """
        dropped = len(self.pages)
        for page in self.pages.values():
            page.owner = None
        self.pages.clear()
        self._dirty_pages = 0
        self._page_order = None
        return dropped

    @property
    def dirty_page_count(self) -> int:
        """Pages modified since installation (speculative state volume).

        O(1): the counter is maintained incrementally by the write
        paths, not recomputed by scanning the page table.
        """
        return self._dirty_pages

    # -- bulk operations -----------------------------------------------------------

    def apply_writes(self, writes: Iterable[Tuple[int, object]]) -> None:
        """Apply an ordered sequence of ``(address, value)`` writes.

        Used by the commit unit's group transaction commit: updates are
        applied in subTX (program) order, so the last update to a
        location wins (paper section 3.1).  Bumps the version of every
        touched page so later COA snapshots are distinguishable.

        Every address is validated *before* anything is applied: a
        negative or misaligned address raises
        :class:`~repro.errors.UnmappedAddressError` with master memory
        untouched, instead of failing after a partial apply.
        """
        if not isinstance(writes, (list, tuple)):
            writes = list(writes)
        for address, _value in writes:
            if address < 0 or address & WORD_MASK:
                check_word_aligned(address)
        pages = self.pages
        touched = set()
        for address, value in writes:
            page_no = address >> PAGE_SHIFT
            page = pages.get(page_no)
            if page is None:
                page = self.get_page(page_no)
            index = (address & PAGE_MASK) >> WORD_SHIFT
            page.words[index] = value
            if not page.dirty_mask:
                self._dirty_pages += 1
            bit = 1 << index
            page.dirty_mask |= bit
            page.present_mask |= bit
            touched.add(page_no)
        for page_no in touched:
            pages[page_no].bump_version()

    def apply_blocks(self, blocks: Iterable[Tuple[int, Sequence]]) -> int:
        """Apply ordered ``(address, values)`` run-length blocks.

        The batch analogue of :meth:`apply_writes`: validates every
        block up front, slice-assigns in order (last write wins), bumps
        each touched page once, and returns the number of words applied.
        """
        if not isinstance(blocks, (list, tuple)):
            blocks = list(blocks)
        for address, values in blocks:
            if address < 0 or address & WORD_MASK:
                check_word_aligned(address)
        words = 0
        touched = set()
        for address, values in blocks:
            count = len(values)
            words += count
            first_page = address >> PAGE_SHIFT
            last_page = (address + (count << WORD_SHIFT) - 1) >> PAGE_SHIFT if count else first_page
            touched.update(range(first_page, last_page + 1))
            self.write_block(address, values)
        pages = self.pages
        for page_no in touched:
            pages[page_no].bump_version()
        return words

    def apply_entries(self, entries: Iterable[tuple]) -> int:
        """Apply a commit group of log entries in order.

        Entries are runtime log records: per-word writes
        ``("W", address, value[, nbytes])`` and run-length blocks
        ``("WB", address, values)`` — the kind strings mirror
        ``repro.core.messages``.  Validates all addresses up front,
        applies last-wins in entry order, bumps each touched page once,
        and returns the number of words applied.
        """
        if not isinstance(entries, (list, tuple)):
            entries = list(entries)
        for entry in entries:
            address = entry[1]
            if address < 0 or address & WORD_MASK:
                check_word_aligned(address)
        pages = self.pages
        touched = set()
        words = 0
        for entry in entries:
            kind = entry[0]
            address = entry[1]
            if kind == _ENTRY_WRITE:
                page_no = address >> PAGE_SHIFT
                page = pages.get(page_no)
                if page is None:
                    page = self.get_page(page_no)
                index = (address & PAGE_MASK) >> WORD_SHIFT
                page.words[index] = entry[2]
                if not page.dirty_mask:
                    self._dirty_pages += 1
                bit = 1 << index
                page.dirty_mask |= bit
                page.present_mask |= bit
                touched.add(page_no)
                words += 1
            elif kind == _ENTRY_WRITE_BLOCK:
                values = entry[2]
                count = len(values)
                last = (address + (count << WORD_SHIFT) - 1) >> PAGE_SHIFT
                touched.update(range(address >> PAGE_SHIFT, last + 1))
                self.write_block(address, values)
                words += count
            else:  # pragma: no cover - defensive
                raise UnmappedAddressError(
                    f"apply_entries got unexpected entry kind {kind!r}"
                )
        for page_no in touched:
            pages[page_no].bump_version()
        return words

    def iter_pages(self) -> Iterator[Page]:
        """All installed pages, in page-number order (cached sort)."""
        order = self._page_order
        if order is None:
            order = self._page_order = sorted(self.pages)
        pages = self.pages
        for page_no in order:
            yield pages[page_no]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "faulting" if self.faulting else "master"
        return f"<AddressSpace {self.name!r} ({kind}) {len(self.pages)} pages>"
