"""Per-process virtual address spaces.

Every DSMTX unit — worker, try-commit, commit — executes in its own
physical memory (paper section 3.1).  An :class:`AddressSpace` models
one such memory as a page table of sparse :class:`~repro.memory.page.Page`
objects.

Two protection modes exist:

* ``faulting=False`` — the *master* space of the commit unit: pages
  materialize on demand, reads of untouched words return zero.
* ``faulting=True`` — a worker or try-commit space: every page starts
  access-protected; the first touch raises
  :class:`~repro.errors.ProtectionFault`, which the Copy-On-Access layer
  catches to fetch the committed page from the commit unit.  During
  misspeculation recovery, :meth:`reprotect_all` discards all local
  pages, reinstating the protections (paper section 4.3, step four).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from repro.errors import ProtectionFault
from repro.memory.layout import (
    PAGE_MASK,
    PAGE_SHIFT,
    WORD_MASK,
    WORD_SHIFT,
    check_word_aligned,
)
from repro.memory.page import Page
from repro.obs.tracer import CAT_PAGE_FAULT, PID_RUNTIME

__all__ = ["AddressSpace"]


class AddressSpace:
    """A page-table-backed, word-granular virtual memory."""

    __slots__ = (
        "name",
        "faulting",
        "pages",
        "pages_installed",
        "faults_taken",
        "obs",
        "owner_tid",
    )

    def __init__(self, name: str, faulting: bool = False) -> None:
        self.name = name
        self.faulting = faulting
        self.pages: Dict[int, Page] = {}
        #: Pages installed via COA since the last reprotect (stats).
        self.pages_installed = 0
        #: Protection faults taken (stats; each one is a COA round trip).
        self.faults_taken = 0
        #: Observability hook: :func:`repro.obs.instrument` attaches the
        #: hub here (plus the owning unit's tid); ``None`` means no-op.
        self.obs = None
        self.owner_tid = -1

    # -- word access ------------------------------------------------------------

    def read(self, address: int) -> object:
        """Read the word at ``address``.

        In a faulting space, touching an uninstalled page raises
        :class:`ProtectionFault`.
        """
        # Fast path: aligned access to an installed page is two dict
        # lookups.  A word index derived from an aligned non-negative
        # address is always in range, so the Page bounds check is skipped.
        page = self.pages.get(address >> PAGE_SHIFT)
        if page is not None and not address & WORD_MASK and address >= 0:
            return page.words.get((address & PAGE_MASK) >> WORD_SHIFT, 0)
        check_word_aligned(address)
        page = self._page_miss(address, address >> PAGE_SHIFT)
        return page.read((address & PAGE_MASK) >> WORD_SHIFT)

    def write(self, address: int, value: object) -> None:
        """Write ``value`` to the word at ``address``.

        Stores also fault on protected pages: the OS access protections
        DSMTX installs trip on any first touch (section 4.2).
        """
        page = self.pages.get(address >> PAGE_SHIFT)
        if page is not None and not address & WORD_MASK and address >= 0:
            page.words[(address & PAGE_MASK) >> WORD_SHIFT] = value
            page.dirty = True
            return
        check_word_aligned(address)
        page = self._page_miss(address, address >> PAGE_SHIFT)
        page.write((address & PAGE_MASK) >> WORD_SHIFT, value)

    def _page_miss(self, address: int, page_no: int) -> Page:
        if self.faulting:
            self.faults_taken += 1
            if self.obs is not None:
                self.obs.tracer.instant(
                    CAT_PAGE_FAULT, "protection_fault", PID_RUNTIME,
                    self.owner_tid, page=page_no, space=self.name,
                )
                self.obs.metrics.counter("memory.protection_faults").inc()
            raise ProtectionFault(address, page_no)
        page = Page(page_no)
        self.pages[page_no] = page
        return page

    # -- page management ---------------------------------------------------------

    def has_page(self, page_no: int) -> bool:
        """True if the page is installed (unprotected)."""
        return page_no in self.pages

    def get_page(self, page_no: int) -> Page:
        """Fetch (materializing in a non-faulting space) page ``page_no``."""
        page = self.pages.get(page_no)
        if page is None:
            if self.faulting:
                raise ProtectionFault(page_no * 4096, page_no)
            page = Page(page_no)
            self.pages[page_no] = page
        return page

    def install_page(self, page: Page) -> None:
        """Install a COA-transferred page copy, clearing its protection."""
        self.pages[page.number] = page
        self.pages_installed += 1
        if self.obs is not None:
            self.obs.metrics.counter("memory.pages_installed").inc()

    def drop_page(self, page_no: int) -> None:
        """Discard one page, reinstating its protection."""
        self.pages.pop(page_no, None)

    def reprotect_all(self) -> int:
        """Discard every page (recovery step four).

        Returns the number of pages dropped, which recovery uses to cost
        the protection-reinstatement work.
        """
        dropped = len(self.pages)
        self.pages.clear()
        return dropped

    @property
    def dirty_page_count(self) -> int:
        """Pages modified since installation (speculative state volume)."""
        return sum(1 for page in self.pages.values() if page.dirty)

    # -- bulk operations -----------------------------------------------------------

    def apply_writes(self, writes: Iterable[Tuple[int, object]]) -> None:
        """Apply an ordered sequence of ``(address, value)`` writes.

        Used by the commit unit's group transaction commit: updates are
        applied in subTX (program) order, so the last update to a
        location wins (paper section 3.1).  Bumps the version of every
        touched page so later COA snapshots are distinguishable.
        """
        pages = self.pages
        touched: set[int] = set()
        for address, value in writes:
            page_no = address >> PAGE_SHIFT
            page = pages.get(page_no)
            if page is None or address & WORD_MASK or address < 0:
                check_word_aligned(address)
                page = self.get_page(page_no)
            page.words[(address & PAGE_MASK) >> WORD_SHIFT] = value
            page.dirty = True
            touched.add(page_no)
        for page_no in touched:
            pages[page_no].bump_version()

    def iter_pages(self) -> Iterator[Page]:
        """All installed pages, in page-number order."""
        for page_no in sorted(self.pages):
            yield self.pages[page_no]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "faulting" if self.faulting else "master"
        return f"<AddressSpace {self.name!r} ({kind}) {len(self.pages)} pages>"
