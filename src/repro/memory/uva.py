"""Unified Virtual Address space (paper section 3.3).

UVA gives every thread the same view of virtual addresses: a pointer
allocated by thread 1 is valid on thread 2 with no translation.  It
works by statically assigning ownership of non-overlapping virtual
regions to threads and encoding the owner in the upper address bits.
Allocation requests are satisfied from the requester's own region, so no
synchronization is needed until a thread outgrows its region.

DSMTX hooks the system ``malloc``/``free`` rather than introducing new
allocation functions (unlike Cluster-STM), which is why the Table 1 API
has no custom allocator entries.  :class:`UnifiedVirtualAddressSpace`
plays that role here: workloads and runtime units allocate through it
and receive globally meaningful addresses.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict

from repro.errors import AllocationError, OwnershipError
from repro.memory.layout import (
    MAX_OWNERS,
    PAGE_BYTES,
    REGION_BYTES,
    WORD_BYTES,
    owner_of,
    region_base,
)

__all__ = ["UnifiedVirtualAddressSpace"]


class _RegionAllocator:
    """Bump allocator for one thread's region, with free accounting."""

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self.base = region_base(owner)
        self.cursor = self.base
        self.limit = self.base + REGION_BYTES
        self.live_allocations: Dict[int, int] = {}

    def allocate(self, nbytes: int, align: int) -> int:
        cursor = self.cursor
        if cursor % align:
            cursor += align - cursor % align
        if cursor + nbytes > self.limit:
            raise AllocationError(
                f"region of owner {self.owner} exhausted "
                f"({cursor + nbytes - self.base} > {REGION_BYTES} bytes)"
            )
        self.cursor = cursor + nbytes
        self.live_allocations[cursor] = nbytes
        return cursor

    def free(self, address: int) -> int:
        try:
            return self.live_allocations.pop(address)
        except KeyError:
            raise AllocationError(
                f"free of address {address:#x} that is not a live allocation"
            ) from None


class UnifiedVirtualAddressSpace:
    """The cluster-wide virtual address map: ownership + allocation.

    This object holds no memory *contents* — values live in each unit's
    :class:`~repro.memory.address_space.AddressSpace`.  It is the shared
    naming convention (static region ownership), so modelling it as one
    Python object does not smuggle shared state between simulated nodes:
    the dynamic part (each region's bump pointer) is touched only by its
    owning thread.
    """

    def __init__(self, owners: int) -> None:
        if not 1 <= owners <= MAX_OWNERS:
            raise OwnershipError(f"owners must be in [1, {MAX_OWNERS}], got {owners}")
        self.owners = owners
        self._regions = [_RegionAllocator(owner) for owner in range(owners)]
        self.bytes_allocated = 0
        #: Page ranges declared read-only for the parallel region:
        #: (first_page, last_page) inclusive.  Input data marked this
        #: way may be served by COA read replicas, since no committed
        #: write can ever touch it.
        self._read_only_page_ranges: list[tuple[int, int]] = []
        #: Lazily rebuilt sorted view for binary-search lookups
        #: (allocations never overlap, so ranges are disjoint).
        self._read_only_sorted: list[tuple[int, int]] = []
        self._read_only_starts: list[int] | None = []

    # -- allocation (the malloc/free hooks) ------------------------------------

    def malloc(self, owner: int, nbytes: int, align: int = WORD_BYTES,
               read_only: bool = False) -> int:
        """Allocate ``nbytes`` from ``owner``'s region; returns the address.

        ``read_only=True`` declares the allocation immutable for the
        parallel region (input files, dictionaries, model tables).
        """
        if nbytes <= 0:
            raise AllocationError(f"allocation size must be positive, got {nbytes}")
        if align <= 0 or align % WORD_BYTES:
            raise AllocationError(f"alignment must be a positive multiple of {WORD_BYTES}")
        region = self._region(owner)
        address = region.allocate(nbytes, align)
        self.bytes_allocated += nbytes
        if read_only:
            first_page = address // PAGE_BYTES
            last_page = (address + nbytes - 1) // PAGE_BYTES
            self._read_only_page_ranges.append((first_page, last_page))
            self._read_only_starts = None
        return address

    def malloc_page_aligned(self, owner: int, nbytes: int,
                            read_only: bool = False) -> int:
        """Allocate page-aligned storage (arrays crossing page bounds)."""
        return self.malloc(owner, nbytes, align=PAGE_BYTES, read_only=read_only)

    def page_is_read_only(self, page_no: int) -> bool:
        """True if the page lies in a declared read-only allocation.

        Binary search over range starts: the commit unit consults this
        for every committed write entry when COA replicas are on, so a
        linear scan over all declarations is on the commit critical
        path.  The sorted view is rebuilt lazily after a declaration.
        """
        starts = self._read_only_starts
        if starts is None:
            ranges = sorted(self._read_only_page_ranges)
            self._read_only_sorted = ranges
            starts = self._read_only_starts = [first for first, _last in ranges]
        position = bisect_right(starts, page_no)
        if not position:
            return False
        return page_no <= self._read_only_sorted[position - 1][1]

    def free(self, address: int) -> None:
        """Release an allocation.  The owner is recovered from the
        address itself — the point of the UVA encoding."""
        region = self._region(owner_of(address))
        nbytes = region.free(address)
        self.bytes_allocated -= nbytes

    # -- ownership queries --------------------------------------------------------

    def owner_of(self, address: int) -> int:
        """Thread owning the region that contains ``address``."""
        owner = owner_of(address)
        if owner >= self.owners:
            raise OwnershipError(
                f"address {address:#x} belongs to owner {owner}, "
                f"but only {self.owners} owners exist"
            )
        return owner

    def region_bounds(self, owner: int) -> tuple[int, int]:
        """``(base, limit)`` byte addresses of ``owner``'s region."""
        region = self._region(owner)
        return region.base, region.limit

    def _region(self, owner: int) -> _RegionAllocator:
        if not 0 <= owner < self.owners:
            raise OwnershipError(f"owner {owner} outside [0, {self.owners})")
        return self._regions[owner]
