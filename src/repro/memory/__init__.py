"""Memory substrate: pages, address spaces, UVA, and versioned buffers.

Models the memory system DSMTX builds on: per-process paged virtual
memories with access protection (the mechanism behind Copy-On-Access)
and the Unified Virtual Address space that makes pointers portable
across nodes without translation.
"""

from repro.memory.address_space import AddressSpace
from repro.memory.layout import (
    MAX_OWNERS,
    PAGE_BYTES,
    REGION_BYTES,
    WORD_BYTES,
    WORDS_PER_PAGE,
    check_word_aligned,
    owner_of,
    page_base,
    page_number,
    region_base,
    word_index,
)
from repro.memory.page import Page
from repro.memory.uva import UnifiedVirtualAddressSpace
from repro.memory.versioned import VersionedBuffer

__all__ = [
    "AddressSpace",
    "Page",
    "UnifiedVirtualAddressSpace",
    "VersionedBuffer",
    "WORD_BYTES",
    "PAGE_BYTES",
    "WORDS_PER_PAGE",
    "REGION_BYTES",
    "MAX_OWNERS",
    "check_word_aligned",
    "page_number",
    "page_base",
    "word_index",
    "owner_of",
    "region_base",
]
