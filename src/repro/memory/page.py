"""Memory pages.

A :class:`Page` stores word values sparsely (index -> value) with a
default of zero for never-written words, mirroring demand-zeroed pages.
Pages carry a monotonically increasing ``version`` so Copy-On-Access
snapshots can be identified (Figure 3(b) shows workers holding different
versions of the same page), and a ``dirty`` flag so recovery can count
the pages whose protection must be reinstated.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.memory.layout import WORDS_PER_PAGE

__all__ = ["Page"]


class Page:
    """One 4 KiB page of word-granular values."""

    __slots__ = ("number", "words", "version", "dirty")

    def __init__(self, number: int, words: Dict[int, object] | None = None, version: int = 0) -> None:
        self.number = number
        self.words: Dict[int, object] = dict(words) if words else {}
        self.version = version
        self.dirty = False

    def read(self, index: int) -> object:
        """Value of word ``index`` (zero if never written)."""
        self._check_index(index)
        return self.words.get(index, 0)

    def write(self, index: int, value: object) -> None:
        """Set word ``index`` to ``value``; marks the page dirty."""
        self._check_index(index)
        self.words[index] = value
        self.dirty = True

    def snapshot(self) -> "Page":
        """An independent copy at the same version (a COA transfer)."""
        copy = Page(self.number, self.words, self.version)
        return copy

    def bump_version(self) -> None:
        """Advance the version (called when committed state changes)."""
        self.version += 1

    def items(self) -> Iterator[Tuple[int, object]]:
        """Iterate over (word index, value) pairs actually present."""
        return iter(self.words.items())

    @staticmethod
    def _check_index(index: int) -> None:
        if not 0 <= index < WORDS_PER_PAGE:
            raise IndexError(f"word index {index} outside [0, {WORDS_PER_PAGE})")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Page {self.number} v{self.version} {len(self.words)} words>"
