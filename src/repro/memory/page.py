"""Memory pages.

A :class:`Page` stores its words in a fixed-size flat array (one slot
per word, zero-filled for never-written words, mirroring demand-zeroed
pages) plus two word-granular bitmasks:

* ``present_mask`` — words explicitly written or installed.  This is
  the page's *population*: :meth:`items` iterates it, and the
  word-granularity COA ablation uses it for per-word presence checks.
* ``dirty_mask`` — words written since the page entered its current
  address space.  Write-set extraction
  (:meth:`~repro.memory.address_space.AddressSpace.dirty_words`) reads
  it directly instead of diffing dictionaries.

Word values stay boxed Python objects (workloads store ints, floats and
strings), so the backing array is a plain list — a contiguous C array
of object pointers — rather than ``array('q')``/numpy, which would
coerce values and change committed results.  The flat layout is what
makes block reads/writes single slice operations.

Pages carry a monotonically increasing ``version`` so Copy-On-Access
snapshots can be identified (Figure 3(b) shows workers holding different
versions of the same page), and a ``dirty`` flag (derived from
``dirty_mask``) so recovery can count the pages whose protection must be
reinstated.  ``owner`` backrefs the :class:`AddressSpace` the page is
installed in, letting the space keep an O(1) dirty-page counter.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.memory.layout import WORDS_PER_PAGE

__all__ = ["Page"]


class Page:
    """One 4 KiB page of word-granular values."""

    __slots__ = ("number", "words", "version", "present_mask", "dirty_mask", "owner")

    def __init__(self, number: int, words: Dict[int, object] | None = None, version: int = 0) -> None:
        self.number = number
        #: Flat word array, one slot per word (zero = never written).
        self.words: list = [0] * WORDS_PER_PAGE
        self.version = version
        self.present_mask = 0
        self.dirty_mask = 0
        #: AddressSpace this page is installed in (dirty accounting).
        self.owner = None
        if words:
            array = self.words
            mask = 0
            for index, value in words.items():
                self._check_index(index)
                array[index] = value
                mask |= 1 << index
            self.present_mask = mask

    @property
    def dirty(self) -> bool:
        """True if any word was written since installation."""
        return self.dirty_mask != 0

    def read(self, index: int) -> object:
        """Value of word ``index`` (zero if never written)."""
        self._check_index(index)
        return self.words[index]

    def write(self, index: int, value: object) -> None:
        """Set word ``index`` to ``value``; marks the word dirty."""
        self._check_index(index)
        self.words[index] = value
        if not self.dirty_mask and self.owner is not None:
            self.owner._dirty_pages += 1
        bit = 1 << index
        self.dirty_mask |= bit
        self.present_mask |= bit

    def install_word(self, index: int, value: object) -> None:
        """Set word ``index`` without dirtying it (a committed copy
        pulled in by the word-granularity COA ablation)."""
        self._check_index(index)
        self.words[index] = value
        self.present_mask |= 1 << index

    def snapshot(self) -> "Page":
        """An independent copy at the same version (a COA transfer)."""
        copy = Page.__new__(Page)
        copy.number = self.number
        copy.words = self.words[:]
        copy.version = self.version
        copy.present_mask = self.present_mask
        copy.dirty_mask = 0
        copy.owner = None
        return copy

    def bump_version(self) -> None:
        """Advance the version (called when committed state changes)."""
        self.version += 1

    def items(self) -> Iterator[Tuple[int, object]]:
        """Iterate over (word index, value) pairs actually present, in
        ascending index order."""
        mask = self.present_mask
        words = self.words
        while mask:
            low = mask & -mask
            index = low.bit_length() - 1
            yield index, words[index]
            mask ^= low

    @property
    def word_count(self) -> int:
        """Number of words actually present."""
        return self.present_mask.bit_count()

    @staticmethod
    def _check_index(index: int) -> None:
        if not 0 <= index < WORDS_PER_PAGE:
            raise IndexError(f"word index {index} outside [0, {WORDS_PER_PAGE})")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Page {self.number} v{self.version} {self.word_count} words>"
