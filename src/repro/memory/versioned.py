"""Dynamic memory versioning support.

Several benchmarks (164.gzip, 256.bzip2, 464.h264ref) reuse a block
array across iterations; the resulting false (output/anti) memory
dependences would serialize the loop.  DSMTX breaks them automatically
by *memory versioning* (Table 2, "MV"): every concurrently outstanding
MTX sees its own version of the buffer.

In the runtime this falls out of workers having private memories, but
the versions still occupy distinct virtual addresses so that forwarded
stores and committed data do not collide.  :class:`VersionedBuffer`
manages a bounded pool of version slots, handing iteration *i* the slot
``i mod depth`` — the same bounded multi-buffering a real implementation
uses so version storage does not grow with the iteration count.
"""

from __future__ import annotations

from repro.errors import AllocationError
from repro.memory.uva import UnifiedVirtualAddressSpace

__all__ = ["VersionedBuffer"]


class VersionedBuffer:
    """A logical buffer with ``depth`` concurrently live versions."""

    def __init__(
        self,
        uva: UnifiedVirtualAddressSpace,
        owner: int,
        nbytes: int,
        depth: int,
        name: str = "buffer",
    ) -> None:
        if depth < 1:
            raise AllocationError(f"version depth must be >= 1, got {depth}")
        self.name = name
        self.nbytes = nbytes
        self.depth = depth
        self._slots = [uva.malloc_page_aligned(owner, nbytes) for _ in range(depth)]

    def base_for_iteration(self, iteration: int) -> int:
        """Base address of the version slot assigned to ``iteration``."""
        if iteration < 0:
            raise AllocationError(f"iteration must be >= 0, got {iteration}")
        return self._slots[iteration % self.depth]

    def element(self, iteration: int, index: int, element_bytes: int = 8) -> int:
        """Address of ``index``-th element in the iteration's version."""
        offset = index * element_bytes
        if offset + element_bytes > self.nbytes:
            raise AllocationError(
                f"element {index} (at byte {offset}) outside buffer of {self.nbytes} bytes"
            )
        return self.base_for_iteration(iteration) + offset

    @property
    def slots(self) -> list[int]:
        """Base addresses of all version slots."""
        return list(self._slots)
