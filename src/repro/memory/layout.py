"""Address-space layout constants and address arithmetic.

DSMTX operates at two granularities (paper section 4.2): memory *pages*
(4096 bytes on the evaluation platform) for Copy-On-Access, and *words*
(8 bytes) for forwarded speculative stores.  All addresses are byte
addresses; word operations require 8-byte alignment.

The Unified Virtual Address space (section 3.3) encodes region ownership
in the upper bits of the virtual address: each thread owns a
``REGION_BYTES``-sized slice, and ``owner_of`` recovers the owning
thread from any address.
"""

from __future__ import annotations

from repro.errors import UnmappedAddressError

__all__ = [
    "WORD_BYTES",
    "PAGE_BYTES",
    "WORDS_PER_PAGE",
    "PAGE_SHIFT",
    "PAGE_MASK",
    "WORD_SHIFT",
    "WORD_MASK",
    "REGION_BITS",
    "REGION_BYTES",
    "MAX_OWNERS",
    "page_number",
    "page_base",
    "word_index",
    "check_word_aligned",
    "owner_of",
    "region_base",
]

#: Bytes per machine word (64-bit platform).
WORD_BYTES = 8
#: Bytes per memory page (4096 on the paper's platform).
PAGE_BYTES = 4096
#: Words per page.
WORDS_PER_PAGE = PAGE_BYTES // WORD_BYTES

#: Shift/mask forms of the (power-of-two) granularities, for the memory
#: hot path: ``address >> PAGE_SHIFT`` is the page number and
#: ``(address & PAGE_MASK) >> WORD_SHIFT`` the word index.
PAGE_SHIFT = PAGE_BYTES.bit_length() - 1
PAGE_MASK = PAGE_BYTES - 1
WORD_SHIFT = WORD_BYTES.bit_length() - 1
WORD_MASK = WORD_BYTES - 1

#: Bits of address space owned by each thread (16 GiB regions).
REGION_BITS = 34
#: Bytes in one ownership region.
REGION_BYTES = 1 << REGION_BITS
#: Number of distinct region owners supported (upper bits of a 48-bit VA).
MAX_OWNERS = 1 << (48 - REGION_BITS)


def check_word_aligned(address: int) -> None:
    """Raise if ``address`` is not word-aligned or is negative."""
    if address < 0:
        raise UnmappedAddressError(f"negative address {address:#x}")
    if address & WORD_MASK:
        raise UnmappedAddressError(f"address {address:#x} is not {WORD_BYTES}-byte aligned")


def page_number(address: int) -> int:
    """Page number containing ``address``."""
    return address >> PAGE_SHIFT


def page_base(page_no: int) -> int:
    """First byte address of page ``page_no``."""
    return page_no << PAGE_SHIFT


def word_index(address: int) -> int:
    """Index of the word within its page (0 .. WORDS_PER_PAGE-1)."""
    return (address & PAGE_MASK) >> WORD_SHIFT


def owner_of(address: int) -> int:
    """Region owner encoded in the upper bits of ``address``."""
    if address < 0:
        raise UnmappedAddressError(f"negative address {address:#x}")
    return address >> REGION_BITS


def region_base(owner: int) -> int:
    """First byte address of the region owned by thread ``owner``."""
    if not 0 <= owner < MAX_OWNERS:
        raise UnmappedAddressError(f"owner {owner} outside [0, {MAX_OWNERS})")
    return owner << REGION_BITS
