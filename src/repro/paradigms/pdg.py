"""Program Dependence Graphs (paper section 2.1, Figure 1(b)).

A PDG has one node per loop statement and edges for data and control
dependences, each either intra-iteration or loop-carried.  The
parallelization techniques consult it:

* DOALL is legal only when no loop-carried dependence exists;
* DOACROSS/DSWP handle loop-carried dependences via communication;
* DSWP partitions the loop so that every dependence *recurrence* (a
  strongly connected component containing a loop-carried edge) stays
  within one pipeline stage, making all inter-stage communication
  acyclic — the property that buys latency tolerance;
* speculation removes edges that rarely manifest at run time
  (section 2.1's X-marked edges), growing the parallel region.
"""

from __future__ import annotations

from dataclasses import dataclass
import networkx as nx

from repro.errors import ParadigmError

__all__ = ["DependenceKind", "Dependence", "ProgramDependenceGraph", "example_list_loop"]


class DependenceKind:
    """Dependence categories."""

    DATA = "data"
    CONTROL = "control"

    ALL = (DATA, CONTROL)


@dataclass(frozen=True)
class Dependence:
    """One PDG edge."""

    src: str
    dst: str
    kind: str = DependenceKind.DATA
    #: True for an inter-iteration (loop-carried) dependence.
    loop_carried: bool = False
    #: True if profiling says this dependence rarely manifests, making
    #: it a candidate for speculation (an X edge in Figure 1(b)).
    speculatable: bool = False

    def __post_init__(self) -> None:
        if self.kind not in DependenceKind.ALL:
            raise ParadigmError(f"unknown dependence kind {self.kind!r}")


class ProgramDependenceGraph:
    """PDG over the statements of one loop body."""

    def __init__(self) -> None:
        self._graph = nx.MultiDiGraph()
        self._dependences: list[Dependence] = []

    # -- construction -------------------------------------------------------------

    def add_statement(self, name: str, cycles: float = 1.0) -> None:
        """Add a statement with its per-iteration cost."""
        if name in self._graph:
            raise ParadigmError(f"statement {name!r} already present")
        self._graph.add_node(name, cycles=cycles)

    def add_dependence(self, dependence: Dependence) -> None:
        """Add a dependence edge; both endpoints must exist."""
        for endpoint in (dependence.src, dependence.dst):
            if endpoint not in self._graph:
                raise ParadigmError(f"unknown statement {endpoint!r}")
        self._graph.add_edge(dependence.src, dependence.dst, dependence=dependence)
        self._dependences.append(dependence)

    # -- queries ---------------------------------------------------------------------

    @property
    def statements(self) -> list[str]:
        return list(self._graph.nodes)

    def cycles_of(self, statement: str) -> float:
        return self._graph.nodes[statement]["cycles"]

    @property
    def dependences(self) -> list[Dependence]:
        return list(self._dependences)

    def loop_carried(self) -> list[Dependence]:
        """All inter-iteration dependences."""
        return [d for d in self._dependences if d.loop_carried]

    def is_doall(self) -> bool:
        """True if DOALL applies: no loop-carried dependences at all."""
        return not self.loop_carried()

    def sccs(self) -> list[frozenset[str]]:
        """Strongly connected components, in topological order of the
        condensed DAG.  Loop-carried edges participate: a statement
        feeding itself next iteration is a recurrence and forms (or
        joins) an SCC."""
        condensed = nx.condensation(self._graph)
        order = nx.topological_sort(condensed)
        return [frozenset(condensed.nodes[n]["members"]) for n in order]

    def recurrences(self) -> list[frozenset[str]]:
        """SCCs that actually contain a dependence cycle (more than one
        statement, or a self-loop)."""
        result = []
        for component in self.sccs():
            if len(component) > 1:
                result.append(component)
                continue
            (statement,) = component
            if self._graph.has_edge(statement, statement):
                result.append(component)
        return result

    # -- speculation ----------------------------------------------------------------------

    def speculate(self, predicate=None) -> "ProgramDependenceGraph":
        """A new PDG with speculated dependences removed.

        By default every ``speculatable`` edge is removed (the compiler
        speculates everything profiling supports); ``predicate`` can
        narrow the choice.
        """
        if predicate is None:
            predicate = lambda d: d.speculatable  # noqa: E731
        pruned = ProgramDependenceGraph()
        for statement in self._graph.nodes:
            pruned.add_statement(statement, self.cycles_of(statement))
        for dependence in self._dependences:
            if not predicate(dependence):
                pruned.add_dependence(dependence)
        return pruned


def example_list_loop() -> ProgramDependenceGraph:
    """The paper's running example (Figure 1(a,b)).

    A: while(node) — loop condition;
    B: node = node->next;
    C: res = work(node) — work may modify the list;
    D: write(res).
    """
    pdg = ProgramDependenceGraph()
    for name in "ABCD":
        pdg.add_statement(name, cycles=1.0)
    add = pdg.add_dependence
    control, data = DependenceKind.CONTROL, DependenceKind.DATA
    # A controls everything in the body; the backward control edges to
    # the next iteration are speculatable ("the loop executes many
    # times").
    add(Dependence("A", "B", control))
    add(Dependence("A", "C", control))
    add(Dependence("A", "D", control))
    add(Dependence("B", "A", data, loop_carried=True))
    add(Dependence("B", "B", data, loop_carried=True))
    add(Dependence("B", "C", data))
    add(Dependence("C", "D", data))
    # "work" may modify the list: memory dependences back into the
    # traversal, speculated not to manifest.
    add(Dependence("C", "B", data, loop_carried=True, speculatable=True))
    add(Dependence("C", "C", data, loop_carried=True, speculatable=True))
    add(Dependence("D", "D", data, loop_carried=True, speculatable=True))
    return pdg
