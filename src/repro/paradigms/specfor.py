"""The ``speculative_for`` paradigm: round-based deterministic reservations.

A genuinely different conflict-resolution paradigm from the paper's
TLS / Spec-DSWP pipeline (the PBBS / parlaylib ``speculative_for``):
instead of optimistic run-ahead with squash-and-replay, each round takes
a *prefix* of the pending iterations and drives it through three phases
against the :class:`~repro.core.reservations.ReservationCommitService`:

1. **reserve** — every iteration computes, on the round-start snapshot,
   the shared slots it wants to mutate and reserves them with
   ``write_min`` (lowest iteration index wins);
2. **check** — an iteration wins iff it holds *every* slot it reserved;
3. **commit** — winners' write-sets are group-committed in iteration
   order; losers are carried into the next round.

Because ``write_min`` is commutative and every worker computes against
the same round-start snapshot, the set of winners — and therefore the
committed memory image, the round count, and every failure statistic —
depends only on the iteration space, never on worker count or message
arrival order.  Only the simulated *time* changes with workers.

Three entry points:

* :func:`speculative_for` — the pure host-level scheduler (no simulated
  cluster).  The reference model the property and equivalence tests
  compare everything against.
* :class:`SpecForSystem` — the simulated runtime: ``workers`` worker
  units plus one reservation-commit service unit on the same
  cluster/MPI substrate as :class:`~repro.core.runtime.DSMTXSystem`,
  with all protocol traffic priced through the interconnect.
* :func:`ensure_reservation_site` — plan validation: rejects
  ``speculative_for`` on workloads that define no reservation site,
  with a did-you-mean pointing at the workloads that do.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.cluster import MPI, Interconnect, Machine, place_units
from repro.core.config import SystemConfig
from repro.core.messages import (
    ENTRY_BYTES,
    MARKER_BYTES,
    SF_REPL_CHECKPOINT,
    SF_REPL_ROUND,
    SF_STOP,
    ControlEnvelope,
)
from repro.core.reservations import (
    ReservationCommitService,
    ReservationStats,
    RoundRecord,
    next_round_size,
)
from repro.core.runtime import RunResult, place_standby
from repro.core.state import SystemState
from repro.core.stats import CheckpointRecord, FailureRecord, RunStats
from repro.core.transport import ReliableTransport
from repro.errors import (
    ClusterFailedError,
    ConfigurationError,
    NodeCrashed,
    ParadigmError,
    ProcessInterrupt,
)
from repro.memory import AddressSpace, UnifiedVirtualAddressSpace
from repro.memory.layout import PAGE_SHIFT, WORD_SHIFT
from repro.sim import Environment, Store

__all__ = [
    "DONE",
    "TRY_COMMIT",
    "TRY_AGAIN",
    "ReservationSite",
    "StepContext",
    "speculative_for",
    "SpecForSystem",
    "ensure_reservation_site",
]

# Iteration statuses returned by a step's ``reserve`` phase (the
# parlaylib ``enum status { done, try_commit, try_again }``).
DONE = 0
TRY_COMMIT = 1
TRY_AGAIN = 2

_TAG_ROUND = "sf_round"
_TAG_RESERVE = "sf_reserve"
_TAG_VERDICT = "sf_verdict"
_TAG_COMMIT = "sf_commit"
#: Single tag for the fault-tolerant path: framed traffic multiplexes
#: over one reliable-transport inbox per unit, so the protocol phase
#: travels in the message itself, not the mailbox key.
_TAG_FT = "sf_ft"

# Fault-tolerant protocol message kinds (first element of the payload).
_MSG_ROUND = "round"
_MSG_RESERVE = "reserve"
_MSG_VERDICT = "verdict"
_MSG_COMMIT = "commit"
#: Shared with the reservation-service standby (see core/messages.py).
_MSG_STOP = SF_STOP
_MSG_REPL_ROUND = SF_REPL_ROUND
_MSG_REPL_CHECKPOINT = SF_REPL_CHECKPOINT


@dataclass(frozen=True)
class ReservationSite:
    """A workload's ``write_min`` reservation site.

    ``slots`` is the size of the reservation table — one slot per
    contendable object (vertex, list node, ...); ``label`` names what a
    slot stands for in reports.
    """

    slots: int
    label: str = "slot"

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ConfigurationError(
                f"a reservation site needs at least one slot, got {self.slots}"
            )


class StepContext:
    """Execution context for one iteration of a ``speculative_for`` step.

    Unlike the generator contexts of :mod:`repro.core.context`, steps
    are plain functions: they run to completion against a worker's
    round-start snapshot, and their cost is charged as one deferred
    lump.  ``reserve`` is only legal in the reserve phase, ``write``
    only in the commit phase; commit-phase reads see the iteration's
    own writes overlaid on the snapshot (read-own-write), never another
    same-round iteration's — that blindness is what makes the outcome
    worker-count independent.
    """

    RESERVE = "reserve"
    COMMIT = "commit"

    __slots__ = (
        "iteration", "phase", "reserved", "writes", "cycles",
        "_space", "_overlay", "_access_cycles",
    )

    def __init__(
        self, space, iteration: int, phase: str, access_cycles: float = 0.0
    ) -> None:
        self.iteration = iteration
        self.phase = phase
        #: Slots reserved during the reserve phase, in request order.
        self.reserved: list = []
        #: (address, value) writes buffered during the commit phase.
        self.writes: list = []
        #: Deferred cycle cost accumulated by this iteration's step.
        self.cycles = 0.0
        self._space = space
        self._overlay: dict = {}
        self._access_cycles = access_cycles

    def read(self, address: int) -> Any:
        """Read a word from the round-start snapshot (plus this
        iteration's own writes, in the commit phase)."""
        self.cycles += self._access_cycles
        if self._overlay:
            try:
                return self._overlay[address]
            except KeyError:
                pass
        return self._space.read(address)

    def write(self, address: int, value: Any) -> None:
        """Buffer a word write (commit phase only); the service applies
        winners' buffers in iteration order."""
        if self.phase != self.COMMIT:
            raise ParadigmError(
                f"iteration {self.iteration} wrote in its {self.phase} phase; "
                "speculative_for steps may only write while committing"
            )
        self.cycles += self._access_cycles
        self._overlay[address] = value
        self.writes.append((address, value))

    def reserve(self, slot: int) -> None:
        """Request ``write_min(slot, iteration)`` (reserve phase only)."""
        if self.phase != self.RESERVE:
            raise ParadigmError(
                f"iteration {self.iteration} reserved in its {self.phase} "
                "phase; reservations belong to the reserve phase"
            )
        self.cycles += self._access_cycles
        self.reserved.append(slot)

    def compute(self, cycles: float) -> None:
        """Account ``cycles`` of step computation."""
        self.cycles += cycles


# -- shared phase execution (one source of truth for pure + simulated) ---------


def _run_reserve(step, space, iteration: int, access_cycles: float = 0.0):
    """Run one iteration's reserve phase; returns (status, slots, cycles)."""
    ctx = StepContext(space, iteration, StepContext.RESERVE, access_cycles)
    status = step.reserve(ctx, iteration)
    if status not in (DONE, TRY_COMMIT, TRY_AGAIN):
        raise ParadigmError(
            f"reserve({iteration}) returned {status!r}, not one of "
            "DONE/TRY_COMMIT/TRY_AGAIN"
        )
    if status != TRY_COMMIT and ctx.reserved:
        raise ParadigmError(
            f"reserve({iteration}) reserved slots but returned status "
            f"{status}; only TRY_COMMIT iterations hold reservations"
        )
    return status, tuple(ctx.reserved), ctx.cycles


def _run_commit(step, space, iteration: int, access_cycles: float = 0.0):
    """Run one winner's commit phase; returns (ok, writes, cycles)."""
    ctx = StepContext(space, iteration, StepContext.COMMIT, access_cycles)
    ok = step.commit(ctx, iteration)
    return bool(ok), tuple(ctx.writes), ctx.cycles


class _RoundEngine:
    """Service-side round scheduler: batch selection, adjudication,
    group commit, carry-forward, and round-size adaptation.

    Shared verbatim between :func:`speculative_for` and
    :class:`SpecForSystem` so that winners, round records, and every
    statistic are identical by construction.  All decisions here are
    functions of the iteration space and the committed state only —
    the round size in particular never consults the worker count.
    """

    def __init__(
        self, service: ReservationCommitService, iterations: int, granularity: int
    ) -> None:
        if iterations < 1:
            raise ConfigurationError("speculative_for needs at least one iteration")
        if granularity < 1:
            raise ConfigurationError(f"granularity must be >= 1, got {granularity}")
        self.service = service
        self.pending = list(range(iterations))
        #: Largest round: a 1/granularity slice of the iteration space.
        self.max_round = iterations // granularity + 1
        self.size = max(1, self.max_round // 2)
        self.round_index = 0
        #: Committed (address, value) entries not yet broadcast to the
        #: workers' snapshots; starts as the built program state.
        self.delta = _snapshot_entries(service.master)
        self._batch: list = []
        self._rest: list = []
        self._decisions: list = []
        self._losers: list = []
        self._retries: list = []
        self._finished: list = []
        #: Table-counter checkpoint taken at round start; a fault-aborted
        #: round rolls back to it so the re-executed round re-applies the
        #: identical reservations from the identical state.
        self._table_mark = self.service.table.counters()
        #: Iterations carried by the last completed round (the list, not
        #: just the count): the hot standby mirrors the pending queue
        #: from it.
        self.last_carried: list = []

    @classmethod
    def resume(
        cls,
        service: ReservationCommitService,
        iterations: int,
        granularity: int,
        pending: Sequence[int],
        size: int,
        round_index: int,
        delta: Sequence[tuple],
    ) -> "_RoundEngine":
        """Rebuild an engine at a replicated round boundary (promotion).

        ``pending``/``size``/``round_index`` come from the standby's
        shadow of the primary's scheduling state; ``delta`` is the full
        committed image (the promoted service re-broadcasts it whole,
        exactly like round 0's snapshot).  Every later decision is the
        same function of this state as it was on the dead primary, which
        is what keeps the crashed run byte-identical to the fault-free
        one.
        """
        engine = cls(service, iterations, granularity)
        engine.pending = list(pending)
        engine.size = size
        engine.round_index = round_index
        engine.delta = list(delta)
        engine._table_mark = service.table.counters()
        return engine

    def begin_round(self) -> Optional[tuple]:
        """Next ``(batch, delta)``, or ``None`` when the loop is done."""
        if not self.pending:
            return None
        attempted = min(self.size, len(self.pending))
        self._batch = self.pending[:attempted]
        self._rest = self.pending[attempted:]
        self._table_mark = self.service.table.counters()
        return self._batch, self.delta

    def abort_round(self) -> None:
        """Void the in-flight round (a worker died mid-round).

        Reservations already applied are released and the table counters
        roll back to the round-start checkpoint; nothing was committed
        (commits happen only in :meth:`complete`), so ``pending``,
        ``size``, ``round_index``, and the broadcast delta are all
        untouched — re-issuing the same batch over the survivors
        re-derives the identical winners.
        """
        self.service.table.restore_counters(self._table_mark)
        self.service.stats.reservations = self.service.table.reservations
        self.service.end_round()
        self._decisions = []
        self._losers, self._retries, self._finished = [], [], []

    def adjudicate(self, decisions: Sequence[tuple]) -> list:
        """Apply reservations, return winners (sorted ascending).

        ``decisions`` is ``[(iteration, status, slots), ...]`` covering
        the whole batch, in any order.
        """
        decisions = sorted(decisions)
        self._decisions = decisions
        pairs = [
            (slot, iteration)
            for iteration, status, slots in decisions
            if status == TRY_COMMIT
            for slot in slots
        ]
        self.service.apply_reservations(pairs)
        winners = []
        self._losers, self._retries, self._finished = [], [], []
        for iteration, status, slots in decisions:
            if status == DONE:
                self._finished.append(iteration)
            elif status == TRY_AGAIN:
                self._retries.append(iteration)
            elif self.service.verdict(iteration, slots):
                winners.append(iteration)
            else:
                self._losers.append(iteration)
        return winners

    def complete(self, commit_results: Sequence[tuple]) -> RoundRecord:
        """Fold winners' commit results ``[(iteration, ok, writes), ...]``
        into the committed image and close the round."""
        commit_results = sorted(commit_results)
        ok_writes = [(i, list(writes)) for i, ok, writes in commit_results if ok]
        words = self.service.commit_writes(ok_writes)
        commit_failed = [i for i, ok, _writes in commit_results if not ok]
        carried = sorted(self._losers + self._retries + commit_failed)
        record = RoundRecord(
            round_index=self.round_index,
            attempted=len(self._batch),
            completed=len(self._batch) - len(carried),
            reservation_failures=len(self._losers),
            commit_failures=len(commit_failed),
            carried=len(carried),
            words_committed=words,
        )
        self.service.stats.record_round(record)
        self.service.end_round()
        # Next round's snapshot delta: last-write-wins over the
        # iteration-ordered write sets, in ascending address order.
        merged: dict = {}
        for _iteration, writes in ok_writes:
            merged.update(writes)
        self.delta = sorted(merged.items())
        self.last_carried = carried
        self.pending = carried + self._rest
        self.size = _next_round_size(
            self.size, record.attempted, record.carried, self.max_round
        )
        self.round_index += 1
        return record


#: Round-size adaptation lives in :mod:`repro.core.reservations` so the
#: hot-standby replica can mirror the scheduler without importing this
#: module (which imports the runtime that imports the standby).
_next_round_size = next_round_size


def _snapshot_entries(space: AddressSpace) -> list:
    """Every written ``(address, value)`` of ``space``, ascending."""
    entries = []
    for page in space.iter_pages():
        base = page.number << PAGE_SHIFT
        entries.extend(
            (base + (index << WORD_SHIFT), value) for index, value in page.items()
        )
    return entries


# -- pure reference scheduler --------------------------------------------------


def speculative_for(
    step,
    iterations: int,
    slots: int,
    master: Optional[AddressSpace] = None,
    granularity: int = 8,
) -> tuple[AddressSpace, ReservationStats]:
    """Host-level ``speculative_for``: no simulator, same semantics.

    Runs the round protocol single-threaded against ``master`` (state
    already built into it, or a fresh space) and returns ``(master,
    stats)``.  This is the reference model: :class:`SpecForSystem`
    produces the identical committed image and identical
    :class:`~repro.core.reservations.ReservationStats` at every worker
    count.
    """
    service = ReservationCommitService(slots, master)
    engine = _RoundEngine(service, iterations, granularity)
    replica = AddressSpace("specfor.ref.replica")
    while (start := engine.begin_round()) is not None:
        batch, delta = start
        for address, value in delta:
            replica.write(address, value)
        decisions = []
        for iteration in batch:
            status, reserved, _cycles = _run_reserve(step, replica, iteration)
            decisions.append((iteration, status, reserved))
        winners = engine.adjudicate(decisions)
        commit_results = []
        for iteration in winners:
            ok, writes, _cycles = _run_commit(step, replica, iteration)
            commit_results.append((iteration, ok, writes))
        engine.complete(commit_results)
    return service.master, service.stats


# -- plan validation -----------------------------------------------------------


def ensure_reservation_site(workload) -> ReservationSite:
    """The workload's reservation site, or a did-you-mean rejection.

    ``speculative_for`` only applies to workloads that declare a
    ``write_min`` reservation site; the error names the workloads that
    do, with a close-match hint when the requested name resembles one
    (same style as the campaign schema's unknown-key rejections).
    """
    site = workload.reservation_site()
    if site is not None:
        return site
    from repro.workloads.registry import reservation_benchmarks

    capable = sorted(reservation_benchmarks())
    name = getattr(workload, "name", type(workload).__name__)
    hint = difflib.get_close_matches(str(name), capable, n=1)
    suffix = f" (did you mean {hint[0]!r}?)" if hint else ""
    raise ParadigmError(
        f"workload {name!r} defines no reservation site, so a "
        f"'speculative_for' plan cannot run on it; workloads with one: "
        f"{capable}{suffix}"
    )


# -- simulated runtime ---------------------------------------------------------


class SpecForSystem:
    """The simulated ``speculative_for`` runtime.

    ``workers`` worker units plus one reservation-commit service unit,
    placed on the cluster by the configured policy and communicating
    through the priced MPI layer.  Each round the service broadcasts
    the batch partition and the committed-delta snapshot update, the
    workers run reserve steps and send reservation batches back, the
    service adjudicates with ``write_min`` and returns verdicts, and
    winners' write-sets flow back for the iteration-ordered group
    commit.  Workers never apply their own writes locally mid-round —
    every worker computes on the identical round-start snapshot, which
    is what pins the outcome across worker counts.
    """

    def __init__(
        self,
        workload: Any,
        config: Optional[SystemConfig] = None,
        workers: int = 4,
        granularity: int = 8,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"speculative_for needs at least one worker, got {workers}"
            )
        site = ensure_reservation_site(workload)
        self.workload = workload
        self.num_workers = workers
        self.service_tid = workers
        #: Runner/chaos convention: the "commit unit" tid — here the
        #: reservation-commit service, which owns the master image.
        #: Reassigned to the standby's tid at promotion.
        self.commit_tid = self.service_tid
        self.config = (
            config
            if config is not None
            else SystemConfig(total_cores=max(3, workers + 1))
        )
        #: Tid of the reservation-service hot standby; ``None`` unless
        #: ``commit_replication`` is on.  Assigned last so the worker /
        #: service layout is unchanged by replication.
        self.standby_tid = workers + 1 if self.config.commit_replication else None
        self.num_units = workers + 1 + (1 if self.standby_tid is not None else 0)
        if self.config.total_cores < self.num_units:
            standby = " + 1 standby" if self.standby_tid is not None else ""
            raise ConfigurationError(
                f"{workers} workers + 1 service{standby} need "
                f"{self.num_units} cores, config grants "
                f"{self.config.total_cores}"
            )
        self.granularity = granularity
        self.cluster = self.config.cluster
        self.env = Environment()
        self.machine = Machine(self.env, self.cluster)
        self.interconnect = Interconnect(self.env, self.machine)
        self.mpi = MPI(self.env, self.machine, self.interconnect)
        self.state = SystemState()
        self.stats = RunStats()
        #: Observability hub; every hook site no-ops while ``None``.
        self.obs = None
        self._core_indices = place_units(
            self.cluster, self.num_units, self.config.placement
        )
        if self.standby_tid is not None:
            place_standby(
                self.cluster, self._core_indices, self.commit_tid,
                self.standby_tid, self.config.standby_node,
            )
        #: Units lost to node failures so far.
        self.dead_tids: set[int] = set()
        #: Worker ids still alive (node failures remove entries; the
        #: round scheduler re-partitions batches over these).
        self.live_workers: list[int] = list(range(workers))
        #: Simulation processes hosted on each node (unit main loops,
        #: heartbeat emitters): the kill set of a node-crash fault.
        self._node_processes: dict[int, list] = {}
        #: Reliable ack/retransmit transport; ``None`` keeps the
        #: fault-free fast path untouched (a single is-None check).
        self.transport = (
            ReliableTransport(self) if self.config.fault_tolerance else None
        )
        #: One multiplexed inbox per unit (fault-tolerant mode): framed
        #: traffic and failure-detector wake-up pings share it.
        self._inboxes = (
            [Store(self.env) for _ in range(self.num_units)]
            if self.config.fault_tolerance
            else None
        )
        self.uva = UnifiedVirtualAddressSpace(owners=self.num_units)
        self.site_slots = site.slots
        self.service = ReservationCommitService(site.slots)
        #: Digest/report convention: ``system.commit.master`` is the
        #: committed memory image (same shape as DSMTXSystem).
        self.commit = self.service
        #: Reservation-service hot standby; ``None`` without replication.
        if self.standby_tid is not None:
            from repro.core.standby import ReservationStandby

            self.standby = ReservationStandby(self, self.standby_tid)
        else:
            self.standby = None
        #: Heartbeat failure detection; ``None`` outside fault-tolerant
        #: mode.  Started by :meth:`run` once unit processes exist.
        if self.config.fault_tolerance:
            from repro.core.failure import SpecForFailureDetector

            self.failure_detector = SpecForFailureDetector(self)
        else:
            self.failure_detector = None
        from repro.workloads.base import WriteThroughStore

        # Program state is always allocated from owner 0's region — the
        # service tid shifts with the worker count, and UVA addresses
        # encode the owner, so building from the service region would
        # make the committed image's addresses (and hence its digest)
        # depend on the worker count.
        workload.build(self.uva, 0, WriteThroughStore(self.service.master))

    # -- introspection ---------------------------------------------------------

    def core_of(self, tid: int):
        return self.machine.core(self._core_indices[tid])

    def utilization(self) -> dict:
        """Busy fraction of every unit's core over the run so far."""
        elapsed = self.env.now
        if elapsed <= 0:
            return {}
        clock = self.cluster.clock_hz

        def fraction(tid: int) -> float:
            return self.core_of(tid).busy_cycles / (elapsed * clock)

        report = {
            f"specfor-worker[{w}]": fraction(w) for w in range(self.num_workers)
        }
        report["specfor-service"] = fraction(self.service_tid)
        if self.standby_tid is not None:
            report["specfor-standby"] = fraction(self.standby_tid)
        return report

    # -- fault-tolerant plumbing (duck-typed like DSMTXSystem) -----------------

    def inbox_of(self, tid: int):
        return self._inboxes[tid]

    def register_node_process(self, node: int, process) -> None:
        """Track a simulation process as hosted on ``node`` so a
        node-crash fault kills it along with the node."""
        self._node_processes.setdefault(node, []).append(process)

    def processes_on_node(self, node: int) -> list:
        """Every registered simulation process hosted on ``node``."""
        return list(self._node_processes.get(node, ()))

    @property
    def standby_alive(self) -> bool:
        return self.standby_tid is not None and self.standby_tid not in self.dead_tids

    def apply_node_failure(self, node: int, dead_tids) -> None:
        """Drop the dead units from the live scheduling state and the
        reliable transport (frames to/from them are abandoned)."""
        self.dead_tids.update(dead_tids)
        self.live_workers = [
            w for w in range(self.num_workers) if w not in self.dead_tids
        ]
        if self.transport is not None:
            self.transport.forget_units(dead_tids)

    def promote_reservation_service(self, standby) -> tuple:
        """Swap the promoted standby in as the reservation service.

        Called by :meth:`ReservationStandby._promote` after the replay:
        builds a fresh :class:`ReservationCommitService` over the
        standby's replayed image with the replicated table counters and
        round records, resumes a :class:`_RoundEngine` at the standby's
        shadow of the primary's scheduling state, swaps the layout, and
        backs the dead primary's unreplicated commits out of the run
        statistics (those iterations re-execute).  Returns ``(service,
        engine)``; the caller drives the service loop.
        """
        shadow = standby.shadow_stats
        service = ReservationCommitService(self.site_slots, master=standby.image)
        service.table.restore_counters(standby.table_counters)
        service.stats = shadow
        engine = _RoundEngine.resume(
            service, self.workload.iterations, self.granularity,
            pending=standby.shadow_pending,
            size=standby.shadow_size,
            round_index=standby.shadow_round_index,
            delta=_snapshot_entries(standby.image),
        )
        self.service = service
        self.commit = service
        self.commit_tid = standby.tid
        self.service_tid = standby.tid
        # The standby seat is consumed by the promotion: the promoted
        # service runs without a second standby (a later crash of its
        # node is fatal, exactly like DSMTX after a commit failover).
        self.standby_tid = None
        # Rounds the dead primary committed past the replicated frontier
        # died with its master memory; the promoted service re-executes
        # them, so their first count is backed out here.
        self.stats.committed_mtxs = shadow.committed
        self.stats.words_committed = shadow.words_committed
        return service, engine

    # -- unit processes --------------------------------------------------------

    def _service_proc(self):
        mpi, config, stats = self.mpi, self.config, self.stats
        rank = self._core_indices[self.service_tid]
        core = self.machine.core(rank)
        ipc = self.cluster.instructions_per_cycle
        check_cycles = config.check_instructions / ipc
        commit_cycles = config.commit_instructions / ipc
        worker_ranks = [self._core_indices[w] for w in range(self.num_workers)]
        engine = _RoundEngine(self.service, self.workload.iterations, self.granularity)
        obs = self.obs
        while (start := engine.begin_round()) is not None:
            batch, delta = start
            parts = [batch[w :: self.num_workers] for w in range(self.num_workers)]
            delta_entries = tuple(delta)
            for w, wrank in enumerate(worker_ranks):
                nbytes = (
                    len(parts[w]) * MARKER_BYTES
                    + len(delta_entries) * ENTRY_BYTES
                    + MARKER_BYTES
                )
                stats.record_queue_bytes("specfor_round", nbytes)
                yield from mpi.send(
                    rank, wrank, (parts[w], delta_entries), nbytes, tag=_TAG_ROUND
                )
            decisions = []
            reserved_slots = 0
            for wrank in worker_ranks:
                part = yield from mpi.recv(rank, wrank, tag=_TAG_RESERVE)
                decisions.extend(part)
                reserved_slots += sum(len(slots) for _i, _st, slots in part)
            # One write_min application plus one verdict check per
            # reserved slot, priced like try-commit log checking.
            core.charge_cycles(check_cycles * 2 * reserved_slots)
            winners = engine.adjudicate(decisions)
            winner_set = set(winners)
            for w, wrank in enumerate(worker_ranks):
                mine = [i for i in parts[w] if i in winner_set]
                nbytes = len(mine) * MARKER_BYTES + MARKER_BYTES
                stats.record_queue_bytes("specfor_verdict", nbytes)
                yield from mpi.send(rank, wrank, mine, nbytes, tag=_TAG_VERDICT)
            commit_results = []
            for wrank in worker_ranks:
                part = yield from mpi.recv(rank, wrank, tag=_TAG_COMMIT)
                commit_results.extend(part)
            record = engine.complete(commit_results)
            core.charge_cycles(commit_cycles * record.words_committed)
            stats.committed_mtxs += record.completed
            stats.words_committed += record.words_committed
            if obs is not None:
                metrics = obs.metrics
                metrics.counter("specfor.rounds").inc()
                metrics.counter("specfor.committed").inc(record.completed)
                metrics.counter("specfor.reservation_failures").inc(
                    record.reservation_failures
                )
                metrics.counter("specfor.carried").inc(record.carried)
                metrics.histogram("specfor.round_size").observe(record.attempted)
        for wrank in worker_ranks:
            yield from mpi.send(rank, wrank, None, MARKER_BYTES, tag=_TAG_ROUND)

    def _worker_proc(self, w: int):
        mpi, config, stats = self.mpi, self.config, self.stats
        rank = self._core_indices[w]
        service_rank = self._core_indices[self.service_tid]
        core = self.machine.core(rank)
        ipc = self.cluster.instructions_per_cycle
        access_cycles = config.access_instructions / ipc
        replica = AddressSpace(f"specfor.replica{w}")
        step = self.workload.specfor_step()
        while True:
            payload = yield from mpi.recv(rank, service_rank, tag=_TAG_ROUND)
            if payload is None:
                return
            assignment, delta = payload
            core.charge_cycles(access_cycles * len(delta))
            for address, value in delta:
                replica.write(address, value)
            decisions = []
            cycles = 0.0
            for iteration in assignment:
                status, reserved, step_cycles = _run_reserve(
                    step, replica, iteration, access_cycles
                )
                decisions.append((iteration, status, reserved))
                cycles += step_cycles
            core.charge_cycles(cycles)
            nbytes = (
                sum(len(slots) for _i, _st, slots in decisions) * ENTRY_BYTES
                + len(decisions) * MARKER_BYTES
                + MARKER_BYTES
            )
            stats.record_queue_bytes("specfor_reserve", nbytes)
            yield from mpi.send(rank, service_rank, decisions, nbytes, tag=_TAG_RESERVE)
            winners = yield from mpi.recv(rank, service_rank, tag=_TAG_VERDICT)
            commit_results = []
            cycles = 0.0
            for iteration in winners:
                ok, writes, step_cycles = _run_commit(
                    step, replica, iteration, access_cycles
                )
                commit_results.append((iteration, ok, writes))
                cycles += step_cycles
            core.charge_cycles(cycles)
            nbytes = (
                sum(len(writes) for _i, _ok, writes in commit_results) * ENTRY_BYTES
                + len(commit_results) * MARKER_BYTES
                + MARKER_BYTES
            )
            stats.record_queue_bytes("specfor_commit", nbytes)
            yield from mpi.send(
                rank, service_rank, commit_results, nbytes, tag=_TAG_COMMIT
            )

    # -- fault-tolerant unit processes -----------------------------------------
    #
    # The fault-free procs above stay byte-for-byte what they were (the
    # nine pinned specfor goldens depend on it); ``fault_tolerance=True``
    # swaps in the variants below: every message is framed through the
    # reliable transport into one multiplexed inbox per unit (dedup /
    # reorder / ack / retransmit under injected loss and duplication),
    # replies carry (round, attempt) so stale traffic from an aborted
    # round is discarded, and the service streams each completed round
    # to the hot standby.

    def _ft_send(self, src_tid: int, dst_tid: int, payload, nbytes: int):
        """Frame ``payload`` on the (src, dst) link and send it into the
        destination's ingest box (sequence numbering + retransmit)."""
        frame = self.transport.stamp(src_tid, dst_tid, payload, nbytes)
        yield from self.mpi.send(
            self._core_indices[src_tid], self._core_indices[dst_tid],
            frame, nbytes, tag=_TAG_FT,
            mailbox=self.transport.ingest_box(dst_tid),
        )

    def _ft_recv(self, tid: int):
        """Blocking receive from a unit's multiplexed inbox, priced like
        :meth:`repro.cluster.mpi.MPI.recv`."""
        core = self.core_of(tid)
        yield from core.drain()
        payload = yield self._inboxes[tid].get()
        yield core.compute(self.mpi._recv_cycles)
        return payload

    def _ft_note_failures(self, engine, in_flight: int) -> bool:
        """Consume pending node-failure declarations (service side).

        Returns True when a live worker died — the in-flight round must
        be aborted and re-issued over the survivors.  A standby death
        only degrades the run (replication stops); it never aborts.
        """
        state = self.state
        aborted = False
        while state.failover_pending:
            node, dead_tids, detected_at, last_heard_at = (
                state.failover_pending.pop(0)
            )
            dead_workers = [t for t in dead_tids if t in self.live_workers]
            self.apply_node_failure(node, dead_tids)
            if not self.live_workers:
                raise ClusterFailedError(
                    f"node {node} took the last live specfor worker; the "
                    f"iteration space cannot be re-partitioned"
                )
            self.stats.failures.append(
                FailureRecord(
                    node=node,
                    dead_tids=tuple(dead_tids),
                    last_heard_at=last_heard_at,
                    detected_at=detected_at,
                    resumed_at=self.env.now,
                    restart_base=engine.round_index,
                    lost_iterations=in_flight if dead_workers else 0,
                    surviving_workers=len(self.live_workers),
                )
            )
            if dead_workers:
                aborted = True
            if self.obs is not None:
                self.obs.metrics.counter("ft.failovers").inc()
        return aborted

    def _ft_run_round(
        self, engine, tid: int, core, batch, delta, attempt: int,
        full: bool, check_cycles: float,
    ):
        """One attempt at one round; returns the RoundRecord, or None
        when a worker death aborted the attempt (re-issue with the
        survivors)."""
        stats = self.stats
        live = list(self.live_workers)
        round_index = engine.round_index
        parts = {w: batch[i :: len(live)] for i, w in enumerate(live)}
        delta_entries = tuple(delta)
        for w in live:
            nbytes = (
                len(parts[w]) * MARKER_BYTES
                + len(delta_entries) * ENTRY_BYTES
                + MARKER_BYTES
                + self.transport.extra_bytes
            )
            stats.record_queue_bytes("specfor_round", nbytes)
            yield from self._ft_send(
                tid, w,
                (_MSG_ROUND, round_index, attempt, parts[w], delta_entries, full),
                nbytes,
            )
        decisions = []
        reserved_slots = 0
        want = set(live)
        got: set = set()
        while got != want:
            msg = yield from self._ft_recv(tid)
            if isinstance(msg, ControlEnvelope):
                if self._ft_note_failures(engine, in_flight=len(batch)):
                    # Pre-adjudication: no reservation was applied yet,
                    # the attempt simply restarts over the survivors.
                    return None
                continue
            if msg[0] == _MSG_RESERVE and msg[1] == round_index and msg[2] == attempt:
                w = msg[3]
                if w in want and w not in got:
                    got.add(w)
                    part = msg[4]
                    decisions.extend(part)
                    reserved_slots += sum(len(slots) for _i, _st, slots in part)
            # Anything else is a stale reply from an aborted attempt (or
            # a dead primary's epoch) — the attempt tag filters it out.
        core.charge_cycles(check_cycles * 2 * reserved_slots)
        winners = engine.adjudicate(decisions)
        winner_set = set(winners)
        for w in live:
            mine = [i for i in parts[w] if i in winner_set]
            nbytes = len(mine) * MARKER_BYTES + MARKER_BYTES + self.transport.extra_bytes
            stats.record_queue_bytes("specfor_verdict", nbytes)
            yield from self._ft_send(
                tid, w, (_MSG_VERDICT, round_index, attempt, mine), nbytes
            )
        commit_results = []
        got = set()
        while got != want:
            msg = yield from self._ft_recv(tid)
            if isinstance(msg, ControlEnvelope):
                if self._ft_note_failures(engine, in_flight=len(batch)):
                    # Post-adjudication: the dead worker's reservations
                    # are already in the table — void them and roll the
                    # counters back to the round-start checkpoint.
                    engine.abort_round()
                    return None
                continue
            if msg[0] == _MSG_COMMIT and msg[1] == round_index and msg[2] == attempt:
                w = msg[3]
                if w in want and w not in got:
                    got.add(w)
                    commit_results.extend(msg[4])
        return engine.complete(commit_results)

    def _ft_service_loop(self, engine, tid: int, full_first: bool):
        """The round scheduler under fault tolerance.

        Shared between the initial service process and a promoted
        standby (which enters with ``full_first=True`` so every worker
        rebuilds its snapshot from the replicated image).
        """
        config, stats = self.config, self.stats
        core = self.machine.core(self._core_indices[tid])
        ipc = self.cluster.instructions_per_cycle
        check_cycles = config.check_instructions / ipc
        commit_cycles = config.commit_instructions / ipc
        obs = self.obs
        full = full_first
        spec = engine.service.stats
        ckpt_committed = spec.committed
        ckpt_words = spec.words_committed
        while True:
            self._ft_note_failures(engine, in_flight=0)
            start = engine.begin_round()
            if start is None:
                break
            batch, delta = start
            attempt = 0
            while True:
                record = yield from self._ft_run_round(
                    engine, tid, core, batch, delta, attempt, full, check_cycles
                )
                if record is not None:
                    break
                attempt += 1
                stats.ft_round_reexecutions += 1
                if obs is not None:
                    obs.metrics.counter("ft.round_reexecutions").inc()
            full = False
            core.charge_cycles(commit_cycles * record.words_committed)
            stats.committed_mtxs += record.completed
            stats.words_committed += record.words_committed
            if obs is not None:
                metrics = obs.metrics
                metrics.counter("specfor.rounds").inc()
                metrics.counter("specfor.committed").inc(record.completed)
                metrics.counter("specfor.reservation_failures").inc(
                    record.reservation_failures
                )
                metrics.counter("specfor.carried").inc(record.carried)
                metrics.histogram("specfor.round_size").observe(record.attempted)
            if self.standby_alive:
                entries = tuple(engine.delta)
                carried = tuple(engine.last_carried)
                nbytes = (
                    len(entries) * ENTRY_BYTES
                    + len(carried) * MARKER_BYTES
                    + 8 * MARKER_BYTES
                    + self.transport.extra_bytes
                )
                stats.record_queue_bytes("repl", nbytes)
                yield from self._ft_send(
                    tid, self.standby_tid,
                    (
                        _MSG_REPL_ROUND, record.as_tuple(), entries, carried,
                        engine.service.table.counters(),
                    ),
                    nbytes,
                )
            if spec.committed - ckpt_committed >= config.checkpoint_interval_mtxs:
                words = spec.words_committed - ckpt_words
                core.charge_instructions(
                    config.checkpoint_base_instructions
                    + words * config.checkpoint_word_instructions
                )
                stats.checkpoints.append(
                    CheckpointRecord(
                        iteration=spec.committed, words=words, at=self.env.now
                    )
                )
                ckpt_committed = spec.committed
                ckpt_words = spec.words_committed
                if self.standby_alive:
                    nbytes = 2 * MARKER_BYTES + self.transport.extra_bytes
                    stats.record_queue_bytes("repl", nbytes)
                    yield from self._ft_send(
                        tid, self.standby_tid,
                        (_MSG_REPL_CHECKPOINT, spec.committed), nbytes,
                    )
        for w in list(self.live_workers):
            nbytes = MARKER_BYTES + self.transport.extra_bytes
            stats.record_queue_bytes("specfor_round", nbytes)
            yield from self._ft_send(tid, w, (_MSG_STOP,), nbytes)
        if self.standby_alive:
            nbytes = MARKER_BYTES + self.transport.extra_bytes
            stats.record_queue_bytes("repl", nbytes)
            yield from self._ft_send(tid, self.standby_tid, (_MSG_STOP,), nbytes)
        # state.terminate() happens in run() *after* env.run completes:
        # terminating here would self-cancel the retransmit timers of
        # stop frames still in flight, stranding a worker whose stop a
        # loss fault dropped.

    def _ft_service_proc(self):
        engine = _RoundEngine(
            self.service, self.workload.iterations, self.granularity
        )
        try:
            yield from self._ft_service_loop(
                engine, self.service_tid, full_first=False
            )
        except ProcessInterrupt as interrupt:
            if isinstance(interrupt.cause, NodeCrashed):
                # The service's node died; the standby-side watcher
                # declares it and the standby takes over.
                return
            raise

    def _ft_worker_proc(self, w: int):
        config, stats = self.config, self.stats
        core = self.machine.core(self._core_indices[w])
        ipc = self.cluster.instructions_per_cycle
        access_cycles = config.access_instructions / ipc
        replica = AddressSpace(f"specfor.replica{w}")
        step = self.workload.specfor_step()
        try:
            while True:
                msg = yield from self._ft_recv(w)
                if isinstance(msg, ControlEnvelope):
                    continue
                kind = msg[0]
                if kind == _MSG_STOP:
                    return
                if kind == _MSG_ROUND:
                    _kind, round_index, attempt, assignment, delta, full = msg
                    if full:
                        # Promotion re-broadcast: the committed image,
                        # whole.  The worker's accumulated snapshot may
                        # be ahead of the replicated frontier, so it is
                        # rebuilt from scratch — equivalent to round 0,
                        # whose delta is the full initial program state.
                        replica = AddressSpace(f"specfor.replica{w}")
                    core.charge_cycles(access_cycles * len(delta))
                    for address, value in delta:
                        replica.write(address, value)
                    decisions = []
                    cycles = 0.0
                    for iteration in assignment:
                        status, reserved, step_cycles = _run_reserve(
                            step, replica, iteration, access_cycles
                        )
                        decisions.append((iteration, status, reserved))
                        cycles += step_cycles
                    core.charge_cycles(cycles)
                    nbytes = (
                        sum(len(slots) for _i, _st, slots in decisions)
                        * ENTRY_BYTES
                        + len(decisions) * MARKER_BYTES
                        + MARKER_BYTES
                        + self.transport.extra_bytes
                    )
                    stats.record_queue_bytes("specfor_reserve", nbytes)
                    yield from self._ft_send(
                        w, self.commit_tid,
                        (_MSG_RESERVE, round_index, attempt, w, decisions),
                        nbytes,
                    )
                elif kind == _MSG_VERDICT:
                    _kind, round_index, attempt, winners = msg
                    commit_results = []
                    cycles = 0.0
                    for iteration in winners:
                        ok, writes, step_cycles = _run_commit(
                            step, replica, iteration, access_cycles
                        )
                        commit_results.append((iteration, ok, writes))
                        cycles += step_cycles
                    core.charge_cycles(cycles)
                    nbytes = (
                        sum(len(writes) for _i, _ok, writes in commit_results)
                        * ENTRY_BYTES
                        + len(commit_results) * MARKER_BYTES
                        + MARKER_BYTES
                        + self.transport.extra_bytes
                    )
                    stats.record_queue_bytes("specfor_commit", nbytes)
                    yield from self._ft_send(
                        w, self.commit_tid,
                        (_MSG_COMMIT, round_index, attempt, w, commit_results),
                        nbytes,
                    )
        except ProcessInterrupt as interrupt:
            if isinstance(interrupt.cause, NodeCrashed):
                return
            raise

    # -- execution -------------------------------------------------------------

    def _spawn_unit(self, tid: int, generator, label: str):
        """Start one unit's main process, registered to its host node."""
        process = self.env.process(generator, name=label)
        self.register_node_process(
            self.cluster.node_of_core(self._core_indices[tid]), process
        )
        return process

    def run(self) -> RunResult:
        """Drive the loop to completion; returns the usual RunResult."""
        start = self.env.now
        if self.config.fault_tolerance:
            processes = [
                self._spawn_unit(w, self._ft_worker_proc(w), f"specfor.worker{w}")
                for w in range(self.num_workers)
            ]
            processes.append(
                self._spawn_unit(
                    self.service_tid, self._ft_service_proc(), "specfor.service"
                )
            )
            if self.standby is not None:
                # The initial image is the epoch-0 checkpoint: the
                # standby starts from the same program state as the
                # primary.
                self.standby.seed_image(self.service.master)
                processes.append(
                    self._spawn_unit(
                        self.standby_tid, self.standby.run(), "specfor.standby"
                    )
                )
            self.failure_detector.start()
        else:
            processes = [
                self._spawn_unit(w, self._worker_proc(w), f"specfor.worker{w}")
                for w in range(self.num_workers)
            ]
            processes.append(
                self._spawn_unit(
                    self.service_tid, self._service_proc(), "specfor.service"
                )
            )
        if self.env.chaos is not None:
            self.env.chaos.bind_system(self)
        self.env.run(until=self.env.all_of(processes))
        self.state.terminate()
        elapsed = self.env.now - start
        spec = self.service.stats
        stats = self.stats
        stats.elapsed_seconds = elapsed
        stats.specfor_rounds = spec.num_rounds
        stats.specfor_reservations = spec.reservations
        stats.specfor_reservation_failures = spec.reservation_failures
        stats.specfor_commit_failures = spec.commit_failures
        stats.specfor_carried = spec.carried_total
        if self.obs is not None:
            self.obs.finalize(self)
        return RunResult(
            elapsed_seconds=elapsed,
            stats=stats,
            iterations=stats.committed_mtxs,
            total_cores=self.num_units,
        )
