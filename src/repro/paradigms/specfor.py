"""The ``speculative_for`` paradigm: round-based deterministic reservations.

A genuinely different conflict-resolution paradigm from the paper's
TLS / Spec-DSWP pipeline (the PBBS / parlaylib ``speculative_for``):
instead of optimistic run-ahead with squash-and-replay, each round takes
a *prefix* of the pending iterations and drives it through three phases
against the :class:`~repro.core.reservations.ReservationCommitService`:

1. **reserve** — every iteration computes, on the round-start snapshot,
   the shared slots it wants to mutate and reserves them with
   ``write_min`` (lowest iteration index wins);
2. **check** — an iteration wins iff it holds *every* slot it reserved;
3. **commit** — winners' write-sets are group-committed in iteration
   order; losers are carried into the next round.

Because ``write_min`` is commutative and every worker computes against
the same round-start snapshot, the set of winners — and therefore the
committed memory image, the round count, and every failure statistic —
depends only on the iteration space, never on worker count or message
arrival order.  Only the simulated *time* changes with workers.

Three entry points:

* :func:`speculative_for` — the pure host-level scheduler (no simulated
  cluster).  The reference model the property and equivalence tests
  compare everything against.
* :class:`SpecForSystem` — the simulated runtime: ``workers`` worker
  units plus one reservation-commit service unit on the same
  cluster/MPI substrate as :class:`~repro.core.runtime.DSMTXSystem`,
  with all protocol traffic priced through the interconnect.
* :func:`ensure_reservation_site` — plan validation: rejects
  ``speculative_for`` on workloads that define no reservation site,
  with a did-you-mean pointing at the workloads that do.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.cluster import MPI, Interconnect, Machine, place_units
from repro.core.config import SystemConfig
from repro.core.messages import ENTRY_BYTES, MARKER_BYTES
from repro.core.reservations import (
    ReservationCommitService,
    ReservationStats,
    RoundRecord,
)
from repro.core.runtime import RunResult
from repro.core.stats import RunStats
from repro.errors import ConfigurationError, ParadigmError
from repro.memory import AddressSpace, UnifiedVirtualAddressSpace
from repro.memory.layout import PAGE_SHIFT, WORD_SHIFT
from repro.sim import Environment

__all__ = [
    "DONE",
    "TRY_COMMIT",
    "TRY_AGAIN",
    "ReservationSite",
    "StepContext",
    "speculative_for",
    "SpecForSystem",
    "ensure_reservation_site",
]

# Iteration statuses returned by a step's ``reserve`` phase (the
# parlaylib ``enum status { done, try_commit, try_again }``).
DONE = 0
TRY_COMMIT = 1
TRY_AGAIN = 2

_TAG_ROUND = "sf_round"
_TAG_RESERVE = "sf_reserve"
_TAG_VERDICT = "sf_verdict"
_TAG_COMMIT = "sf_commit"


@dataclass(frozen=True)
class ReservationSite:
    """A workload's ``write_min`` reservation site.

    ``slots`` is the size of the reservation table — one slot per
    contendable object (vertex, list node, ...); ``label`` names what a
    slot stands for in reports.
    """

    slots: int
    label: str = "slot"

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ConfigurationError(
                f"a reservation site needs at least one slot, got {self.slots}"
            )


class StepContext:
    """Execution context for one iteration of a ``speculative_for`` step.

    Unlike the generator contexts of :mod:`repro.core.context`, steps
    are plain functions: they run to completion against a worker's
    round-start snapshot, and their cost is charged as one deferred
    lump.  ``reserve`` is only legal in the reserve phase, ``write``
    only in the commit phase; commit-phase reads see the iteration's
    own writes overlaid on the snapshot (read-own-write), never another
    same-round iteration's — that blindness is what makes the outcome
    worker-count independent.
    """

    RESERVE = "reserve"
    COMMIT = "commit"

    __slots__ = (
        "iteration", "phase", "reserved", "writes", "cycles",
        "_space", "_overlay", "_access_cycles",
    )

    def __init__(
        self, space, iteration: int, phase: str, access_cycles: float = 0.0
    ) -> None:
        self.iteration = iteration
        self.phase = phase
        #: Slots reserved during the reserve phase, in request order.
        self.reserved: list = []
        #: (address, value) writes buffered during the commit phase.
        self.writes: list = []
        #: Deferred cycle cost accumulated by this iteration's step.
        self.cycles = 0.0
        self._space = space
        self._overlay: dict = {}
        self._access_cycles = access_cycles

    def read(self, address: int) -> Any:
        """Read a word from the round-start snapshot (plus this
        iteration's own writes, in the commit phase)."""
        self.cycles += self._access_cycles
        if self._overlay:
            try:
                return self._overlay[address]
            except KeyError:
                pass
        return self._space.read(address)

    def write(self, address: int, value: Any) -> None:
        """Buffer a word write (commit phase only); the service applies
        winners' buffers in iteration order."""
        if self.phase != self.COMMIT:
            raise ParadigmError(
                f"iteration {self.iteration} wrote in its {self.phase} phase; "
                "speculative_for steps may only write while committing"
            )
        self.cycles += self._access_cycles
        self._overlay[address] = value
        self.writes.append((address, value))

    def reserve(self, slot: int) -> None:
        """Request ``write_min(slot, iteration)`` (reserve phase only)."""
        if self.phase != self.RESERVE:
            raise ParadigmError(
                f"iteration {self.iteration} reserved in its {self.phase} "
                "phase; reservations belong to the reserve phase"
            )
        self.cycles += self._access_cycles
        self.reserved.append(slot)

    def compute(self, cycles: float) -> None:
        """Account ``cycles`` of step computation."""
        self.cycles += cycles


# -- shared phase execution (one source of truth for pure + simulated) ---------


def _run_reserve(step, space, iteration: int, access_cycles: float = 0.0):
    """Run one iteration's reserve phase; returns (status, slots, cycles)."""
    ctx = StepContext(space, iteration, StepContext.RESERVE, access_cycles)
    status = step.reserve(ctx, iteration)
    if status not in (DONE, TRY_COMMIT, TRY_AGAIN):
        raise ParadigmError(
            f"reserve({iteration}) returned {status!r}, not one of "
            "DONE/TRY_COMMIT/TRY_AGAIN"
        )
    if status != TRY_COMMIT and ctx.reserved:
        raise ParadigmError(
            f"reserve({iteration}) reserved slots but returned status "
            f"{status}; only TRY_COMMIT iterations hold reservations"
        )
    return status, tuple(ctx.reserved), ctx.cycles


def _run_commit(step, space, iteration: int, access_cycles: float = 0.0):
    """Run one winner's commit phase; returns (ok, writes, cycles)."""
    ctx = StepContext(space, iteration, StepContext.COMMIT, access_cycles)
    ok = step.commit(ctx, iteration)
    return bool(ok), tuple(ctx.writes), ctx.cycles


class _RoundEngine:
    """Service-side round scheduler: batch selection, adjudication,
    group commit, carry-forward, and round-size adaptation.

    Shared verbatim between :func:`speculative_for` and
    :class:`SpecForSystem` so that winners, round records, and every
    statistic are identical by construction.  All decisions here are
    functions of the iteration space and the committed state only —
    the round size in particular never consults the worker count.
    """

    def __init__(
        self, service: ReservationCommitService, iterations: int, granularity: int
    ) -> None:
        if iterations < 1:
            raise ConfigurationError("speculative_for needs at least one iteration")
        if granularity < 1:
            raise ConfigurationError(f"granularity must be >= 1, got {granularity}")
        self.service = service
        self.pending = list(range(iterations))
        #: Largest round: a 1/granularity slice of the iteration space.
        self.max_round = iterations // granularity + 1
        self.size = max(1, self.max_round // 2)
        self.round_index = 0
        #: Committed (address, value) entries not yet broadcast to the
        #: workers' snapshots; starts as the built program state.
        self.delta = _snapshot_entries(service.master)
        self._batch: list = []
        self._rest: list = []
        self._decisions: list = []
        self._losers: list = []
        self._retries: list = []
        self._finished: list = []

    def begin_round(self) -> Optional[tuple]:
        """Next ``(batch, delta)``, or ``None`` when the loop is done."""
        if not self.pending:
            return None
        attempted = min(self.size, len(self.pending))
        self._batch = self.pending[:attempted]
        self._rest = self.pending[attempted:]
        return self._batch, self.delta

    def adjudicate(self, decisions: Sequence[tuple]) -> list:
        """Apply reservations, return winners (sorted ascending).

        ``decisions`` is ``[(iteration, status, slots), ...]`` covering
        the whole batch, in any order.
        """
        decisions = sorted(decisions)
        self._decisions = decisions
        pairs = [
            (slot, iteration)
            for iteration, status, slots in decisions
            if status == TRY_COMMIT
            for slot in slots
        ]
        self.service.apply_reservations(pairs)
        winners = []
        self._losers, self._retries, self._finished = [], [], []
        for iteration, status, slots in decisions:
            if status == DONE:
                self._finished.append(iteration)
            elif status == TRY_AGAIN:
                self._retries.append(iteration)
            elif self.service.verdict(iteration, slots):
                winners.append(iteration)
            else:
                self._losers.append(iteration)
        return winners

    def complete(self, commit_results: Sequence[tuple]) -> RoundRecord:
        """Fold winners' commit results ``[(iteration, ok, writes), ...]``
        into the committed image and close the round."""
        commit_results = sorted(commit_results)
        ok_writes = [(i, list(writes)) for i, ok, writes in commit_results if ok]
        words = self.service.commit_writes(ok_writes)
        commit_failed = [i for i, ok, _writes in commit_results if not ok]
        carried = sorted(self._losers + self._retries + commit_failed)
        record = RoundRecord(
            round_index=self.round_index,
            attempted=len(self._batch),
            completed=len(self._batch) - len(carried),
            reservation_failures=len(self._losers),
            commit_failures=len(commit_failed),
            carried=len(carried),
            words_committed=words,
        )
        self.service.stats.record_round(record)
        self.service.end_round()
        # Next round's snapshot delta: last-write-wins over the
        # iteration-ordered write sets, in ascending address order.
        merged: dict = {}
        for _iteration, writes in ok_writes:
            merged.update(writes)
        self.delta = sorted(merged.items())
        self.pending = carried + self._rest
        self.size = _next_round_size(
            self.size, record.attempted, record.carried, self.max_round
        )
        self.round_index += 1
        return record


def _next_round_size(size: int, attempted: int, carried: int, max_round: int) -> int:
    """Contention-adaptive round size (worker-count independent).

    High carry ratio (> 1/4 of the batch retried) halves the round —
    smaller prefixes conflict less; low ratio (< 1/16) doubles it back,
    capped at ``max_round``.
    """
    if carried * 4 >= attempted:
        return max(1, size // 2)
    if carried * 16 <= attempted:
        return min(max_round, size * 2)
    return size


def _snapshot_entries(space: AddressSpace) -> list:
    """Every written ``(address, value)`` of ``space``, ascending."""
    entries = []
    for page in space.iter_pages():
        base = page.number << PAGE_SHIFT
        entries.extend(
            (base + (index << WORD_SHIFT), value) for index, value in page.items()
        )
    return entries


# -- pure reference scheduler --------------------------------------------------


def speculative_for(
    step,
    iterations: int,
    slots: int,
    master: Optional[AddressSpace] = None,
    granularity: int = 8,
) -> tuple[AddressSpace, ReservationStats]:
    """Host-level ``speculative_for``: no simulator, same semantics.

    Runs the round protocol single-threaded against ``master`` (state
    already built into it, or a fresh space) and returns ``(master,
    stats)``.  This is the reference model: :class:`SpecForSystem`
    produces the identical committed image and identical
    :class:`~repro.core.reservations.ReservationStats` at every worker
    count.
    """
    service = ReservationCommitService(slots, master)
    engine = _RoundEngine(service, iterations, granularity)
    replica = AddressSpace("specfor.ref.replica")
    while (start := engine.begin_round()) is not None:
        batch, delta = start
        for address, value in delta:
            replica.write(address, value)
        decisions = []
        for iteration in batch:
            status, reserved, _cycles = _run_reserve(step, replica, iteration)
            decisions.append((iteration, status, reserved))
        winners = engine.adjudicate(decisions)
        commit_results = []
        for iteration in winners:
            ok, writes, _cycles = _run_commit(step, replica, iteration)
            commit_results.append((iteration, ok, writes))
        engine.complete(commit_results)
    return service.master, service.stats


# -- plan validation -----------------------------------------------------------


def ensure_reservation_site(workload) -> ReservationSite:
    """The workload's reservation site, or a did-you-mean rejection.

    ``speculative_for`` only applies to workloads that declare a
    ``write_min`` reservation site; the error names the workloads that
    do, with a close-match hint when the requested name resembles one
    (same style as the campaign schema's unknown-key rejections).
    """
    site = workload.reservation_site()
    if site is not None:
        return site
    from repro.workloads.registry import reservation_benchmarks

    capable = sorted(reservation_benchmarks())
    name = getattr(workload, "name", type(workload).__name__)
    hint = difflib.get_close_matches(str(name), capable, n=1)
    suffix = f" (did you mean {hint[0]!r}?)" if hint else ""
    raise ParadigmError(
        f"workload {name!r} defines no reservation site, so a "
        f"'speculative_for' plan cannot run on it; workloads with one: "
        f"{capable}{suffix}"
    )


# -- simulated runtime ---------------------------------------------------------


class SpecForSystem:
    """The simulated ``speculative_for`` runtime.

    ``workers`` worker units plus one reservation-commit service unit,
    placed on the cluster by the configured policy and communicating
    through the priced MPI layer.  Each round the service broadcasts
    the batch partition and the committed-delta snapshot update, the
    workers run reserve steps and send reservation batches back, the
    service adjudicates with ``write_min`` and returns verdicts, and
    winners' write-sets flow back for the iteration-ordered group
    commit.  Workers never apply their own writes locally mid-round —
    every worker computes on the identical round-start snapshot, which
    is what pins the outcome across worker counts.
    """

    def __init__(
        self,
        workload: Any,
        config: Optional[SystemConfig] = None,
        workers: int = 4,
        granularity: int = 8,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"speculative_for needs at least one worker, got {workers}"
            )
        site = ensure_reservation_site(workload)
        self.workload = workload
        self.num_workers = workers
        self.num_units = workers + 1
        self.service_tid = workers
        #: Runner/chaos convention: the "commit unit" tid — here the
        #: reservation-commit service, which owns the master image.
        self.commit_tid = self.service_tid
        self.config = (
            config
            if config is not None
            else SystemConfig(total_cores=max(3, self.num_units))
        )
        if self.config.total_cores < self.num_units:
            raise ConfigurationError(
                f"{workers} workers + 1 service need {self.num_units} cores, "
                f"config grants {self.config.total_cores}"
            )
        self.granularity = granularity
        self.cluster = self.config.cluster
        self.env = Environment()
        self.machine = Machine(self.env, self.cluster)
        self.interconnect = Interconnect(self.env, self.machine)
        self.mpi = MPI(self.env, self.machine, self.interconnect)
        self.stats = RunStats()
        #: Observability hub; every hook site no-ops while ``None``.
        self.obs = None
        self._core_indices = place_units(
            self.cluster, self.num_units, self.config.placement
        )
        self.uva = UnifiedVirtualAddressSpace(owners=self.num_units)
        self.service = ReservationCommitService(site.slots)
        #: Digest/report convention: ``system.commit.master`` is the
        #: committed memory image (same shape as DSMTXSystem).
        self.commit = self.service
        from repro.workloads.base import WriteThroughStore

        # Program state is always allocated from owner 0's region — the
        # service tid shifts with the worker count, and UVA addresses
        # encode the owner, so building from the service region would
        # make the committed image's addresses (and hence its digest)
        # depend on the worker count.
        workload.build(self.uva, 0, WriteThroughStore(self.service.master))

    # -- introspection ---------------------------------------------------------

    def core_of(self, tid: int):
        return self.machine.core(self._core_indices[tid])

    def utilization(self) -> dict:
        """Busy fraction of every unit's core over the run so far."""
        elapsed = self.env.now
        if elapsed <= 0:
            return {}
        clock = self.cluster.clock_hz

        def fraction(tid: int) -> float:
            return self.core_of(tid).busy_cycles / (elapsed * clock)

        report = {
            f"specfor-worker[{w}]": fraction(w) for w in range(self.num_workers)
        }
        report["specfor-service"] = fraction(self.service_tid)
        return report

    # -- unit processes --------------------------------------------------------

    def _service_proc(self):
        mpi, config, stats = self.mpi, self.config, self.stats
        rank = self._core_indices[self.service_tid]
        core = self.machine.core(rank)
        ipc = self.cluster.instructions_per_cycle
        check_cycles = config.check_instructions / ipc
        commit_cycles = config.commit_instructions / ipc
        worker_ranks = [self._core_indices[w] for w in range(self.num_workers)]
        engine = _RoundEngine(self.service, self.workload.iterations, self.granularity)
        obs = self.obs
        while (start := engine.begin_round()) is not None:
            batch, delta = start
            parts = [batch[w :: self.num_workers] for w in range(self.num_workers)]
            delta_entries = tuple(delta)
            for w, wrank in enumerate(worker_ranks):
                nbytes = (
                    len(parts[w]) * MARKER_BYTES
                    + len(delta_entries) * ENTRY_BYTES
                    + MARKER_BYTES
                )
                stats.record_queue_bytes("specfor_round", nbytes)
                yield from mpi.send(
                    rank, wrank, (parts[w], delta_entries), nbytes, tag=_TAG_ROUND
                )
            decisions = []
            reserved_slots = 0
            for wrank in worker_ranks:
                part = yield from mpi.recv(rank, wrank, tag=_TAG_RESERVE)
                decisions.extend(part)
                reserved_slots += sum(len(slots) for _i, _st, slots in part)
            # One write_min application plus one verdict check per
            # reserved slot, priced like try-commit log checking.
            core.charge_cycles(check_cycles * 2 * reserved_slots)
            winners = engine.adjudicate(decisions)
            winner_set = set(winners)
            for w, wrank in enumerate(worker_ranks):
                mine = [i for i in parts[w] if i in winner_set]
                nbytes = len(mine) * MARKER_BYTES + MARKER_BYTES
                stats.record_queue_bytes("specfor_verdict", nbytes)
                yield from mpi.send(rank, wrank, mine, nbytes, tag=_TAG_VERDICT)
            commit_results = []
            for wrank in worker_ranks:
                part = yield from mpi.recv(rank, wrank, tag=_TAG_COMMIT)
                commit_results.extend(part)
            record = engine.complete(commit_results)
            core.charge_cycles(commit_cycles * record.words_committed)
            stats.committed_mtxs += record.completed
            stats.words_committed += record.words_committed
            if obs is not None:
                metrics = obs.metrics
                metrics.counter("specfor.rounds").inc()
                metrics.counter("specfor.committed").inc(record.completed)
                metrics.counter("specfor.reservation_failures").inc(
                    record.reservation_failures
                )
                metrics.counter("specfor.carried").inc(record.carried)
                metrics.histogram("specfor.round_size").observe(record.attempted)
        for wrank in worker_ranks:
            yield from mpi.send(rank, wrank, None, MARKER_BYTES, tag=_TAG_ROUND)

    def _worker_proc(self, w: int):
        mpi, config, stats = self.mpi, self.config, self.stats
        rank = self._core_indices[w]
        service_rank = self._core_indices[self.service_tid]
        core = self.machine.core(rank)
        ipc = self.cluster.instructions_per_cycle
        access_cycles = config.access_instructions / ipc
        replica = AddressSpace(f"specfor.replica{w}")
        step = self.workload.specfor_step()
        while True:
            payload = yield from mpi.recv(rank, service_rank, tag=_TAG_ROUND)
            if payload is None:
                return
            assignment, delta = payload
            core.charge_cycles(access_cycles * len(delta))
            for address, value in delta:
                replica.write(address, value)
            decisions = []
            cycles = 0.0
            for iteration in assignment:
                status, reserved, step_cycles = _run_reserve(
                    step, replica, iteration, access_cycles
                )
                decisions.append((iteration, status, reserved))
                cycles += step_cycles
            core.charge_cycles(cycles)
            nbytes = (
                sum(len(slots) for _i, _st, slots in decisions) * ENTRY_BYTES
                + len(decisions) * MARKER_BYTES
                + MARKER_BYTES
            )
            stats.record_queue_bytes("specfor_reserve", nbytes)
            yield from mpi.send(rank, service_rank, decisions, nbytes, tag=_TAG_RESERVE)
            winners = yield from mpi.recv(rank, service_rank, tag=_TAG_VERDICT)
            commit_results = []
            cycles = 0.0
            for iteration in winners:
                ok, writes, step_cycles = _run_commit(
                    step, replica, iteration, access_cycles
                )
                commit_results.append((iteration, ok, writes))
                cycles += step_cycles
            core.charge_cycles(cycles)
            nbytes = (
                sum(len(writes) for _i, _ok, writes in commit_results) * ENTRY_BYTES
                + len(commit_results) * MARKER_BYTES
                + MARKER_BYTES
            )
            stats.record_queue_bytes("specfor_commit", nbytes)
            yield from mpi.send(
                rank, service_rank, commit_results, nbytes, tag=_TAG_COMMIT
            )

    # -- execution -------------------------------------------------------------

    def run(self) -> RunResult:
        """Drive the loop to completion; returns the usual RunResult."""
        start = self.env.now
        processes = [
            self.env.process(self._worker_proc(w), name=f"specfor.worker{w}")
            for w in range(self.num_workers)
        ]
        processes.append(
            self.env.process(self._service_proc(), name="specfor.service")
        )
        self.env.run(until=self.env.all_of(processes))
        elapsed = self.env.now - start
        spec = self.service.stats
        stats = self.stats
        stats.elapsed_seconds = elapsed
        stats.specfor_rounds = spec.num_rounds
        stats.specfor_reservations = spec.reservations
        stats.specfor_reservation_failures = spec.reservation_failures
        stats.specfor_commit_failures = spec.commit_failures
        stats.specfor_carried = spec.carried_total
        if self.obs is not None:
            self.obs.finalize(self)
        return RunResult(
            elapsed_seconds=elapsed,
            stats=stats,
            iterations=stats.committed_mtxs,
            total_cores=self.num_units,
        )
