"""Loop parallelization paradigms (paper section 2).

Program Dependence Graphs, SCC-based DSWP partitioning, the
``Spec-DSWP+[...]`` plan notation, and earliest-start schedulers for
DOALL, DOACROSS, and DSWP — the machinery behind Figure 1's
latency-tolerance comparison.  The speculative paradigms (TLS and
Spec-DSWP) execute on the DSMTX runtime in :mod:`repro.core`; the
adapters live with the workloads (:class:`repro.workloads.ParallelPlan`).
"""

from repro.paradigms.partition import (
    Stage,
    dswp_partition,
    mark_parallel_stages,
    validate_partition,
)
from repro.paradigms.pdg import (
    Dependence,
    DependenceKind,
    ProgramDependenceGraph,
    example_list_loop,
)
from repro.paradigms.plan import PlanNotation, format_plan, parse_plan, validate_plan
from repro.paradigms.schedule import (
    ScheduleResult,
    doacross_schedule,
    doall_schedule,
    dswp_schedule,
    schedule_loop,
)
from repro.paradigms.specfor import (
    DONE,
    TRY_AGAIN,
    TRY_COMMIT,
    ReservationSite,
    SpecForSystem,
    StepContext,
    ensure_reservation_site,
    speculative_for,
)

__all__ = [
    "ProgramDependenceGraph",
    "Dependence",
    "DependenceKind",
    "example_list_loop",
    "Stage",
    "dswp_partition",
    "validate_partition",
    "mark_parallel_stages",
    "PlanNotation",
    "parse_plan",
    "format_plan",
    "validate_plan",
    "ScheduleResult",
    "schedule_loop",
    "doall_schedule",
    "doacross_schedule",
    "dswp_schedule",
    "DONE",
    "TRY_COMMIT",
    "TRY_AGAIN",
    "ReservationSite",
    "StepContext",
    "SpecForSystem",
    "speculative_for",
    "ensure_reservation_site",
]
