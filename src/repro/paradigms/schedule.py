"""Execution-plan scheduling for DOALL, DOACROSS, and DSWP.

This is the machinery behind Figure 1(c,d): given a PDG, a statement-to-
core assignment, and an inter-core communication latency, compute the
earliest-start schedule of (iteration, statement) instances and the
steady-state cycles per iteration.

The model matches the paper's figure: each statement instance occupies
its core for its cycle cost; loop-carried dependences link iteration
*i* to *i+1*.  Latency follows Figure 1's convention: a value produced
during cycle *t* is usable on another core from cycle ``t + latency``,
so the cross-core penalty beyond the producer's own cycle is
``latency - 1`` — with a 1-cycle latency DOACROSS still manages 2
cycles/iteration, and at 2 cycles it degrades to 3 while DSWP holds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParadigmError
from repro.paradigms.partition import Stage, dswp_partition
from repro.paradigms.pdg import ProgramDependenceGraph

__all__ = ["ScheduleResult", "schedule_loop", "doacross_schedule", "dswp_schedule"]


@dataclass
class ScheduleResult:
    """Outcome of scheduling N iterations."""

    iterations: int
    cores: int
    latency: float
    #: Completion time of the whole schedule (cycles).
    makespan: float
    #: Steady-state cycles per iteration (measured over the back half,
    #: excluding pipeline fill).
    cycles_per_iteration: float
    #: Finish time of every (iteration, statement) instance.
    finish_times: dict

    def speedup_over(self, sequential_cycles_per_iteration: float) -> float:
        if self.cycles_per_iteration <= 0:
            raise ParadigmError("degenerate schedule")
        return sequential_cycles_per_iteration / self.cycles_per_iteration


def schedule_loop(
    pdg: ProgramDependenceGraph,
    core_of: dict,
    iterations: int,
    latency: float,
) -> ScheduleResult:
    """Earliest-start schedule of ``iterations`` iterations.

    ``core_of`` maps statement name -> core index.  Statements assigned
    to one core execute in (iteration, program) order; a dependence
    crossing cores adds ``latency`` to the consumer's earliest start.
    """
    if iterations < 2:
        raise ParadigmError("need at least two iterations to schedule")
    statements = pdg.statements
    missing = [s for s in statements if s not in core_of]
    if missing:
        raise ParadigmError(f"statements without a core: {missing}")

    deps_to = {s: [] for s in statements}
    for dependence in pdg.dependences:
        deps_to[dependence.dst].append(dependence)

    core_free = {core: 0.0 for core in set(core_of.values())}
    finish: dict = {}
    for iteration in range(iterations):
        for statement in statements:
            earliest = core_free[core_of[statement]]
            for dependence in deps_to[statement]:
                src_iter = iteration - 1 if dependence.loop_carried else iteration
                if src_iter < 0:
                    continue
                src_finish = finish.get((src_iter, dependence.src))
                if src_finish is None:
                    continue
                if core_of[dependence.src] != core_of[statement]:
                    earliest = max(earliest, src_finish + max(0.0, latency - 1.0))
                else:
                    earliest = max(earliest, src_finish)
            done = earliest + pdg.cycles_of(statement)
            finish[(iteration, statement)] = done
            core_free[core_of[statement]] = done

    per_iteration_finish = [
        max(finish[(i, s)] for s in statements) for i in range(iterations)
    ]
    half = iterations // 2
    steady = (per_iteration_finish[-1] - per_iteration_finish[half - 1]) / (
        iterations - half
    )
    return ScheduleResult(
        iterations=iterations,
        cores=len(core_free),
        latency=latency,
        makespan=per_iteration_finish[-1],
        cycles_per_iteration=steady,
        finish_times=finish,
    )


def doall_schedule(
    pdg: ProgramDependenceGraph, cores: int, iterations: int, latency: float
) -> ScheduleResult:
    """DOALL: independent iterations split across cores, zero
    inter-thread communication (paper section 2.1).

    Only legal when the loop has no loop-carried dependence.
    """
    if not pdg.is_doall():
        carried = [(d.src, d.dst) for d in pdg.loop_carried()]
        raise ParadigmError(f"DOALL illegal: loop-carried dependences {carried}")
    return doacross_schedule(pdg, cores, iterations, latency)


def doacross_schedule(
    pdg: ProgramDependenceGraph, cores: int, iterations: int, latency: float
) -> ScheduleResult:
    """DOACROSS: whole iterations round-robin across cores.

    The loop-carried dependences now cross cores every iteration — the
    cyclic communication pattern that makes DOACROSS latency-sensitive
    (Figure 1(d)).
    """
    if cores < 1:
        raise ParadigmError("need at least one core")
    # Iteration i runs entirely on core i % cores; model by scheduling
    # with per-iteration core assignment.
    statements = pdg.statements
    deps_to = {s: [] for s in statements}
    for dependence in pdg.dependences:
        deps_to[dependence.dst].append(dependence)

    core_free = {core: 0.0 for core in range(cores)}
    finish: dict = {}
    for iteration in range(iterations):
        core = iteration % cores
        for statement in statements:
            earliest = core_free[core]
            for dependence in deps_to[statement]:
                src_iter = iteration - 1 if dependence.loop_carried else iteration
                if src_iter < 0:
                    continue
                src_finish = finish.get((src_iter, dependence.src))
                if src_finish is None:
                    continue
                src_core = src_iter % cores
                if src_core != core:
                    earliest = max(earliest, src_finish + max(0.0, latency - 1.0))
                else:
                    earliest = max(earliest, src_finish)
            done = earliest + pdg.cycles_of(statement)
            finish[(iteration, statement)] = done
            core_free[core] = done

    per_iteration_finish = [
        max(finish[(i, s)] for s in statements) for i in range(iterations)
    ]
    half = iterations // 2
    steady = (per_iteration_finish[-1] - per_iteration_finish[half - 1]) / (
        iterations - half
    )
    return ScheduleResult(
        iterations=iterations,
        cores=cores,
        latency=latency,
        makespan=per_iteration_finish[-1],
        cycles_per_iteration=steady,
        finish_times=finish,
    )


def dswp_schedule(
    pdg: ProgramDependenceGraph, cores: int, iterations: int, latency: float
) -> tuple[ScheduleResult, list[Stage]]:
    """DSWP: partition into ``cores`` pipeline stages, one core each.

    Dependence recurrences stay core-local, so only forward (acyclic)
    dependences cross cores — throughput is latency-insensitive
    (Figure 1(c,d)).
    """
    stages = dswp_partition(pdg, max_stages=cores)
    core_of = {}
    for index, stage in enumerate(stages):
        for statement in stage.statements:
            core_of[statement] = index
    result = schedule_loop(pdg, core_of, iterations, latency)
    return result, stages
