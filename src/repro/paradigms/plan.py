"""Parallelization-plan notation (paper section 2.1 / Table 2).

The paper describes hybrid parallelizations as ``DSWP+[...]``, where the
bracket lists the technique applied to each stage (``S`` for a
sequentially executed stage, ``DOALL`` for a replicated one), and a
``Spec-`` prefix marks speculation: on the whole pipeline
(``Spec-DSWP+[...]``, requiring MTXs) or on an individual technique
(``DSWP+[Spec-DOALL,S]``).  Plain ``Spec-DOALL``, ``DOALL``, ``TLS``,
and ``DOACROSS`` also appear.

:func:`parse_plan` turns such a string into a structured
:class:`PlanNotation`; :func:`format_plan` does the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PipelineConfig, StageKind
from repro.errors import PlanSyntaxError

__all__ = ["PlanNotation", "parse_plan", "format_plan", "validate_plan"]

_SIMPLE_TECHNIQUES = ("DOALL", "DOACROSS", "DSWP", "TLS", "SPECFOR")

#: Accepted spellings of the deterministic-reservations paradigm; the
#: canonical technique string is ``SPECFOR``.
_SPECFOR_ALIASES = ("SPECFOR", "SPECULATIVE_FOR", "SPECULATIVE-FOR")


@dataclass(frozen=True)
class PlanNotation:
    """Structured form of a parallelization-plan string."""

    #: Base technique: "DOALL", "DOACROSS", "DSWP", "TLS", or "SPECFOR"
    #: (deterministic reservations, :func:`repro.paradigms.speculative_for`).
    technique: str
    #: True if the *whole* plan is speculative (leading ``Spec-``).
    speculative: bool = False
    #: Per-stage kinds for DSWP+ plans; each entry is "S" or "DOALL",
    #: optionally per-stage-speculative.
    stage_kinds: tuple = ()
    #: Which stages carry their own ``Spec-`` prefix.
    stage_speculative: tuple = ()

    @property
    def is_pipeline(self) -> bool:
        return self.technique == "DSWP" and bool(self.stage_kinds)

    @property
    def needs_mtx(self) -> bool:
        """Multi-threaded transactions are required exactly when
        speculation spans a multi-stage pipeline (section 2.2)."""
        return self.is_pipeline and self.speculative

    def pipeline_config(self) -> PipelineConfig:
        """The PipelineConfig this plan describes."""
        if self.is_pipeline:
            return PipelineConfig.from_kinds(list(self.stage_kinds))
        if self.technique in ("DOALL", "TLS", "SPECFOR"):
            return PipelineConfig.from_kinds([StageKind.PARALLEL])
        raise PlanSyntaxError(f"{self.technique} has no pipeline form")


def parse_plan(text: str) -> PlanNotation:
    """Parse a plan string such as ``Spec-DSWP+[S,DOALL,S]``."""
    original = text
    text = text.strip()
    if not text:
        raise PlanSyntaxError("empty plan string")
    speculative = False
    if text.startswith("Spec-"):
        speculative = True
        text = text[len("Spec-"):]

    if "+" in text:
        head, _, bracket = text.partition("+")
        if head != "DSWP":
            raise PlanSyntaxError(f"only DSWP takes stage brackets, got {original!r}")
        if not (bracket.startswith("[") and bracket.endswith("]")):
            raise PlanSyntaxError(f"malformed stage bracket in {original!r}")
        entries = [e.strip() for e in bracket[1:-1].split(",") if e.strip()]
        if not entries:
            raise PlanSyntaxError(f"empty stage list in {original!r}")
        kinds = []
        stage_spec = []
        for entry in entries:
            entry_spec = entry.startswith("Spec-")
            if entry_spec:
                entry = entry[len("Spec-"):]
            if entry == "S":
                kinds.append(StageKind.SEQUENTIAL)
            elif entry == "DOALL":
                kinds.append(StageKind.PARALLEL)
            else:
                raise PlanSyntaxError(f"unknown stage kind {entry!r} in {original!r}")
            stage_spec.append(entry_spec)
        return PlanNotation(
            technique="DSWP",
            speculative=speculative,
            stage_kinds=tuple(kinds),
            stage_speculative=tuple(stage_spec),
        )

    if text == "DSWP":
        return PlanNotation(technique="DSWP", speculative=speculative)
    if text.upper().replace("-", "_") in ("SPECULATIVE_FOR", "SPECFOR"):
        # Deterministic reservations are inherently speculative; the
        # notation accepts but does not require the Spec- prefix.
        return PlanNotation(technique="SPECFOR", speculative=True)
    if text in _SIMPLE_TECHNIQUES:
        return PlanNotation(technique=text, speculative=speculative)
    raise PlanSyntaxError(f"unrecognized plan {original!r}")


def validate_plan(plan: PlanNotation, workload) -> PlanNotation:
    """Check that *plan* can actually run on *workload*.

    A ``SPECFOR`` plan needs the workload to expose a ``write_min``
    reservation site; :func:`repro.paradigms.ensure_reservation_site`
    raises a did-you-mean error naming the capable workloads otherwise.
    Other techniques pass through unchanged.
    """
    if plan.technique == "SPECFOR":
        from repro.paradigms.specfor import ensure_reservation_site

        ensure_reservation_site(workload)
    return plan


def format_plan(plan: PlanNotation) -> str:
    """Render a PlanNotation back to the paper's string form."""
    if plan.technique == "SPECFOR":
        # Always speculative; the paper-style Spec- prefix would be noise.
        return "speculative_for"
    prefix = "Spec-" if plan.speculative else ""
    if not plan.stage_kinds:
        return f"{prefix}{plan.technique}"
    entries = []
    for kind, spec in zip(plan.stage_kinds, plan.stage_speculative):
        entry = kind if kind != StageKind.SEQUENTIAL else "S"
        if spec:
            entry = f"Spec-{entry}"
        entries.append(entry)
    return f"{prefix}DSWP+[{','.join(entries)}]"
