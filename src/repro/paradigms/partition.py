"""DSWP partitioning (paper section 2.1).

DSWP splits a loop body into pipeline stages such that every dependence
recurrence stays inside one stage and all cross-stage dependences flow
forward — the acyclic communication structure that makes the pipeline
insensitive to inter-core latency.

The algorithm is the classic one: compute the PDG's strongly connected
components, topologically order the condensed DAG, then greedily pack
consecutive SCCs into at most ``max_stages`` stages while balancing the
per-stage cycle cost.  DSWP+ (Huang et al.) deliberately *unbalances*
stages to expose a DOALL-able stage; :func:`mark_parallel_stages`
identifies stages eligible for replication: no recurrence and no
loop-carried dependence internal to the stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitionError
from repro.paradigms.pdg import ProgramDependenceGraph

__all__ = ["Stage", "dswp_partition", "validate_partition", "mark_parallel_stages"]


@dataclass
class Stage:
    """One pipeline stage: a set of statements plus derived facts."""

    statements: frozenset
    cycles: float
    #: True if the stage may be replicated (a DOALL stage in DSWP+).
    parallelizable: bool = False

    def describe(self) -> str:
        kind = "DOALL" if self.parallelizable else "S"
        return f"{kind}{{{','.join(sorted(self.statements))}}}"


def dswp_partition(pdg: ProgramDependenceGraph, max_stages: int) -> list[Stage]:
    """Partition ``pdg`` into at most ``max_stages`` pipeline stages."""
    if max_stages < 1:
        raise PartitionError(f"need at least one stage, got {max_stages}")
    components = pdg.sccs()  # already in topological order
    total_cycles = sum(pdg.cycles_of(s) for s in pdg.statements)

    groups: list[list[frozenset]] = []
    current: list[frozenset] = []
    current_cycles = 0.0
    remaining_cycles = total_cycles
    for component in components:
        component_cycles = sum(pdg.cycles_of(s) for s in component)
        stages_left = max_stages - len(groups)
        # Close the open group once it reaches its fair share of the
        # not-yet-assigned cycles (re-targeted as groups close, so light
        # tail components still get their own stages).
        target = remaining_cycles / stages_left
        if current and stages_left > 1 and current_cycles >= target - 1e-9:
            groups.append(current)
            remaining_cycles -= current_cycles
            current = []
            current_cycles = 0.0
        current.append(component)
        current_cycles += component_cycles
    if current:
        groups.append(current)

    stages = []
    for group in groups:
        statements = frozenset().union(*group)
        cycles = sum(pdg.cycles_of(s) for s in statements)
        stages.append(Stage(statements=statements, cycles=cycles))
    mark_parallel_stages(pdg, stages)
    validate_partition(pdg, stages)
    return stages


def mark_parallel_stages(pdg: ProgramDependenceGraph, stages: list[Stage]) -> None:
    """Flag stages with no internal recurrence or loop-carried
    dependence: those may be replicated (the DOALL stages of DSWP+)."""
    recurrences = pdg.recurrences()
    for stage in stages:
        has_recurrence = any(r <= stage.statements for r in recurrences)
        has_carried = any(
            d.loop_carried
            and d.src in stage.statements
            and d.dst in stage.statements
            for d in pdg.dependences
        )
        stage.parallelizable = not has_recurrence and not has_carried


def validate_partition(pdg: ProgramDependenceGraph, stages: list[Stage]) -> None:
    """Check the DSWP invariants:

    * every statement appears in exactly one stage;
    * no recurrence spans stages;
    * every intra-iteration dependence flows forward (or stays within
      a stage) — cross-stage communication is acyclic.
    """
    seen: set = set()
    for stage in stages:
        overlap = seen & stage.statements
        if overlap:
            raise PartitionError(f"statements in multiple stages: {sorted(overlap)}")
        seen |= stage.statements
    missing = set(pdg.statements) - seen
    if missing:
        raise PartitionError(f"statements not assigned to any stage: {sorted(missing)}")

    stage_of = {}
    for index, stage in enumerate(stages):
        for statement in stage.statements:
            stage_of[statement] = index

    for recurrence in pdg.recurrences():
        indices = {stage_of[s] for s in recurrence}
        if len(indices) > 1:
            raise PartitionError(
                f"recurrence {sorted(recurrence)} spans stages {sorted(indices)}"
            )
    for dependence in pdg.dependences:
        src_stage = stage_of[dependence.src]
        dst_stage = stage_of[dependence.dst]
        if dst_stage < src_stage:
            raise PartitionError(
                f"backward dependence {dependence.src}->{dependence.dst} "
                f"(stage {src_stage} -> {dst_stage}): inter-stage "
                "communication must be acyclic"
            )
