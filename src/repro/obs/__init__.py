"""``repro.obs`` — unified observability: structured tracing + metrics.

The subsystem has three parts (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.tracer` — a typed span/event tracer over simulated
  time, with the fixed category taxonomy every instrumentation hook in
  the simulator, cluster, runtime, and memory layers uses;
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  fixed-bucket histograms that subsumes and feeds the evaluation's
  :class:`~repro.core.stats.RunStats`;
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON and
  flat CSV exporters.

Attach with :func:`instrument` (or the scoped :func:`observe`) before
running a :class:`~repro.core.runtime.DSMTXSystem`; when nothing is
attached every hook is a single ``is None`` check, so tracing is
zero-cost when disabled.  Text-mode attribution tables and timelines
live in :mod:`repro.analysis.timeline`; the CLI front-end is
``python -m repro trace <benchmark>``.
"""

from repro.obs.export import (
    chrome_trace,
    trace_csv,
    write_chrome_trace,
    write_trace_csv,
)
from repro.obs.hub import Observability, detach, instrument, observe
from repro.obs.metrics import (
    BYTES_BUCKETS,
    LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import (
    ALL_CATEGORIES,
    CAT_COMMIT,
    CAT_COMPUTE,
    CAT_MPI_RECV,
    CAT_MPI_SEND,
    CAT_PAGE_FAULT,
    CAT_QUEUE,
    CAT_RECOVERY_DRAIN,
    CAT_RECOVERY_ERM,
    CAT_RECOVERY_FLQ,
    CAT_RECOVERY_SEQ,
    PID_CLUSTER,
    PID_RUNTIME,
    SpanTracer,
    TraceEvent,
)

__all__ = [
    "Observability",
    "instrument",
    "detach",
    "observe",
    "SpanTracer",
    "TraceEvent",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "BYTES_BUCKETS",
    "LATENCY_BUCKETS_US",
    "chrome_trace",
    "write_chrome_trace",
    "trace_csv",
    "write_trace_csv",
    "ALL_CATEGORIES",
    "PID_RUNTIME",
    "PID_CLUSTER",
    "CAT_MPI_SEND",
    "CAT_MPI_RECV",
    "CAT_QUEUE",
    "CAT_COMMIT",
    "CAT_PAGE_FAULT",
    "CAT_RECOVERY_DRAIN",
    "CAT_RECOVERY_ERM",
    "CAT_RECOVERY_FLQ",
    "CAT_RECOVERY_SEQ",
    "CAT_COMPUTE",
]
