"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON and flat CSV.

The JSON exporter emits the `Chrome trace event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
(JSON-object flavour, ``{"traceEvents": [...]}``), which loads directly
in `Perfetto <https://ui.perfetto.dev>`_ and ``chrome://tracing``.
Every event carries the required ``ph``/``ts``/``pid``/``tid``/``name``
keys; spans are complete ("X") events with ``dur``; metadata ("M")
events name the process and thread tracks.

The CSV exporter flattens the same records for spreadsheet/pandas
post-processing: one row per event, args JSON-encoded in the last
column.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, Optional

from repro.obs.tracer import SpanTracer, TraceEvent

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "trace_csv",
    "write_trace_csv",
]


def _event_dict(event: TraceEvent) -> dict:
    out = {
        "ph": event.ph,
        "cat": event.cat,
        "name": event.name,
        "ts": event.ts,
        "pid": event.pid,
        "tid": event.tid,
    }
    if event.ph == "X":
        out["dur"] = event.dur
    if event.ph == "i":
        out["s"] = "t"  # thread-scoped instant
    if event.args is not None:
        out["args"] = event.args
    return out


def chrome_trace(tracer: SpanTracer, metadata: Optional[dict] = None) -> dict:
    """Build the ``trace_event`` JSON object for ``tracer``.

    ``metadata`` (e.g. a metrics snapshot, the run configuration) lands
    under ``otherData``, where Perfetto surfaces it in the trace info.
    """
    events: list = []
    for pid, name in sorted(tracer.process_names.items()):
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "ts": 0, "args": {"name": name},
        })
    for (pid, tid), name in sorted(tracer.thread_names.items()):
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "ts": 0, "args": {"name": name},
        })
    events.extend(_event_dict(e) for e in sorted(tracer.events, key=lambda e: e.ts))
    trace = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    other = dict(metadata or {})
    if tracer.dropped:
        other["dropped_events"] = tracer.dropped
    if other:
        trace["otherData"] = other
    return trace


def write_chrome_trace(
    tracer: SpanTracer, path, metadata: Optional[dict] = None
) -> None:
    """Serialize :func:`chrome_trace` to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer, metadata), handle, default=str)


CSV_COLUMNS = ("ts_us", "dur_us", "ph", "category", "name", "pid", "tid", "args")


def trace_csv(events: Iterable[TraceEvent]) -> str:
    """Flatten ``events`` into CSV text (header + one row per event)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(CSV_COLUMNS)
    for event in sorted(events, key=lambda e: e.ts):
        writer.writerow([
            f"{event.ts:.3f}",
            f"{event.dur:.3f}",
            event.ph,
            event.cat,
            event.name,
            event.pid,
            event.tid,
            json.dumps(event.args, default=str) if event.args else "",
        ])
    return buffer.getvalue()


def write_trace_csv(tracer: SpanTracer, path) -> None:
    """Serialize the tracer's events as CSV to ``path``."""
    with open(path, "w") as handle:
        handle.write(trace_csv(tracer.events))
