"""Structured span/event tracer over simulated time.

The tracer records *typed* spans — named intervals of simulated time on
a (pid, tid) track, tagged with one of the fixed categories below — and
instant events, in a flat list ready for Chrome/Perfetto export
(:mod:`repro.obs.export`) or text attribution
(:mod:`repro.analysis.timeline`).

Category taxonomy (documented in ``docs/OBSERVABILITY.md``; every
instrumentation hook in the tree uses one of these):

==================  ==========================================================
category            meaning
==================  ==========================================================
``mpi.send``        one simulated MPI send: per-call software overhead plus
                    the handoff to the wire (sender side)
``mpi.recv``        receive-side time: a blocked ``MPI_Recv`` or a unit
                    blocked on its inbox
``queue``           DSMTX queue work: batch pushes (including flow-control
                    credit waits) and the subTX boundary protocol
                    (``mtx_begin`` upstream consumption, ``mtx_end``
                    forwarding)
``commit``          commit-unit group transaction commit
``page_fault``      Copy-On-Access activity: protection faults, page/word
                    fetches (requester side), COA service (server side)
``recovery.drain``  from misspeculation detection until every earlier MTX
                    has committed
``recovery.erm``    enter-recovery-mode phase (to the first barrier)
``recovery.flq``    flush-queues / reinstate-protections phase
``recovery.seq``    sequential re-execution (participants: waiting for it)
``worker.compute``  a worker executing one subTX body
``ft.failover``     node-failure declaration and degraded-mode restart
                    (fault-tolerant mode)
``ft.checkpoint``   epoch checkpoints of committed state (commit unit)
``chaos``           injected faults: crashes, drops, duplications, windows
``integrity``       end-to-end integrity events: checksum mismatches,
                    digest verification failures, scrub detections
==================  ==========================================================

Tracks: runtime units trace under ``pid == PID_RUNTIME`` with their unit
tid; the cluster substrate (MPI, channels) traces under
``pid == PID_CLUSTER`` with the global core index.  Timestamps are
simulated **microseconds** (the Chrome ``trace_event`` convention).

Recording costs nothing when no tracer is attached: every hook site
guards on ``obs is None`` before touching the tracer.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

__all__ = [
    "SpanTracer",
    "TraceEvent",
    "PID_RUNTIME",
    "PID_CLUSTER",
    "CAT_MPI_SEND",
    "CAT_MPI_RECV",
    "CAT_QUEUE",
    "CAT_COMMIT",
    "CAT_PAGE_FAULT",
    "CAT_RECOVERY_DRAIN",
    "CAT_RECOVERY_ERM",
    "CAT_RECOVERY_FLQ",
    "CAT_RECOVERY_SEQ",
    "CAT_COMPUTE",
    "CAT_FT_FAILOVER",
    "CAT_FT_CHECKPOINT",
    "CAT_FT_REPLICATION",
    "CAT_FT_PROMOTION",
    "CAT_CHAOS",
    "CAT_INTEGRITY",
    "ALL_CATEGORIES",
]

#: Track group for runtime units (tids are unit thread ids).
PID_RUNTIME = 0
#: Track group for the cluster substrate (tids are global core indices).
PID_CLUSTER = 1

CAT_MPI_SEND = "mpi.send"
CAT_MPI_RECV = "mpi.recv"
CAT_QUEUE = "queue"
CAT_COMMIT = "commit"
CAT_PAGE_FAULT = "page_fault"
CAT_RECOVERY_DRAIN = "recovery.drain"
CAT_RECOVERY_ERM = "recovery.erm"
CAT_RECOVERY_FLQ = "recovery.flq"
CAT_RECOVERY_SEQ = "recovery.seq"
CAT_COMPUTE = "worker.compute"
CAT_FT_FAILOVER = "ft.failover"
CAT_FT_CHECKPOINT = "ft.checkpoint"
CAT_FT_REPLICATION = "ft.replication"
CAT_FT_PROMOTION = "ft.promotion"
CAT_CHAOS = "chaos"
CAT_INTEGRITY = "integrity"

ALL_CATEGORIES = (
    CAT_MPI_SEND,
    CAT_MPI_RECV,
    CAT_QUEUE,
    CAT_COMMIT,
    CAT_PAGE_FAULT,
    CAT_RECOVERY_DRAIN,
    CAT_RECOVERY_ERM,
    CAT_RECOVERY_FLQ,
    CAT_RECOVERY_SEQ,
    CAT_COMPUTE,
    CAT_FT_FAILOVER,
    CAT_FT_CHECKPOINT,
    CAT_FT_REPLICATION,
    CAT_FT_PROMOTION,
    CAT_CHAOS,
    CAT_INTEGRITY,
)

_SECONDS_TO_US = 1e6


@dataclass
class TraceEvent:
    """One trace record in Chrome ``trace_event`` terms.

    ``ph`` is the phase: ``"X"`` (complete span), ``"i"`` (instant) or
    ``"C"`` (counter sample).  ``ts``/``dur`` are simulated
    microseconds.
    """

    ph: str
    cat: str
    name: str
    ts: float
    pid: int
    tid: int
    dur: float = 0.0
    args: Optional[dict] = field(default=None)


class SpanTracer:
    """Flat, bounded recorder of :class:`TraceEvent` records.

    ``capacity`` bounds memory on long runs: once reached, further
    events are counted in :attr:`dropped` rather than stored, so a
    forgotten tracer can never exhaust memory.
    """

    def __init__(self, env, capacity: int = 1_000_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.events: list[TraceEvent] = []
        self.dropped = 0
        #: Display names for Perfetto: {pid: name} and {(pid, tid): name}.
        self.process_names: Dict[int, str] = {}
        self.thread_names: Dict[tuple, str] = {}

    # -- recording ---------------------------------------------------------------

    def _append(self, event: TraceEvent) -> None:
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(event)

    def complete(
        self,
        cat: str,
        name: str,
        pid: int,
        tid: int,
        start_s: float,
        *,
        end_s: Optional[float] = None,
        **args,
    ) -> None:
        """Record a finished span from ``start_s`` (simulated seconds) to
        ``end_s`` (default: now)."""
        end = self.env.now if end_s is None else end_s
        self._append(
            TraceEvent(
                ph="X",
                cat=cat,
                name=name,
                ts=start_s * _SECONDS_TO_US,
                dur=(end - start_s) * _SECONDS_TO_US,
                pid=pid,
                tid=tid,
                args=args or None,
            )
        )

    def instant(self, cat: str, name: str, pid: int, tid: int, **args) -> None:
        """Record a zero-duration marker at the current simulated time."""
        self._append(
            TraceEvent(
                ph="i",
                cat=cat,
                name=name,
                ts=self.env.now * _SECONDS_TO_US,
                pid=pid,
                tid=tid,
                args=args or None,
            )
        )

    def counter_sample(self, name: str, pid: int, tid: int, **values) -> None:
        """Record a counter-track sample (Chrome ``"C"`` phase)."""
        self._append(
            TraceEvent(
                ph="C",
                cat="counter",
                name=name,
                ts=self.env.now * _SECONDS_TO_US,
                pid=pid,
                tid=tid,
                args=dict(values),
            )
        )

    @contextmanager
    def span(self, cat: str, name: str, pid: int, tid: int, **args) -> Iterator[None]:
        """Context-managed span; records on exit, exceptions included.

        Safe inside simulation generators: the recorded duration is the
        simulated time that elapsed across the block's yields.
        """
        start = self.env.now
        try:
            yield
        finally:
            self.complete(cat, name, pid, tid, start, **args)

    # -- track naming ------------------------------------------------------------

    def set_process_name(self, pid: int, name: str) -> None:
        self.process_names[pid] = name

    def set_thread_name(self, pid: int, tid: int, name: str) -> None:
        self.thread_names[(pid, tid)] = name

    # -- introspection -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def categories(self) -> set:
        """Distinct categories recorded so far (counter samples excluded)."""
        return {e.cat for e in self.events if e.ph != "C"}

    def spans(self) -> list:
        """Only the complete ("X") events."""
        return [e for e in self.events if e.ph == "X"]

    def last_ts(self) -> float:
        """Largest end timestamp recorded (us); 0 when empty."""
        return max((e.ts + e.dur for e in self.events), default=0.0)
