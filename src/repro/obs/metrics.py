"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the aggregate side of ``repro.obs``: where the span
tracer answers *where did the time go*, the metrics answer *how much of
everything happened*.  It subsumes the counters the evaluation relies on
(queue bytes, COA service counts, commits, recoveries) and is fed both
live — instrumentation hooks bump counters as events happen — and at
run end, when :meth:`~repro.obs.hub.Observability.finalize` ingests the
run's :class:`~repro.core.stats.RunStats`.

Everything is stdlib-only and exact: counters are plain Python ints, so
accumulation never overflows or loses precision regardless of volume.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "BYTES_BUCKETS",
    "LATENCY_BUCKETS_US",
]

#: Default buckets for byte-sized observations (payloads, batches).
BYTES_BUCKETS: Tuple[float, ...] = (
    16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
)

#: Default buckets for latency observations in microseconds.
LATENCY_BUCKETS_US: Tuple[float, ...] = (
    1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 100000,
)


class Counter:
    """A monotonically increasing count (Python int: overflow-free)."""

    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value that may move in either direction."""

    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Fixed-bucket histogram.

    ``buckets`` are upper bounds, in increasing order; one implicit
    overflow bucket catches everything beyond the last bound.  Counts
    are per-bucket (not cumulative); :meth:`cumulative` derives the
    Prometheus-style running totals.
    """

    __slots__ = ("name", "description", "buckets", "counts", "total", "sum")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = BYTES_BUCKETS,
        description: str = "",
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram {name!r} buckets must strictly increase")
        self.name = name
        self.description = description
        self.buckets = bounds
        #: One slot per bound plus the overflow slot.
        self.counts = [0] * (len(bounds) + 1)
        self.total: int = 0
        self.sum: float = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def cumulative(self) -> list:
        """Running totals per bound (the last entry is the grand total)."""
        out, running = [], 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name} n={self.total} mean={self.mean:.1f}>"


class MetricsRegistry:
    """Named metrics, created on first use and shared thereafter."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, kind: type, factory) -> object:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get(name, Counter, lambda: Counter(name, description))

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name, description))

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        description: str = "",
    ) -> Histogram:
        chosen = BYTES_BUCKETS if buckets is None else buckets
        return self._get(name, Histogram, lambda: Histogram(name, chosen, description))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """Plain-data view of every metric, keyed by name."""
        out: dict = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = metric.value
            elif isinstance(metric, Gauge):
                out[name] = metric.value
            else:  # Histogram
                hist = metric
                out[name] = {
                    "buckets": list(hist.buckets),
                    "counts": list(hist.counts),
                    "total": hist.total,
                    "sum": hist.sum,
                    "mean": hist.mean,
                }
        return out

    def render(self, title: str = "Metrics") -> str:
        """Human-readable dump, one metric per line."""
        lines = [title, "-" * len(title)]
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                lines.append(
                    f"{name:<40} n={value['total']} mean={value['mean']:.1f} "
                    f"sum={value['sum']:.0f}"
                )
            elif isinstance(value, float):
                lines.append(f"{name:<40} {value:.6g}")
            else:
                lines.append(f"{name:<40} {value}")
        return "\n".join(lines)
