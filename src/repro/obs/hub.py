"""Observability hub: one tracer + one metrics registry per run.

:func:`instrument` is the single entry point: given a constructed (not
yet run) :class:`~repro.core.runtime.DSMTXSystem`, it creates an
:class:`Observability` hub and attaches it to every hook point — the
system, its simulation environment (where the cluster substrate finds
it), the unit address spaces, and the run statistics.  All hook sites
guard on the attribute being ``None``, so a system that was never
instrumented records nothing and pays only that check.

Usage::

    system = DSMTXSystem(workload.dsmtx_plan(), config)
    hub = instrument(system)
    result = system.run()
    hub.finalize(system)
    write_chrome_trace(hub.tracer, "trace.json", metadata=hub.metrics.snapshot())

or, scoped::

    with observe(system) as hub:
        result = system.run()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import PID_CLUSTER, PID_RUNTIME, SpanTracer

__all__ = ["Observability", "instrument", "detach", "observe"]


class Observability:
    """Bundle of one :class:`SpanTracer` and one :class:`MetricsRegistry`."""

    def __init__(self, env, capacity: int = 1_000_000) -> None:
        self.env = env
        self.tracer = SpanTracer(env, capacity=capacity)
        self.metrics = MetricsRegistry()

    def finalize(self, system) -> None:
        """Ingest the run's aggregate state into the metrics registry.

        Subsumes :class:`~repro.core.stats.RunStats` — every counter the
        evaluation reports becomes a metric — and snapshots per-unit
        core utilization as gauges.
        """
        stats = system.stats
        m = self.metrics
        m.gauge("run.elapsed_seconds").set(stats.elapsed_seconds)
        m.gauge("run.bandwidth_bps").set(stats.bandwidth_bps())
        for name, value in (
            ("run.committed_mtxs", stats.committed_mtxs),
            ("run.misspeculations", stats.misspeculations),
            ("run.coa_pages_served", stats.coa_pages_served),
            ("run.coa_words_served", stats.coa_words_served),
            ("run.queue_batches", stats.queue_batches),
            ("run.reads_checked", stats.reads_checked),
            ("run.words_committed", stats.words_committed),
        ):
            m.gauge(name).set(value)
        for purpose, nbytes in sorted(stats.queue_bytes_by_purpose.items()):
            m.gauge(f"run.queue_bytes.{purpose}").set(nbytes)
        m.gauge("run.queue_bytes.total").set(stats.queue_bytes)
        for phase in ("erm", "flq", "seq"):
            m.gauge(f"run.recovery.{phase}_seconds").set(
                getattr(stats, f"{phase}_seconds")
            )
        if stats.ft_heartbeats:  # fault-tolerant mode ran
            for name, value in (
                ("run.ft.heartbeats", stats.ft_heartbeats),
                ("run.ft.acks", stats.ft_acks),
                ("run.ft.retransmits", stats.ft_retransmits),
                ("run.ft.retransmit_giveups", stats.ft_retransmit_giveups),
                ("run.ft.duplicates_dropped", stats.ft_duplicates_dropped),
                ("run.ft.frames_reordered", stats.ft_frames_reordered),
                ("run.ft.failures", len(stats.failures)),
                ("run.ft.checkpoints", len(stats.checkpoints)),
                ("run.ft.lost_iterations", stats.lost_iterations),
                ("run.ft.recovery_seconds", stats.failure_recovery_seconds),
            ):
                m.gauge(name).set(value)
            if stats.ft_repl_words or stats.ft_promotions:  # a standby ran
                for name, value in (
                    ("run.ft.repl_words", stats.ft_repl_words),
                    ("run.ft.repl_folded_words", stats.ft_repl_folded_words),
                    ("run.ft.promotions", stats.ft_promotions),
                    ("run.ft.replayed_words", stats.ft_replayed_words),
                ):
                    m.gauge(name).set(value)
            if stats.ft_round_reexecutions:  # a specfor round was re-issued
                m.gauge("run.ft.round_reexecutions").set(
                    stats.ft_round_reexecutions)
            if stats.ft_corruptions_detected or stats.ft_scrub_rounds:
                # Integrity mode saw corruption (or at least scrubbed).
                for name, value in (
                    ("run.ft.integrity_detected", stats.ft_corruptions_detected),
                    ("run.ft.integrity_repaired", stats.ft_corruptions_repaired),
                    ("run.ft.integrity_unrepairable",
                     stats.ft_corruptions_unrepairable),
                    ("run.ft.integrity_scrub_rounds", stats.ft_scrub_rounds),
                    ("run.ft.integrity_scrub_pages", stats.ft_scrub_pages),
                ):
                    m.gauge(name).set(value)
        for label, fraction in system.utilization().items():
            m.gauge(f"util.{label}").set(fraction)


def instrument(system, capacity: int = 1_000_000) -> Observability:
    """Attach a fresh hub to ``system``; returns the hub.

    Must run before :meth:`DSMTXSystem.run`.  Attaching changes no
    simulated timing — the hooks only *read* the clock — so an
    instrumented run reproduces the uninstrumented run's results
    exactly.
    """
    hub = Observability(system.env, capacity=capacity)
    system.obs = hub
    system.env.obs = hub
    system.stats.observer = hub
    # Memory hooks: per-unit address spaces report faults/installs.
    for worker in system.workers:
        worker.space.obs = hub
        worker.space.owner_tid = worker.tid
    system.try_commit.shadow.obs = hub
    system.try_commit.shadow.owner_tid = system.try_commit.tid
    system.commit.master.obs = hub
    system.commit.master.owner_tid = system.commit.tid
    # Perfetto track names.
    tracer = hub.tracer
    tracer.set_process_name(PID_RUNTIME, "dsmtx runtime units")
    tracer.set_process_name(PID_CLUSTER, "cluster cores")
    for worker in system.workers:
        tracer.set_thread_name(
            PID_RUNTIME, worker.tid,
            f"worker[{worker.stage_index}.{worker.replica}]",
        )
    tracer.set_thread_name(PID_RUNTIME, system.trycommit_tid, "try-commit")
    tracer.set_thread_name(PID_RUNTIME, system.commit_tid, "commit")
    for index, tid in enumerate(system.replica_tids):
        tracer.set_thread_name(PID_RUNTIME, tid, f"coa-replica[{index}]")
    for tid in range(system.num_units):
        core = system.core_of(tid)
        tracer.set_thread_name(PID_CLUSTER, core.index, f"core{core.index}")
    return hub


def detach(system) -> None:
    """Remove the hub from every hook point of ``system``."""
    system.obs = None
    system.env.obs = None
    system.stats.observer = None
    for worker in system.workers:
        worker.space.obs = None
    system.try_commit.shadow.obs = None
    system.commit.master.obs = None


@contextmanager
def observe(system, capacity: int = 1_000_000) -> Iterator[Observability]:
    """Scoped :func:`instrument`/:func:`detach` around a run."""
    hub = instrument(system, capacity=capacity)
    try:
        yield hub
    finally:
        detach(system)
