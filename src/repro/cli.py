"""Command-line interface.

Run benchmarks and inspect the suite without writing code::

    python -m repro list                         # Table 2
    python -m repro run 456.hmmer --cores 64     # one run, both schemes
    python -m repro sweep blackscholes           # Figure 4 panel
    python -m repro bandwidth                    # Figure 5(a)

All runs execute on the simulated cluster; times reported are simulated
seconds, speedups are against the single-core sequential execution.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import (
    bandwidth_series,
    geomean,
    measure_speedup,
    render_series,
    render_table,
)
from repro.core import DSMTXSystem, SystemConfig
from repro.workloads import BENCHMARKS, SPECULATION_LEGEND, table2_rows

DEFAULT_SWEEP = (8, 32, 64, 96, 128)


def _factory(name: str):
    if name not in BENCHMARKS:
        raise SystemExit(
            f"unknown benchmark {name!r}; run 'python -m repro list' to see them"
        )
    return BENCHMARKS[name]


def cmd_list(_args) -> int:
    """Print Table 2."""
    rows = [
        [r["benchmark"], r["suite"], r["description"], r["paradigm"], r["speculation"]]
        for r in table2_rows()
    ]
    print(render_table(
        ["Benchmark", "Suite", "Description", "Paradigm", "Speculation"], rows,
        title="Table 2: Benchmark Details",
    ))
    print()
    print("; ".join(f"{k} = {v}" for k, v in SPECULATION_LEGEND.items()))
    return 0


def cmd_run(args) -> int:
    """Run one benchmark at one core count under both schemes."""
    factory = _factory(args.benchmark)
    config = SystemConfig(total_cores=args.cores, coa_replicas=args.replicas)
    sequential = factory().sequential_seconds(config)
    print(f"{args.benchmark} on {args.cores} cores "
          f"(sequential: {sequential * 1e3:.2f} ms simulated)")
    for scheme in ("dsmtx", "tls"):
        workload = factory()
        plan = workload.dsmtx_plan() if scheme == "dsmtx" else workload.tls_plan()
        system = DSMTXSystem(plan, config)
        result = system.run()
        stats = result.stats
        print(f"  {plan.label:<24} {result.elapsed_seconds * 1e3:9.2f} ms  "
              f"{sequential / result.elapsed_seconds:6.1f}x   "
              f"[{stats.committed_mtxs} MTXs, "
              f"{stats.queue_bytes / 1e6:.1f} MB moved, "
              f"{stats.coa_pages_served} COA pages]")
    return 0


def cmd_sweep(args) -> int:
    """Speedup curve for one benchmark (a Figure 4 panel)."""
    factory = _factory(args.benchmark)
    series: dict = {}
    for scheme in ("dsmtx", "tls"):
        label = (factory().dsmtx_plan().label if scheme == "dsmtx" else "TLS")
        points = {}
        for cores in args.cores:
            plan = (factory().dsmtx_plan() if scheme == "dsmtx"
                    else factory().tls_plan())
            if cores < plan.min_cores:
                continue
            points[cores] = measure_speedup(factory, scheme, cores).speedup
        series[label] = points
    print(render_series(series, title=f"{args.benchmark} scalability"))
    return 0


def cmd_geomean(args) -> int:
    """Geomean speedups across the whole suite (Figure 4(l))."""
    rows = []
    for cores in args.cores:
        best, tls_points = [], []
        for name, factory in BENCHMARKS.items():
            dsmtx = measure_speedup(factory, "dsmtx", cores).speedup
            tls = measure_speedup(factory, "tls", cores).speedup
            best.append(max(dsmtx, tls))
            tls_points.append(tls)
        rows.append([cores, f"{geomean(best):.1f}x", f"{geomean(tls_points):.1f}x"])
        print(f"  ... {cores} cores done", file=sys.stderr)
    print(render_table(["cores", "DSMTX Best", "TLS"], rows,
                       title="Geomean speedup (Figure 4(l))"))
    return 0


def cmd_bandwidth(_args) -> int:
    """Per-benchmark bandwidth requirements (Figure 5(a))."""
    rows = []
    for name, factory in BENCHMARKS.items():
        series = bandwidth_series(factory, points=3)
        rows.append([name] + [f"{p.cores}c: {p.bandwidth_kbps:,.0f}" for p in series])
    print(render_table(
        ["benchmark", "min cores", "+1 core", "+2 cores"], rows,
        title="Bandwidth requirement (kBps), Figure 5(a)",
    ))
    return 0


def _core_list(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DSMTX reproduction: speculative parallelization on a "
                    "simulated commodity cluster",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the benchmark suite (Table 2)")

    run = sub.add_parser("run", help="run one benchmark under both schemes")
    run.add_argument("benchmark")
    run.add_argument("--cores", type=int, default=32)
    run.add_argument("--replicas", type=int, default=0,
                     help="COA read replicas (extension; cores come off "
                          "the worker budget)")

    sweep = sub.add_parser("sweep", help="speedup curve (a Figure 4 panel)")
    sweep.add_argument("benchmark")
    sweep.add_argument("--cores", type=_core_list, default=list(DEFAULT_SWEEP))

    geo = sub.add_parser("geomean", help="suite geomean (Figure 4(l))")
    geo.add_argument("--cores", type=_core_list, default=[128])

    sub.add_parser("bandwidth", help="bandwidth requirements (Figure 5(a))")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "sweep": cmd_sweep,
        "geomean": cmd_geomean,
        "bandwidth": cmd_bandwidth,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - module CLI entry
    raise SystemExit(main())
