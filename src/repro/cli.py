"""Command-line interface.

Run benchmarks and inspect the suite without writing code::

    python -m repro list                         # Table 2
    python -m repro run 456.hmmer --cores 64     # one run, both schemes
    python -m repro sweep blackscholes           # Figure 4 panel
    python -m repro bandwidth                    # Figure 5(a)
    python -m repro trace crc32 --out t.json     # Perfetto trace of one run
    python -m repro chaos --crash-node 0         # fault injection + recovery
    python -m repro chaos --corruption 0.05 --integrity   # checksum repair
    python -m repro scrub crc32                  # committed-memory audit
    python -m repro perf                         # wall-clock hot-path harness
    python -m repro campaign run scenarios/example_grid.json --workers 4
    python -m repro campaign report              # aggregate tables (latest)
    python -m repro campaign diff prev latest    # digest regression check

All runs execute on the simulated cluster; times reported are simulated
seconds, speedups are against the single-core sequential execution.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import (
    bandwidth_series,
    geomean,
    measure_speedup,
    render_attribution,
    render_series,
    render_table,
    render_timeline,
)
from repro.core import DSMTXSystem, SystemConfig
from repro.obs import instrument, write_chrome_trace, write_trace_csv
from repro.perf import cmd_perf
from repro.workloads import (
    ALL_BENCHMARKS,
    BENCHMARKS,
    SPECULATION_LEGEND,
    irregular_rows,
    table2_rows,
)

DEFAULT_SWEEP = (8, 32, 64, 96, 128)


def _factory(name: str):
    if name not in ALL_BENCHMARKS:
        raise SystemExit(
            f"unknown benchmark {name!r}; run 'python -m repro list' to see them"
        )
    return ALL_BENCHMARKS[name]


def _metadata_table(rows, title):
    return render_table(
        ["Benchmark", "Suite", "Description", "Paradigm", "Speculation"],
        [[r["benchmark"], r["suite"], r["description"], r["paradigm"],
          r["speculation"]] for r in rows],
        title=title,
    )


def cmd_list(_args) -> int:
    """Print Table 2, plus the irregular speculative_for family."""
    print(_metadata_table(table2_rows(), "Table 2: Benchmark Details"))
    print()
    print(_metadata_table(
        irregular_rows(),
        "Irregular workloads (deterministic reservations / speculative_for)"))
    print()
    print("; ".join(f"{k} = {v}" for k, v in SPECULATION_LEGEND.items()))
    return 0


def cmd_run(args) -> int:
    """Run one benchmark at one core count under every applicable scheme
    (DSMTX and TLS always; speculative_for when the workload declares a
    write_min reservation site)."""
    factory = _factory(args.benchmark)
    kwargs = {}
    if args.density is not None:
        from repro.workloads import IRREGULAR

        if args.benchmark not in IRREGULAR:
            raise SystemExit(
                f"--density only applies to the irregular workloads "
                f"({', '.join(sorted(IRREGULAR))}), not {args.benchmark!r}")
        kwargs["density"] = args.density
    config = SystemConfig(total_cores=args.cores, coa_replicas=args.replicas)
    sequential = factory(**kwargs).sequential_seconds(config)
    print(f"{args.benchmark} on {args.cores} cores "
          f"(sequential: {sequential * 1e3:.2f} ms simulated)")
    for scheme in ("dsmtx", "tls"):
        workload = factory(**kwargs)
        plan = workload.dsmtx_plan() if scheme == "dsmtx" else workload.tls_plan()
        system = DSMTXSystem(plan, config)
        result = system.run()
        stats = result.stats
        print(f"  {plan.label:<24} {result.elapsed_seconds * 1e3:9.2f} ms  "
              f"{sequential / result.elapsed_seconds:6.1f}x   "
              f"[{stats.committed_mtxs} MTXs, "
              f"{stats.queue_bytes / 1e6:.1f} MB moved, "
              f"{stats.coa_pages_served} COA pages]")
    workload = factory(**kwargs)
    if workload.reservation_site() is not None:
        from repro.paradigms import SpecForSystem

        system = SpecForSystem(workload, config, workers=args.cores - 1)
        result = system.run()
        stats = result.stats
        print(f"  {'speculative_for':<24} {result.elapsed_seconds * 1e3:9.2f} ms  "
              f"{sequential / result.elapsed_seconds:6.1f}x   "
              f"[{stats.specfor_rounds} rounds, "
              f"{stats.specfor_reservation_failures} reservation losses, "
              f"{stats.specfor_carried} carried]")
    return 0


def cmd_sweep(args) -> int:
    """Speedup curve for one benchmark (a Figure 4 panel)."""
    factory = _factory(args.benchmark)
    series: dict = {}
    for scheme in ("dsmtx", "tls"):
        label = (factory().dsmtx_plan().label if scheme == "dsmtx" else "TLS")
        points = {}
        for cores in args.cores:
            plan = (factory().dsmtx_plan() if scheme == "dsmtx"
                    else factory().tls_plan())
            if cores < plan.min_cores:
                continue
            points[cores] = measure_speedup(factory, scheme, cores).speedup
        series[label] = points
    print(render_series(series, title=f"{args.benchmark} scalability"))
    return 0


def cmd_geomean(args) -> int:
    """Geomean speedups across the whole suite (Figure 4(l))."""
    rows = []
    for cores in args.cores:
        best, tls_points = [], []
        for name, factory in BENCHMARKS.items():
            dsmtx = measure_speedup(factory, "dsmtx", cores).speedup
            tls = measure_speedup(factory, "tls", cores).speedup
            best.append(max(dsmtx, tls))
            tls_points.append(tls)
        rows.append([cores, f"{geomean(best):.1f}x", f"{geomean(tls_points):.1f}x"])
        print(f"  ... {cores} cores done", file=sys.stderr)
    print(render_table(["cores", "DSMTX Best", "TLS"], rows,
                       title="Geomean speedup (Figure 4(l))"))
    return 0


def cmd_bandwidth(_args) -> int:
    """Per-benchmark bandwidth requirements (Figure 5(a))."""
    rows = []
    for name, factory in BENCHMARKS.items():
        series = bandwidth_series(factory, points=3)
        rows.append([name] + [f"{p.cores}c: {p.bandwidth_kbps:,.0f}" for p in series])
    print(render_table(
        ["benchmark", "min cores", "+1 core", "+2 cores"], rows,
        title="Bandwidth requirement (kBps), Figure 5(a)",
    ))
    return 0


def cmd_trace(args) -> int:
    """Run one benchmark instrumented and export a Perfetto trace."""
    factory = _factory(args.benchmark)
    kwargs = {}
    if args.iterations is not None:
        kwargs["iterations"] = args.iterations
    iterations = factory(**kwargs).iterations
    if not args.no_misspec:
        # Inject one deterministic misspeculation mid-run so the trace
        # exercises the recovery categories (drain/ERM/FLQ/SEQ).
        kwargs["misspec_iterations"] = {iterations // 2}
    workload = factory(**kwargs)
    plan = (workload.dsmtx_plan() if args.scheme == "dsmtx"
            else workload.tls_plan())
    system = DSMTXSystem(plan, SystemConfig(total_cores=args.cores))
    hub = instrument(system)
    result = system.run()
    hub.finalize(system)

    out = args.out or f"{args.benchmark}.trace.json"
    metadata = {
        "benchmark": args.benchmark,
        "scheme": args.scheme,
        "plan": plan.label,
        "cores": args.cores,
        "metrics": hub.metrics.snapshot(),
    }
    write_chrome_trace(hub.tracer, out, metadata=metadata)
    if args.csv:
        write_trace_csv(hub.tracer, args.csv)

    stats = result.stats
    elapsed_us = stats.elapsed_seconds * 1e6
    print(f"{args.benchmark} ({plan.label}) on {args.cores} cores: "
          f"{stats.elapsed_seconds * 1e3:.2f} ms simulated, "
          f"{stats.committed_mtxs} MTXs, "
          f"{stats.misspeculations} misspeculation(s)")
    print(f"wrote {len(hub.tracer)} events to {out}"
          + (f" and {args.csv}" if args.csv else ""))
    if hub.tracer.dropped:
        print(f"warning: {hub.tracer.dropped} events dropped "
              f"(raise tracer capacity)", file=sys.stderr)
    print()
    print(render_attribution(hub.tracer, elapsed_us=elapsed_us))
    print()
    print(render_timeline(hub.tracer))
    print()
    print("open the JSON in https://ui.perfetto.dev (or chrome://tracing)")
    return 0


def _chaos_build(args, factory, kwargs, fault_tolerance):
    """One system under the chaos command's configuration.

    ``--replicate-commit`` implies fault tolerance even for the
    reference run: workload addresses derive from the unit layout (the
    standby reserves a unit slot), so the fault-free reference must be
    layout-identical to be byte-comparable.
    """
    workload = factory(**kwargs)
    integrity = getattr(args, "integrity", False)
    config_kwargs = dict(
        total_cores=args.cores,
        fault_tolerance=fault_tolerance or args.replicate_commit or integrity,
        commit_replication=args.replicate_commit,
        placement=args.placement,
        integrity=integrity,
    )
    if args.batch_bytes:
        config_kwargs["batch_bytes"] = args.batch_bytes
    if getattr(args, "scheme", "dsmtx") == "specfor":
        from repro.paradigms import SpecForSystem

        workers = args.cores - 1 - (1 if args.replicate_commit else 0)
        return SpecForSystem(workload, SystemConfig(**config_kwargs),
                             workers=workers)
    return DSMTXSystem(workload.dsmtx_plan(), SystemConfig(**config_kwargs))


def _chaos_plan(args, system, seed, crash_at_s):
    """The fault plan for one chaos run, resolved against ``system``
    (``--crash-commit`` targets whatever node hosts the commit unit)."""
    from repro.chaos import (
        FaultPlan,
        LinkDegrade,
        MessageCorruption,
        MessageDuplication,
        MessageLoss,
        NodeCrash,
    )

    faults = []
    crash_node = args.crash_node
    if args.crash_commit:
        crash_node = system.cluster.node_of_core(
            system._core_indices[system.commit_tid]
        )
    if crash_node >= 0:
        faults.append(NodeCrash(node=crash_node, at_s=crash_at_s))
    if args.degrade:
        faults.append(LinkDegrade(at_s=0.0, duration_s=1.0,
                                  latency_factor=args.degrade,
                                  bandwidth_factor=args.degrade))
    if args.drop:
        faults.append(MessageLoss(probability=args.drop))
    if args.dup:
        faults.append(MessageDuplication(probability=args.dup))
    if getattr(args, "corruption", 0.0):
        faults.append(MessageCorruption(probability=args.corruption))
    return FaultPlan(faults=tuple(faults), seed=seed)


def _chaos_seed_sweep(args, factory, kwargs, reference) -> int:
    """``--seed-sweep N``: N seeded chaos runs with staggered crash
    times; aggregate the recovery-latency and lost-work distributions
    and check every run against the fault-free reference."""
    from repro.analysis.resilience import memory_fingerprint
    from repro.chaos import ChaosEngine

    ref_fingerprint = memory_fingerprint(reference.commit.master)
    ref_stats = reference.stats
    base_at = args.crash_at * 1e-3
    n = args.seed_sweep
    recoveries, losses, promotions, failed = [], [], 0, []
    for index in range(n):
        seed = args.seed + index
        # Stagger the crash across the middle of the run so the sweep
        # samples different frontiers, not one instant N times.
        crash_at_s = base_at * (0.4 + 0.4 * index / max(1, n - 1))
        system = _chaos_build(args, factory, kwargs, fault_tolerance=True)
        plan = _chaos_plan(args, system, seed, crash_at_s)
        ChaosEngine(plan).attach(system.env)
        result = system.run()
        ok = (
            result.stats.committed_mtxs == ref_stats.committed_mtxs
            and memory_fingerprint(system.commit.master) == ref_fingerprint
        )
        if not ok:
            failed.append(seed)
        for record in result.stats.failures:
            recoveries.append(record.recovery_seconds)
            losses.append(record.lost_iterations)
            if record.promoted_tid >= 0:
                promotions += 1
        status = "ok" if ok else "MISMATCH"
        print(f"seed {seed}: crash at {crash_at_s * 1e3:.3f} ms, "
              f"{result.stats.committed_mtxs} MTXs, {status}")

    def spread(values, scale, unit):
        if not values:
            return "n/a"
        ordered = sorted(values)
        return (f"min {ordered[0] * scale:g}{unit}, "
                f"median {ordered[len(ordered) // 2] * scale:g}{unit}, "
                f"max {ordered[-1] * scale:g}{unit}")

    print()
    print(f"{n} seeds, {len(recoveries)} failover(s), "
          f"{promotions} standby promotion(s)")
    print(f"recovery latency: {spread(recoveries, 1e6, ' us')}")
    print(f"lost iterations:  {spread(losses, 1, '')}")
    if failed:
        print(f"FAILED seeds (results differ from fault-free run): {failed}",
              file=sys.stderr)
        return 1
    print("all seeds reproduced the fault-free results")
    return 0


def cmd_chaos(args) -> int:
    """Run one benchmark under a seeded fault plan and prove recovery.

    Executes a fault-free reference run, then the same workload in
    fault-tolerant mode under the plan, and checks the chaotic run
    committed the same results (docs/RESILIENCE.md).  ``--digest-only``
    prints nothing but the outcome digest — run it twice and compare to
    verify byte-determinism (the CI chaos-smoke job does exactly this).
    ``--seed-sweep N`` repeats the scenario across N seeds with
    staggered crash times and aggregates the recovery distributions.
    """
    from repro.analysis import render_resilience_report, run_digest
    from repro.analysis.resilience import memory_fingerprint
    from repro.chaos import ChaosEngine

    factory = _factory(args.benchmark)
    kwargs = {}
    if args.iterations is not None:
        kwargs["iterations"] = args.iterations
    if getattr(args, "density", None) is not None:
        from repro.workloads import IRREGULAR

        if args.benchmark not in IRREGULAR:
            print(f"--density applies to the irregular workloads only "
                  f"({', '.join(sorted(IRREGULAR))}), not {args.benchmark!r}",
                  file=sys.stderr)
            return 2
        kwargs["density"] = args.density

    reference = _chaos_build(args, factory, kwargs, fault_tolerance=False)
    ref_result = reference.run()

    if args.seed_sweep:
        return _chaos_seed_sweep(args, factory, kwargs, reference)

    system = _chaos_build(args, factory, kwargs, fault_tolerance=True)
    plan = _chaos_plan(args, system, args.seed, args.crash_at * 1e-3)
    engine = ChaosEngine(plan).attach(system.env)
    result = system.run()

    digest = run_digest(result.stats, master=system.commit.master, chaos=engine)
    if args.digest_only:
        print(digest)
        return 0

    print(f"{args.benchmark} on {args.cores} cores, fault plan (seed {args.seed}):")
    print("  " + plan.describe().replace("\n", "\n  "))
    print()
    print(render_resilience_report(result.stats, chaos=engine,
                                   reference=ref_result.stats))
    print()
    same_memory = (memory_fingerprint(system.commit.master)
                   == memory_fingerprint(reference.commit.master))
    same_count = result.stats.committed_mtxs == ref_result.stats.committed_mtxs
    print(f"committed memory matches fault-free run: {same_memory}")
    print(f"committed MTX count matches: {same_count} "
          f"({result.stats.committed_mtxs})")
    print(f"outcome digest: {digest}")
    if not (same_memory and same_count):
        print("FAILED: the chaotic run did not reproduce the fault-free "
              "results", file=sys.stderr)
        return 1
    return 0


def cmd_scrub(args) -> int:
    """Demonstrate the committed-memory scrubber: inject silent bit
    flips into the commit unit's master mid-run and report what the
    page-digest audit detected, repaired (from the standby's replicated
    copy), or had to declare unrepairable.
    """
    from repro.analysis.resilience import memory_fingerprint
    from repro.chaos import ChaosEngine, FaultPlan, StateCorruption

    factory = _factory(args.benchmark)
    kwargs = {}
    if args.iterations is not None:
        kwargs["iterations"] = args.iterations

    def build(interval_s=None):
        config_kwargs = dict(
            total_cores=args.cores,
            fault_tolerance=True,
            commit_replication=True,
            placement="spread",
            integrity=True,
        )
        if interval_s is not None:
            config_kwargs["scrub_interval_s"] = interval_s
        return DSMTXSystem(factory(**kwargs).dsmtx_plan(),
                           SystemConfig(**config_kwargs))

    # Probe run: sizes the scrub interval to the workload so sweeps
    # actually happen inside these microsecond-scale simulated runs.
    probe_elapsed = build().run().elapsed_seconds
    interval_s = (args.interval * 1e-3 if args.interval
                  else probe_elapsed / 16)
    reference = build(interval_s)
    ref_result = reference.run()
    at_s = (args.corrupt_at * 1e-3 if args.corrupt_at is not None
            else 0.5 * ref_result.elapsed_seconds)
    plan = FaultPlan(
        faults=(StateCorruption("memory", at_s=at_s, words=args.words),),
        seed=args.seed,
    )
    system = build(interval_s)
    engine = ChaosEngine(plan).attach(system.env)
    result = system.run()
    stats = result.stats

    flipped = sum(words for _t, _at, words in engine.state_corruption_log)
    print(f"{args.benchmark} on {args.cores} cores, integrity on, "
          f"scrub every {interval_s * 1e6:.2f} us simulated:")
    print(f"  injected: {flipped} silent bit flip(s) in committed master "
          f"memory at {at_s * 1e3:.3f} ms (seed {args.seed})")
    print(f"  audited:  {stats.ft_scrub_pages} page(s) over "
          f"{stats.ft_scrub_rounds} sweep(s)")
    print(f"  found:    {stats.ft_corruptions_detected} detected, "
          f"{stats.ft_corruptions_repaired} repaired from the standby, "
          f"{stats.ft_corruptions_unrepairable} unrepairable")
    same_memory = (memory_fingerprint(system.commit.master)
                   == memory_fingerprint(reference.commit.master))
    print(f"  committed memory matches fault-free run: {same_memory}")
    if not same_memory:
        print("FAILED: corruption survived the scrub", file=sys.stderr)
        return 1
    return 0


def _campaign_run(args) -> int:
    """``repro campaign run``: expand, sweep, persist, summarize."""
    from pathlib import Path

    from repro.analysis import render_campaign_summary
    from repro.campaign import CampaignStore, load_campaign, run_campaign

    campaign = load_campaign(args.file)
    scenarios = campaign.expand()
    trace_dir = Path(args.trace_dir) if args.trace_dir else None
    print(f"campaign {campaign.name!r}: {len(scenarios)} scenario(s) "
          f"on {args.workers} worker(s)", file=sys.stderr)

    def progress(done, total, result):
        if not args.quiet:
            print(f"  [{done}/{total}] {result.name:<44} {result.status:<6} "
                  f"{result.outcome_digest[:12]} "
                  f"{result.elapsed_sim_seconds * 1e3:8.2f} ms sim",
                  file=sys.stderr)

    results = run_campaign(scenarios, workers=args.workers,
                           trace_dir=trace_dir, progress=progress)
    with CampaignStore(args.store) as store:
        import json as _json

        campaign_id = store.record_campaign(
            name=args.name or campaign.name,
            results=results,
            source=str(args.file),
            workers=args.workers,
            spec_json=_json.dumps(campaign.to_dict(), sort_keys=True),
        )
    print()
    print(render_campaign_summary(
        [r.record() | {"wall_seconds": r.wall_seconds} for r in results],
        title=f"campaign #{campaign_id} ({campaign.name})"))
    print(f"\nstored campaign #{campaign_id} in {args.store}")
    bad = sum(1 for r in results if not r.ok)
    if bad:
        print(f"{bad} scenario(s) not ok", file=sys.stderr)
        return 1
    return 0


def _campaign_report(args) -> int:
    """``repro campaign report``: aggregate tables of one stored run."""
    from repro.analysis import render_campaign_summary
    from repro.campaign import CampaignStore

    with CampaignStore(args.store) as store:
        campaign_id = store.resolve(args.campaign)
        if args.digests:
            for name, _spec, outcome in store.outcome_digests(campaign_id):
                print(f"{outcome}  {name}")
            return 0
        records = store.results(campaign_id)
        meta = next(c for c in store.campaigns() if c["id"] == campaign_id)
    print(render_campaign_summary(
        records,
        title=(f"campaign #{campaign_id} ({meta['name']}) — "
               f"{meta['created_at']}, {meta['workers']} worker(s)")))
    return 0


def _campaign_diff(args) -> int:
    """``repro campaign diff``: outcome-digest regression check."""
    from repro.analysis import render_campaign_diff
    from repro.campaign import CampaignStore

    with CampaignStore(args.store) as store:
        diff = store.diff(args.old, args.new)
    print(render_campaign_diff(diff))
    return 0 if diff.clean else 1


def _campaign_list(args) -> int:
    """``repro campaign list``: stored campaigns, oldest first."""
    from repro.analysis import render_table
    from repro.campaign import CampaignStore

    with CampaignStore(args.store) as store:
        campaigns = store.campaigns()
    if not campaigns:
        print(f"store {args.store} holds no campaigns yet")
        return 0
    rows = [[c["id"], c["name"], c["created_at"], c["workers"],
             f"{c['ok']}/{c['scenarios']}", c["source"]]
            for c in campaigns]
    print(render_table(["id", "name", "created", "workers", "ok", "source"],
                       rows, title=f"Campaigns in {args.store}"))
    return 0


def cmd_campaign(args) -> int:
    """Run declarative scenario campaigns (docs/CAMPAIGNS.md)."""
    from repro.errors import CampaignError

    handlers = {
        "run": _campaign_run,
        "report": _campaign_report,
        "diff": _campaign_diff,
        "list": _campaign_list,
    }
    try:
        return handlers[args.campaign_command](args)
    except CampaignError as exc:
        # Validation and store errors already carry the document path
        # and field; show them as a one-line diagnosis, not a traceback.
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2


def _core_list(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DSMTX reproduction: speculative parallelization on a "
                    "simulated commodity cluster",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the benchmark suite (Table 2)")

    run = sub.add_parser("run", help="run one benchmark under both schemes")
    run.add_argument("benchmark")
    run.add_argument("--cores", type=int, default=32)
    run.add_argument("--replicas", type=int, default=0,
                     help="COA read replicas (extension; cores come off "
                          "the worker budget)")
    run.add_argument("--density", type=float, default=None,
                     help="conflict-density knob in [0,1] for the "
                          "irregular workloads")

    sweep = sub.add_parser("sweep", help="speedup curve (a Figure 4 panel)")
    sweep.add_argument("benchmark")
    sweep.add_argument("--cores", type=_core_list, default=list(DEFAULT_SWEEP))

    geo = sub.add_parser("geomean", help="suite geomean (Figure 4(l))")
    geo.add_argument("--cores", type=_core_list, default=[128])

    sub.add_parser("bandwidth", help="bandwidth requirements (Figure 5(a))")

    trace = sub.add_parser(
        "trace",
        help="run one benchmark instrumented; write a Perfetto trace "
             "(docs/OBSERVABILITY.md)",
    )
    trace.add_argument("benchmark")
    trace.add_argument("--cores", type=int, default=16)
    trace.add_argument("--scheme", choices=("dsmtx", "tls"), default="dsmtx")
    trace.add_argument("--iterations", type=int, default=None,
                       help="override the workload's iteration count")
    trace.add_argument("--out", default=None,
                       help="trace JSON path (default: <benchmark>.trace.json)")
    trace.add_argument("--csv", default=None,
                       help="also write a flat CSV of the events")
    trace.add_argument("--no-misspec", action="store_true",
                       help="do not inject the default mid-run misspeculation")

    chaos = sub.add_parser(
        "chaos",
        help="run under a seeded fault plan; verify recovery reproduces "
             "the fault-free results (docs/RESILIENCE.md)",
    )
    chaos.add_argument("benchmark", nargs="?", default="crc32")
    chaos.add_argument("--scheme", choices=("dsmtx", "specfor"),
                       default="dsmtx",
                       help="runtime to fault-inject: the DSMTX pipeline or "
                            "the deterministic-reservations runtime "
                            "(speculative_for; workers = cores - 1, minus "
                            "one more under --replicate-commit)")
    chaos.add_argument("--cores", type=int, default=8)
    chaos.add_argument("--iterations", type=int, default=24,
                       help="override the workload's iteration count")
    chaos.add_argument("--density", type=float, default=None,
                       help="conflict-density knob of the irregular "
                            "workloads (specfor benchmarks)")
    chaos.add_argument("--seed", type=int, default=7,
                       help="seed of the per-message fault draws")
    chaos.add_argument("--crash-node", type=int, default=0,
                       help="node to crash (the commit unit's node is only "
                            "survivable with --replicate-commit); negative "
                            "disables the crash")
    chaos.add_argument("--crash-commit", action="store_true",
                       help="crash whatever node hosts the commit unit "
                            "(overrides --crash-node; pair with "
                            "--replicate-commit to survive it)")
    chaos.add_argument("--replicate-commit", action="store_true",
                       help="run a hot-standby commit replica; a commit-node "
                            "crash promotes it (docs/RESILIENCE.md)")
    chaos.add_argument("--placement", choices=("pack", "spread"),
                       default="pack",
                       help="unit-to-node placement; spread isolates each "
                            "unit on its own node so single-node crashes "
                            "take out exactly one unit")
    chaos.add_argument("--seed-sweep", type=int, default=0, metavar="N",
                       help="run the scenario across N seeds with staggered "
                            "crash times; aggregate recovery latency and "
                            "lost-work distributions")
    chaos.add_argument("--crash-at", type=float, default=5.0,
                       help="crash time in simulated milliseconds")
    chaos.add_argument("--drop", type=float, default=0.0,
                       help="per-message loss probability")
    chaos.add_argument("--dup", type=float, default=0.0,
                       help="per-message duplication probability")
    chaos.add_argument("--corruption", type=float, default=0.0,
                       help="per-message silent bit-flip probability; pair "
                            "with --integrity so checksums convert the "
                            "corruption into repairable loss")
    chaos.add_argument("--integrity", action="store_true",
                       help="checksummed transport + state digests + "
                            "committed-page scrubbing (implies fault "
                            "tolerance; docs/RESILIENCE.md)")
    chaos.add_argument("--degrade", type=float, default=0.0,
                       help="degrade the fabric the whole run by this factor")
    chaos.add_argument("--batch-bytes", type=int, default=0,
                       help="override the queue batch size; small batches "
                            "make commits (and the replication stream) "
                            "progressive instead of one terminal round")
    chaos.add_argument("--digest-only", action="store_true",
                       help="print only the sha256 outcome digest "
                            "(CI determinism check)")

    scrub = sub.add_parser(
        "scrub",
        help="inject silent bit flips into committed memory and report "
             "the page-digest scrubber's detect/repair outcome "
             "(docs/RESILIENCE.md)",
    )
    scrub.add_argument("benchmark", nargs="?", default="crc32")
    scrub.add_argument("--cores", type=int, default=8)
    scrub.add_argument("--iterations", type=int, default=48,
                       help="override the workload's iteration count")
    scrub.add_argument("--words", type=int, default=2,
                       help="resident words to flip")
    scrub.add_argument("--seed", type=int, default=7,
                       help="seed of the victim-word draws")
    scrub.add_argument("--corrupt-at", type=float, default=None,
                       help="flip time in simulated milliseconds "
                            "(default: mid-run)")
    scrub.add_argument("--interval", type=float, default=0.0,
                       help="scrub interval in simulated milliseconds "
                            "(default: 1/16 of the run)")

    campaign = sub.add_parser(
        "campaign",
        help="declarative scenario campaigns: validated sweep grids fanned "
             "across host cores, with a persistent results store "
             "(docs/CAMPAIGNS.md)",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)

    def _store_flag(p):
        p.add_argument("--store", default="campaigns.sqlite",
                       help="SQLite results store "
                            "(default: ./campaigns.sqlite)")

    crun = campaign_sub.add_parser(
        "run", help="expand a campaign file and run every scenario")
    crun.add_argument("file", help="campaign document (.json/.yaml)")
    crun.add_argument("--workers", type=int, default=1,
                      help="host processes to fan scenarios across "
                           "(results are byte-identical for any value)")
    crun.add_argument("--name", default=None,
                      help="store the run under this name "
                           "(default: the campaign's own name)")
    crun.add_argument("--trace-dir", default=None,
                      help="write Perfetto traces of scenarios marked "
                           "'trace: true' into this directory")
    crun.add_argument("--quiet", action="store_true",
                      help="suppress the per-scenario progress lines")
    _store_flag(crun)

    creport = campaign_sub.add_parser(
        "report", help="aggregate tables for one stored campaign")
    creport.add_argument("campaign", nargs="?", default="latest",
                         help="campaign id, 'latest' (default), or 'prev'")
    creport.add_argument("--digests", action="store_true",
                         help="print one 'outcome_digest  scenario' line per "
                              "scenario instead (CI golden comparison)")
    _store_flag(creport)

    cdiff = campaign_sub.add_parser(
        "diff", help="compare outcome digests of two stored campaigns; "
                     "exit 1 on drift")
    cdiff.add_argument("old", nargs="?", default="prev",
                       help="baseline campaign id (default: prev)")
    cdiff.add_argument("new", nargs="?", default="latest",
                       help="candidate campaign id (default: latest)")
    _store_flag(cdiff)

    clist = campaign_sub.add_parser("list", help="stored campaigns")
    _store_flag(clist)

    perf = sub.add_parser(
        "perf",
        help="time the simulation hot path; write BENCH_sim.json "
             "(docs/PERFORMANCE.md)",
    )
    perf.add_argument("--smoke", action="store_true",
                      help="tiny matrix, one repeat: validates the harness "
                           "without overwriting real numbers")
    perf.add_argument("--repeats", type=int, default=3,
                      help="runs per matrix entry; best wall time wins")
    perf.add_argument("--out", default=None,
                      help="results path (default: ./BENCH_sim.json)")
    perf.add_argument("--guard", action="store_true",
                      help="perf-drift guard: time the guarded entries at "
                           "full size and exit 1 if events/sec regresses "
                           ">30%% vs the committed BENCH_sim.json")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "sweep": cmd_sweep,
        "geomean": cmd_geomean,
        "bandwidth": cmd_bandwidth,
        "trace": cmd_trace,
        "chaos": cmd_chaos,
        "scrub": cmd_scrub,
        "perf": cmd_perf,
        "campaign": cmd_campaign,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - module CLI entry
    raise SystemExit(main())
