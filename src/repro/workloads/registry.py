"""Benchmark registry: the paper's Table 2.

Maps benchmark names to workload classes and carries the Table 2
metadata (source suite, description, parallelization paradigm,
speculation types) for the reports and the Table 2 bench.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import ConfigurationError
from repro.workloads.alvinn import Alvinn
from repro.workloads.art import Art
from repro.workloads.base import Workload
from repro.workloads.blackscholes import BlackScholes
from repro.workloads.bzip2 import Bzip2
from repro.workloads.crc32 import Crc32
from repro.workloads.gzip import Gzip
from repro.workloads.h264ref import H264Ref
from repro.workloads.hmmer import Hmmer
from repro.workloads.li import Li
from repro.workloads.irregular import (
    ListContraction,
    MaximalIndependentSet,
    SpanningForest,
)
from repro.workloads.parser import Parser
from repro.workloads.swaptions import Swaptions

__all__ = [
    "BENCHMARKS",
    "IRREGULAR",
    "ALL_BENCHMARKS",
    "workload_class",
    "all_benchmarks",
    "irregular_benchmarks",
    "reservation_benchmarks",
    "table2_rows",
    "irregular_rows",
]

#: The 11 benchmarks of the paper's evaluation, in Table 2 order.
BENCHMARKS: dict[str, type] = {
    "052.alvinn": Alvinn,
    "130.li": Li,
    "164.gzip": Gzip,
    "179.art": Art,
    "197.parser": Parser,
    "256.bzip2": Bzip2,
    "456.hmmer": Hmmer,
    "464.h264ref": H264Ref,
    "crc32": Crc32,
    "blackscholes": BlackScholes,
    "swaptions": Swaptions,
}

#: The irregular-workload family beyond Table 2 — the PBBS problems the
#: deterministic-reservations paradigm (``speculative_for``) targets.
#: Kept out of :data:`BENCHMARKS` so the Table 2 benches, geomeans, and
#: bandwidth reports reproduce the paper's 11-benchmark evaluation
#: unchanged; every lookup path consults :data:`ALL_BENCHMARKS`.
IRREGULAR: dict[str, type] = {
    "spanning_forest": SpanningForest,
    "maximal_independent_set": MaximalIndependentSet,
    "list_contraction": ListContraction,
}

#: Every runnable workload: Table 2 plus the irregular family.
ALL_BENCHMARKS: dict[str, type] = {**BENCHMARKS, **IRREGULAR}

#: Legend for the speculation-type abbreviations (Table 2).
SPECULATION_LEGEND = {
    "CFS": "Control Flow Speculation",
    "MVS": "Memory Value Speculation",
    "MV": "Memory Versioning",
}


def workload_class(name: str) -> type:
    """Workload class for a benchmark name (Table 2 or irregular)."""
    try:
        return ALL_BENCHMARKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; known: {sorted(ALL_BENCHMARKS)}"
        ) from None


def all_benchmarks() -> Iterator[tuple[str, Callable[[], Workload]]]:
    """(name, factory) pairs in Table 2 order."""
    for name, cls in BENCHMARKS.items():
        yield name, cls


def irregular_benchmarks() -> Iterator[tuple[str, Callable[[], Workload]]]:
    """(name, factory) pairs of the irregular family."""
    for name, cls in IRREGULAR.items():
        yield name, cls


def reservation_benchmarks() -> list[str]:
    """Names of the workloads that define a ``write_min`` reservation
    site, i.e. can run under ``speculative_for``."""
    return [
        name
        for name, cls in ALL_BENCHMARKS.items()
        if cls.reservation_site is not Workload.reservation_site
    ]


def _metadata_rows(registry: dict[str, type]) -> list[dict]:
    rows = []
    for name, cls in registry.items():
        rows.append(
            {
                "benchmark": name,
                "suite": cls.suite,
                "description": cls.description,
                "paradigm": cls.paradigm,
                "speculation": "/".join(cls.speculation),
            }
        )
    return rows


def table2_rows() -> list[dict]:
    """Table 2 of the paper, one dict per benchmark."""
    return _metadata_rows(BENCHMARKS)


def irregular_rows() -> list[dict]:
    """Table 2-style metadata for the irregular workload family."""
    return _metadata_rows(IRREGULAR)
