"""179.art — image recognition / neural network (SPEC CFP 2000).

Paper parallelization: **Spec-DSWP+[S,DOALL,S]** with memory versioning.
The execution times of iterations in the parallelized loop are highly
unbalanced because the trip counts of the inner loops vary.  The paper's
first stage distributes work based on queue occupancy as a proxy for
per-worker load; with the static round-robin distribution this model
uses, the imbalance costs a little throughput instead (noted in
DESIGN.md as a substitution).  TLS suffers more: round-trip
communication on its cyclic dependences grows with the thread count,
so its speedup falls behind DSMTX's (section 5.2).
"""

from __future__ import annotations

from repro.core.config import PipelineConfig
from repro.memory import PAGE_BYTES
from repro.workloads.base import ParallelPlan, Workload
from repro.workloads.common import mix_range, touch_pages

__all__ = ["Art"]


class Art(Workload):
    name = "179.art"
    suite = "SPEC CFP 2000"
    description = "image recognition"
    paradigm = "Spec-DSWP+[S,DOALL,S]"
    speculation = ("MV",)

    #: Work-item description moved into the parallel stage (bytes).
    item_bytes = 512
    #: Dispatch cost in stage 0 (cycles).
    dispatch_cycles = 5_000
    #: F1-layer match cost bounds (cycles): highly unbalanced inner loops.
    match_cycles_min = 100_000
    match_cycles_max = 800_000
    #: Collection cost in stage 2 (cycles).
    collect_cycles = 3_000
    #: Serialized weight-update work on TLS's cyclic chain (cycles).
    weight_update_cycles = 9_000
    #: Pages of the neural-network weight state workers consult.
    weight_pages = 4

    def __init__(self, iterations=2048, misspec_iterations=None):
        super().__init__(iterations, misspec_iterations)

    def build(self, uva, owner, store):
        self.weights_base = uva.malloc_page_aligned(
            owner, self.weight_pages * PAGE_BYTES, read_only=True
        )
        self.matches_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        for page in range(self.weight_pages):
            store.write(self.weights_base + page * PAGE_BYTES, 3 * page + 2)

    def _match_cycles(self, iteration):
        return mix_range(iteration, self.match_cycles_min, self.match_cycles_max, salt=2)

    def _match(self, ctx, speculative: bool):
        i = ctx.iteration
        bias = yield from touch_pages(ctx, self.weights_base, [i % self.weight_pages])
        if speculative:
            ctx.speculate(not self.injected_misspec(i), "scan window error")
        ctx.compute(self._match_cycles(i))
        return int(mix_range(i, 0, 255, salt=3)) + bias

    # -- sequential semantics -------------------------------------------------------------

    def sequential_body(self, ctx):
        i = ctx.iteration
        ctx.compute(self.dispatch_cycles)
        match = yield from self._match(ctx, speculative=False)
        ctx.compute(self.collect_cycles)
        yield from ctx.store(self.matches_base + 8 * i, match)

    # -- Spec-DSWP plan -----------------------------------------------------------------------

    def _stage0(self, ctx):
        ctx.compute(self.dispatch_cycles)
        yield from ctx.produce("window", ctx.iteration, nbytes=self.item_bytes)

    def _stage1(self, ctx):
        ctx.consume("window")
        match = yield from self._match(ctx, speculative=True)
        yield from ctx.produce("match", match)

    def _stage2(self, ctx):
        match = ctx.consume("match")
        ctx.compute(self.collect_cycles)
        yield from ctx.store(self.matches_base + 8 * ctx.iteration, match, forward=False)

    def dsmtx_plan(self):
        return ParallelPlan(
            self,
            scheme="dsmtx",
            pipeline=PipelineConfig.from_kinds(["S", "DOALL", "S"]),
            stage_bodies=[self._stage0, self._stage1, self._stage2],
            label="Spec-DSWP+[S,DOALL,S]",
        )

    # -- TLS plan -------------------------------------------------------------------------------

    def _tls_body(self, ctx):
        i = ctx.iteration
        ctx.compute(self.dispatch_cycles)
        match = yield from self._match(ctx, speculative=True)
        ctx.compute(self.collect_cycles)
        yield from ctx.store(self.matches_base + 8 * i, match, forward=False)
        # Cyclic dependence: the learned weights chain from iteration to
        # iteration, and each iteration must apply its update *between*
        # receiving its predecessor's weights and forwarding its own —
        # serialized work sitting directly on the round-trip path.
        yield from ctx.sync_recv("weights")
        position = yield from ctx.sync_recv("matchpos")
        if position is None:
            position = 0
        ctx.compute(self.weight_update_cycles)
        yield from ctx.sync_send("weights", 1)
        yield from ctx.sync_send("matchpos", position + 1)

    def tls_plan(self):
        return ParallelPlan(
            self,
            scheme="tls",
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[self._tls_body],
            label="TLS",
        )
