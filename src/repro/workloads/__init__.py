"""The paper's evaluation benchmarks as synthetic workload kernels.

Each module models one of the 11 SPEC/PARSEC benchmarks of Table 2:
its loop structure, parallelization plans (the DSMTX plan and the
TLS-only comparison plan), speculation types, per-iteration compute, and
communication profile.  The computation is real (small) Python work on
simulated memory, scaled by calibrated cycle costs, so speculation,
validation, and rollback operate on genuine values while the timing
model reproduces the paper's bottlenecks.
"""

from repro.workloads.alvinn import Alvinn
from repro.workloads.art import Art
from repro.workloads.base import ParallelPlan, Workload, WriteThroughStore, run_body
from repro.workloads.blackscholes import BlackScholes
from repro.workloads.bzip2 import Bzip2
from repro.workloads.crc32 import Crc32
from repro.workloads.gzip import Gzip
from repro.workloads.h264ref import H264Ref
from repro.workloads.hmmer import Hmmer
from repro.workloads.irregular import (
    ListContraction,
    MaximalIndependentSet,
    SpanningForest,
)
from repro.workloads.li import Li
from repro.workloads.parser import Parser
from repro.workloads.registry import (
    ALL_BENCHMARKS,
    BENCHMARKS,
    IRREGULAR,
    SPECULATION_LEGEND,
    all_benchmarks,
    irregular_benchmarks,
    irregular_rows,
    reservation_benchmarks,
    table2_rows,
    workload_class,
)
from repro.workloads.swaptions import Swaptions

__all__ = [
    "Workload",
    "ParallelPlan",
    "WriteThroughStore",
    "run_body",
    "Alvinn",
    "Li",
    "Gzip",
    "Art",
    "Parser",
    "Bzip2",
    "Hmmer",
    "H264Ref",
    "Crc32",
    "BlackScholes",
    "Swaptions",
    "SpanningForest",
    "MaximalIndependentSet",
    "ListContraction",
    "BENCHMARKS",
    "IRREGULAR",
    "ALL_BENCHMARKS",
    "SPECULATION_LEGEND",
    "all_benchmarks",
    "irregular_benchmarks",
    "irregular_rows",
    "reservation_benchmarks",
    "table2_rows",
    "workload_class",
]
