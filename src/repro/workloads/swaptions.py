"""swaptions — portfolio pricing (PARSEC).

Paper parallelization: **Spec-DOALL** with control-flow speculation on
an error condition during price calculation; the outermost loop over
swaptions is parallelized.  As with 052.alvinn, the DSMTX and TLS
parallelizations are identical.  Scalability is limited by the input
size (section 5.2): with only as many swaptions as the input provides,
the speedup steps and flattens once workers outnumber useful work.
"""

from __future__ import annotations

from repro.core.config import PipelineConfig
from repro.memory import PAGE_BYTES
from repro.workloads.base import ParallelPlan, Workload
from repro.workloads.common import mix_range, touch_pages

__all__ = ["Swaptions"]


class Swaptions(Workload):
    name = "swaptions"
    suite = "PARSEC"
    description = "portfolio pricing"
    paradigm = "Spec-DOALL"
    speculation = ("CFS",)

    #: Monte-Carlo simulation cost per swaption (cycles).
    simulate_cycles = 1_500_000
    #: Pages of yield-curve data all workers read.
    curve_pages = 2

    def __init__(self, iterations=128, misspec_iterations=None):
        super().__init__(iterations, misspec_iterations)

    def build(self, uva, owner, store):
        self.curve_base = uva.malloc_page_aligned(
            owner, self.curve_pages * PAGE_BYTES, read_only=True
        )
        self.prices_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        for page in range(self.curve_pages):
            store.write(self.curve_base + page * PAGE_BYTES, round(0.03 + 0.001 * page, 6))

    def _simulate(self, ctx, speculative: bool):
        i = ctx.iteration
        rate = yield from touch_pages(ctx, self.curve_base, [i % self.curve_pages])
        if speculative:
            # The price-calculation error condition is speculated absent.
            ctx.speculate(not self.injected_misspec(i), "price calculation error")
        ctx.compute(self.simulate_cycles)
        price = round(100.0 * (1.0 + rate) * (0.8 + 0.4 * mix_range(i, 0.0, 1.0)), 6)
        return price

    def sequential_body(self, ctx):
        price = yield from self._simulate(ctx, speculative=False)
        yield from ctx.store(self.prices_base + 8 * ctx.iteration, price)

    def _parallel_body(self, ctx):
        price = yield from self._simulate(ctx, speculative=True)
        yield from ctx.store(self.prices_base + 8 * ctx.iteration, price, forward=False)

    def _doall_plan(self, scheme, label):
        return ParallelPlan(
            self,
            scheme=scheme,
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[self._parallel_body],
            label=label,
        )

    def dsmtx_plan(self):
        return self._doall_plan("dsmtx", "Spec-DOALL")

    def tls_plan(self):
        # Identical parallelization (section 5.1).
        return self._doall_plan("tls", "TLS")
