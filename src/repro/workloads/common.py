"""Shared helpers for the benchmark workload models.

The workload kernels mix *real* computation on simulated memory (so the
speculation machinery operates on genuine values) with *modelled* cycle
and byte costs calibrated to each benchmark's profile.  Two recurring
idioms live here:

* deterministic pseudo-randomness (:func:`mix`) — load imbalance and
  input variability must be reproducible run to run, so they derive
  from hashing the iteration index rather than a global RNG;
* page touching (:func:`touch_pages`) — modelling bulk data reads
  (files, dictionaries, weight arrays) as one word-load per page, which
  drives the Copy-On-Access machinery to transfer exactly the pages a
  real execution would.
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.errors import ConfigurationError
from repro.memory import PAGE_BYTES

__all__ = [
    "mix",
    "mix_range",
    "touch_pages",
    "page_addr",
    "with_commit_token",
    "check_access",
    "load_words",
    "store_words",
]

#: Memory-access variants a workload body can run under: ``paged`` is
#: the benchmark's reference body (one representative access per page);
#: ``word`` and ``block`` are the A/B pair for the batched access paths
#: — both perform the *same simulated work* (same charges, wire bytes,
#: and committed values), per-word vs. run-length, so comparing them
#: isolates the host-level amortization of the block APIs.
ACCESS_MODES = ("paged", "word", "block")


def check_access(access: str) -> str:
    """Validate a workload ``access`` mode."""
    if access not in ACCESS_MODES:
        raise ConfigurationError(
            f"unknown access mode {access!r}; expected one of {ACCESS_MODES}"
        )
    return access

_GOLDEN = 0x9E3779B97F4A7C15
_MASK = (1 << 64) - 1


def mix(iteration: int, salt: int = 0) -> float:
    """Deterministic hash of (iteration, salt) to a float in [0, 1)."""
    x = (iteration * _GOLDEN + salt * 0xBF58476D1CE4E5B9 + 0x94D049BB133111EB) & _MASK
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK
    x ^= x >> 31
    return x / float(1 << 64)


def mix_range(iteration: int, low: float, high: float, salt: int = 0) -> float:
    """Deterministic value in [low, high) derived from the iteration."""
    return low + (high - low) * mix(iteration, salt)


def page_addr(base: int, page_index: int, word: int = 0) -> int:
    """Word address of ``word`` on the ``page_index``-th page of a
    page-aligned allocation at ``base``."""
    return base + page_index * PAGE_BYTES + word * 8


def with_commit_token(body, serialize: bool = False, sync_values: int = 1):
    """Wrap a TLS iteration body with the ordered-commit token.

    Cluster TLS commits transactions in iteration order by passing a
    token from each iteration's worker to the next — the cyclic,
    DOACROSS-like communication pattern that puts wire latency on TLS's
    critical path (sections 2.1 and 5.2).  ``sync_values`` models
    additional synchronized loop-carried values riding the same
    round trip (e.g. 456.hmmer's histogram chain).  ``serialize=True``
    moves the token wait to the *start* of the body: the synchronized
    dependence sits inside an inner loop, so iterations cannot overlap
    at all (the 464.h264ref case).
    """

    def wrapped(ctx):
        if serialize:
            yield from ctx.sync_recv("__token__")
            yield from body(ctx)
            yield from ctx.sync_send("__token__", 1)
            return
        yield from body(ctx)
        for index in range(sync_values):
            yield from ctx.sync_recv(f"__token{index}__")
        for index in range(sync_values):
            yield from ctx.sync_send(f"__token{index}__", 1)

    return wrapped


def touch_pages(ctx, base: int, page_indices: Sequence[int]) -> Generator:
    """Load one word from each listed page of a page-aligned buffer.

    Under the MTX context each first touch per worker costs one
    Copy-On-Access round trip and transfers the whole 4 KiB page — the
    model for bulk reads of committed data.  Returns the sum of the
    touched words so callers can feed it into their computation.
    """
    total = 0
    for page_index in page_indices:
        value = yield from ctx.load(page_addr(base, page_index))
        total += value if isinstance(value, (int, float)) else 0
    return total


def load_words(ctx, base: int, count: int, access: str,
               speculative: bool = False) -> Generator:
    """Read ``count`` consecutive words under the chosen access mode.

    The ``word`` leg issues ``count`` per-word loads; the ``block`` leg
    one :meth:`load_block`.  Both charge identical simulated core time
    and observe identical values — only the Python-level call count
    differs.
    """
    if access == "block":
        values = yield from ctx.load_block(base, count, speculative)
        return list(values)
    values = []
    for offset in range(count):
        value = yield from ctx.load(base + 8 * offset, speculative)
        values.append(value)
    return values


def store_words(ctx, base: int, values, access: str,
                forward=False) -> Generator:
    """Write consecutive words under the chosen access mode (the store
    counterpart of :func:`load_words`)."""
    if access == "block":
        yield from ctx.store_block(base, values, forward=forward)
        return
    for offset, value in enumerate(values):
        yield from ctx.store(base + 8 * offset, value, forward=forward)
