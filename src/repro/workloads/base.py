"""Workload protocol.

A workload models one of the paper's benchmarks: the loop structure, the
communication profile, the per-iteration computation, and the
parallelization plans (Table 2).  Each benchmark provides:

* ``build(uva, owner, store)`` — allocate and initialize the program
  state the loop operates on (the sequential, non-transactional part of
  the program, executed by the commit unit);
* ``sequential_body(ctx)`` — one loop iteration under sequential
  semantics (the reference both for the speedup baseline and for the
  SEQ phase of misspeculation recovery);
* one or more :class:`ParallelPlan` objects — the Spec-DSWP/Spec-DOALL
  plan DSMTX executes, and the TLS plan used for the paper's
  comparison.

Loop bodies are generator functions over the context protocol of
:mod:`repro.core.context`, so one body definition serves speculative,
sequential-master, and metering execution.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Generator, Iterable, Optional, Sequence

from repro.core.config import PipelineConfig, SystemConfig
from repro.core.context import SequentialMeter
from repro.errors import ConfigurationError
from repro.memory import UnifiedVirtualAddressSpace

__all__ = ["Workload", "ParallelPlan", "run_body", "WriteThroughStore"]


def run_body(generator: Generator) -> None:
    """Exhaust a body generator outside the simulator.

    Bodies driven by a :class:`SequentialMeter` or
    :class:`~repro.core.context.MasterContext` never actually yield; a
    stray yield means the body bypassed the context protocol.
    """
    for item in generator:
        raise ConfigurationError(
            f"body yielded {item!r} outside the simulator; all effects must "
            "go through the context"
        )


class WriteThroughStore:
    """Tiny adapter giving workload ``build`` code direct word access to
    an address space (or a metering space) during initialization."""

    def __init__(self, space) -> None:
        self._space = space

    def write(self, address: int, value: Any) -> None:
        self._space.write(address, value)

    def read(self, address: int) -> Any:
        return self._space.read(address)

    def write_array(self, base: int, values: Iterable[Any], stride: int = 8) -> None:
        for offset, value in enumerate(values):
            self._space.write(base + offset * stride, value)


class ParallelPlan:
    """One parallelization of a workload, in runtime-protocol form.

    This is the object :class:`~repro.core.runtime.DSMTXSystem` consumes:
    it exposes the pipeline shape, the per-stage bodies, and the
    sequential reference semantics.
    """

    def __init__(
        self,
        workload: "Workload",
        scheme: str,
        pipeline: PipelineConfig,
        stage_bodies: Sequence[Callable],
        label: str,
    ) -> None:
        if len(stage_bodies) != pipeline.num_stages:
            raise ConfigurationError(
                f"{len(stage_bodies)} bodies for {pipeline.num_stages} stages"
            )
        self.workload = workload
        self.scheme = scheme
        self._pipeline = pipeline
        self._stage_bodies = list(stage_bodies)
        #: The paper's notation, e.g. ``Spec-DSWP+[S,DOALL,S]``.
        self.label = label

    def pipeline(self) -> PipelineConfig:
        return self._pipeline

    def stage_body(self, stage_index: int) -> Callable:
        return self._stage_bodies[stage_index]

    def sequential_body(self, context) -> Generator:
        return self.workload.sequential_body(context)

    def setup(self, system) -> None:
        self.workload.setup(system)

    @property
    def iterations(self) -> int:
        return self.workload.iterations

    @property
    def min_cores(self) -> int:
        return self._pipeline.min_cores

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ParallelPlan {self.workload.name} {self.label}>"


class Workload(ABC):
    """Base class for benchmark workloads."""

    #: Benchmark identifier, e.g. ``"164.gzip"``.
    name: str = "workload"
    #: Source suite, e.g. ``"SPEC CINT 2000"``.
    suite: str = ""
    #: One-line description (Table 2).
    description: str = ""
    #: DSMTX parallelization paradigm string (Table 2).
    paradigm: str = ""
    #: Speculation types, e.g. ``("CFS", "MV")`` (Table 2).
    speculation: tuple = ()

    def __init__(self, iterations: int, misspec_iterations: Optional[set] = None) -> None:
        if iterations < 1:
            raise ConfigurationError("a workload needs at least one iteration")
        self.iterations = iterations
        #: Iterations whose speculative execution misspeculates
        #: (deterministic injection; sequential re-execution succeeds).
        self.misspec_iterations = misspec_iterations or set()

    # -- state construction --------------------------------------------------------------

    @abstractmethod
    def build(self, uva: UnifiedVirtualAddressSpace, owner: int, store: WriteThroughStore) -> None:
        """Allocate and initialize program state (sequential prologue)."""

    def setup(self, system) -> None:
        """Runtime hook: build state in the commit unit's master memory."""
        self.build(system.uva, system.commit_tid, WriteThroughStore(system.commit.master))

    # -- semantics -------------------------------------------------------------------------

    @abstractmethod
    def sequential_body(self, context) -> Generator:
        """One whole loop iteration under sequential semantics."""

    # -- plans ----------------------------------------------------------------------------------

    @abstractmethod
    def dsmtx_plan(self) -> ParallelPlan:
        """The best DSMTX parallelization (Spec-DSWP / Spec-DOALL)."""

    @abstractmethod
    def tls_plan(self) -> ParallelPlan:
        """The TLS-only parallelization used for comparison."""

    # -- deterministic reservations (speculative_for) ----------------------------------------------

    def reservation_site(self):
        """The workload's ``write_min`` reservation site
        (:class:`~repro.paradigms.specfor.ReservationSite`), or ``None``
        when the workload has no ``speculative_for`` form.  Plan
        validation rejects ``speculative_for`` on workloads returning
        ``None`` (see
        :func:`~repro.paradigms.specfor.ensure_reservation_site`)."""
        return None

    def specfor_step(self):
        """The reserve/commit step object driven by the
        ``speculative_for`` round scheduler.  Only meaningful on
        workloads with a reservation site."""
        from repro.paradigms.specfor import ensure_reservation_site

        ensure_reservation_site(self)  # raises the did-you-mean error
        raise ConfigurationError(  # pragma: no cover - defensive
            f"{self.name} declares a reservation site but no specfor_step()"
        )

    # -- misspeculation injection ------------------------------------------------------------------

    def injected_misspec(self, iteration: int) -> bool:
        """True if speculative execution of ``iteration`` must abort."""
        return iteration in self.misspec_iterations

    # -- sequential baseline --------------------------------------------------------------------------

    def sequential_seconds(self, config: SystemConfig) -> float:
        """Single-core execution time of the whole loop (speedup base)."""
        meter = SequentialMeter(config)
        uva = UnifiedVirtualAddressSpace(owners=1)
        self.build(uva, 0, WriteThroughStore(meter._space))
        for iteration in range(self.iterations):
            meter.begin_iteration(iteration)
            run_body(self.sequential_body(meter))
        return meter.seconds

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Workload {self.name} n={self.iterations}>"
