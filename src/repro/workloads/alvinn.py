"""052.alvinn — neural network training (SPEC CFP 92).

Paper parallelization: **Spec-DOALL** with memory versioning; the DSMTX
and TLS parallelizations are identical ("both are Spec-DOALL with no
communication among the threads except in the event of misspeculation").

The parallelized loop sits at the second level of a loop nest: at every
invocation of the loop all threads must be initialized with data from
the commit unit (the weight arrays, fetched by Copy-On-Access — traffic
that grows with the number of workers), and reduction data flows back at
the end of each invocation.  Those synchronizations limit the speedup
(section 5.2), and the per-worker weight copies are why alvinn's
bandwidth requirement climbs steeply with thread count (Figure 5(a)).

Model: each iteration trains on one input pattern — it reads a rotating
subset of the weight pages (so every worker eventually copies the whole
weight array), computes the forward/backward pass, and stores its weight
-delta partials (accumulator expansion: private addresses, group-merged
at commit).  Every ``invocation_length`` iterations the body also emits
the invocation-boundary reduction traffic.
"""

from __future__ import annotations

from repro.core.config import PipelineConfig
from repro.memory import PAGE_BYTES
from repro.workloads.base import ParallelPlan, Workload
from repro.workloads.common import touch_pages

__all__ = ["Alvinn"]


class Alvinn(Workload):
    name = "052.alvinn"
    suite = "SPEC CFP 92"
    description = "neural network"
    paradigm = "Spec-DOALL"
    speculation = ("MV",)

    #: Pages of weight state every worker ends up copying.
    weight_pages = 8
    #: Weight pages touched per iteration.
    pages_per_iteration = 2
    #: Forward+backward pass cost per pattern (cycles).
    train_cycles = 600_000
    #: Weight-delta partial words stored per iteration.
    partials_per_iteration = 12
    #: Iterations per invocation of the outer loop.
    invocation_length = 256
    #: Words of reduction data exchanged at an invocation boundary.
    reduction_words = 96

    def __init__(self, iterations=2048, misspec_iterations=None):
        super().__init__(iterations, misspec_iterations)

    def build(self, uva, owner, store):
        self.weights_base = uva.malloc_page_aligned(
            owner, self.weight_pages * PAGE_BYTES, read_only=True
        )
        self.partials_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        self.reduction_base = uva.malloc_page_aligned(
            owner, (self.iterations // self.invocation_length + 1) * self.reduction_words * 8
        )
        for page in range(self.weight_pages):
            store.write(self.weights_base + page * PAGE_BYTES, page + 1)

    # -- the iteration body (same speculative and sequential shape) ------------------

    def _train(self, ctx, speculative: bool):
        i = ctx.iteration
        first = (i * 3) % self.weight_pages
        pages = [(first + k) % self.weight_pages for k in range(self.pages_per_iteration)]
        acc = yield from touch_pages(ctx, self.weights_base, pages)
        if speculative:
            ctx.speculate(not self.injected_misspec(i), "pattern error")
        ctx.compute(self.train_cycles)
        delta = (acc + i) % 97
        yield from ctx.store(self.partials_base + 8 * i, delta, forward=False)
        if (i + 1) % self.invocation_length == 0:
            # Invocation boundary: reduction over many arrays.  The
            # array data is explicitly produced in chunks (section 5.3),
            # so it moves as one bulk write-set, not word by word.
            invocation = i // self.invocation_length
            base = self.reduction_base + invocation * self.reduction_words * 8
            yield from ctx.store(base, (delta * 31 + invocation) % 251,
                                 forward=False, nbytes=self.reduction_words * 8)

    def sequential_body(self, ctx):
        yield from self._train(ctx, speculative=False)

    def _parallel_body(self, ctx):
        yield from self._train(ctx, speculative=True)

    # -- plans -------------------------------------------------------------------------

    def _doall_plan(self, scheme, label):
        return ParallelPlan(
            self,
            scheme=scheme,
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[self._parallel_body],
            label=label,
        )

    def dsmtx_plan(self):
        return self._doall_plan("dsmtx", "Spec-DOALL")

    def tls_plan(self):
        # Identical parallelization (section 5.1): Spec-DOALL with no
        # inter-thread communication outside misspeculation.
        return self._doall_plan("tls", "TLS")
