"""130.li — lisp interpreter (SPEC CINT 95).

Paper parallelization: **DSWP+[Spec-DOALL,S]** with control-flow
speculation, memory value speculation, and memory versioning.  The
parallelization speculates that each script is independent of the
others: that it neither changes the interpreter's environment nor makes
the interpreter exit.  Accesses to the interpreter environment execute
transactionally (speculative loads, value-checked by the try-commit
unit), and control-flow speculation breaks the program-exit dependence.

In TLS, speedups are limited by synchronization arising from the print
instruction (section 5.2): printed output must appear in script order,
chaining a round trip between consecutive iterations' workers on top of
the environment hand-off.
"""

from __future__ import annotations

from repro.core.config import PipelineConfig
from repro.memory import PAGE_BYTES
from repro.workloads.base import ParallelPlan, Workload
from repro.workloads.common import mix_range

__all__ = ["Li"]

#: Words of interpreter-environment state read speculatively per script.
ENV_WORDS = 4


class Li(Workload):
    name = "130.li"
    suite = "SPEC CINT 95"
    description = "lisp interpreter"
    paradigm = "DSWP+[Spec-DOALL,S]"
    speculation = ("CFS", "MVS", "MV")

    #: Script evaluation cost (cycles).
    eval_cycles = 150_000
    #: Print cost in the sequential stage (cycles).
    print_cycles = 4_500
    #: Bytes of printed output per script.
    output_bytes = 64

    def __init__(self, iterations=2048, misspec_iterations=None):
        super().__init__(iterations, misspec_iterations)

    def build(self, uva, owner, store):
        self.env_base = uva.malloc_page_aligned(owner, PAGE_BYTES, read_only=True)
        self.results_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        for word in range(ENV_WORDS):
            store.write(self.env_base + 8 * word, 1000 + word)

    def _evaluate(self, ctx, speculative: bool):
        i = ctx.iteration
        env_sum = 0
        for word in range(ENV_WORDS):
            if speculative:
                # Memory value speculation: the environment is predicted
                # unchanged by other scripts; the try-commit unit checks
                # each loaded value against what commits.
                value = yield from ctx.load(self.env_base + 8 * word, speculative=True)
            else:
                value = yield from ctx.load(self.env_base + 8 * word)
            env_sum += value
        if speculative:
            # Control-flow speculation: the script neither corrupts the
            # environment nor exits the interpreter.
            ctx.speculate(not self.injected_misspec(i), "script exited interpreter")
        ctx.compute(self.eval_cycles)
        return (env_sum + int(mix_range(i, 0, 1 << 20))) & 0xFFFFFFFF

    # -- sequential semantics ----------------------------------------------------------

    def sequential_body(self, ctx):
        i = ctx.iteration
        value = yield from self._evaluate(ctx, speculative=False)
        ctx.compute(self.print_cycles)
        yield from ctx.store(self.results_base + 8 * i, value)

    # -- Spec-DSWP plan ------------------------------------------------------------------

    def _stage0(self, ctx):
        value = yield from self._evaluate(ctx, speculative=True)
        yield from ctx.produce("output", value, nbytes=self.output_bytes)

    def _stage1(self, ctx):
        value = ctx.consume("output")
        ctx.compute(self.print_cycles)
        yield from ctx.store(self.results_base + 8 * ctx.iteration, value, forward=False)

    def dsmtx_plan(self):
        return ParallelPlan(
            self,
            scheme="dsmtx",
            pipeline=PipelineConfig.from_kinds(["DOALL", "S"]),
            stage_bodies=[self._stage0, self._stage1],
            label="DSWP+[Spec-DOALL,S]",
        )

    # -- TLS plan -------------------------------------------------------------------------------

    def _tls_body(self, ctx):
        i = ctx.iteration
        value = yield from self._evaluate(ctx, speculative=True)
        # Print synchronization: output must appear in script order, so
        # the print position chains worker-to-worker; the environment
        # hand-off rides a second synchronized value.
        yield from ctx.sync_recv("env")
        position = yield from ctx.sync_recv("printpos")
        if position is None:
            position = 0
        ctx.compute(self.print_cycles)
        yield from ctx.store(self.results_base + 8 * i, value, forward=False)
        yield from ctx.sync_send("env", 1)
        yield from ctx.sync_send("printpos", position + self.output_bytes)

    def tls_plan(self):
        return ParallelPlan(
            self,
            scheme="tls",
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[self._tls_body],
            label="TLS",
        )
