"""464.h264ref — video encoder (SPEC CINT 2006).

Paper parallelization: **Spec-DSWP+[DOALL,S]** with memory versioning.
Groups of Pictures (GoPs) are encoded in parallel; dynamic memory
versioning breaks the false memory dependences in the parallel stage.
Speedup is limited primarily by the number of GoPs available
(section 5.2) — the curve saturates once every GoP has its own worker.

Under TLS, the source and destination of the synchronized dependences
sit inside an inner loop, effectively serializing execution: an
iteration can begin only a sliver ahead of its predecessor's completion.
Spec-DSWP instead moves the dependence cycle into its own stage, letting
the other stages run ahead.
"""

from __future__ import annotations

from repro.core.config import PipelineConfig
from repro.memory import PAGE_BYTES, VersionedBuffer
from repro.workloads.base import ParallelPlan, Workload
from repro.workloads.common import touch_pages

__all__ = ["H264Ref"]


class H264Ref(Workload):
    name = "464.h264ref"
    suite = "SPEC CINT 2006"
    description = "video encoder"
    paradigm = "Spec-DSWP+[DOALL,S]"
    speculation = ("MV",)

    #: Raw frame data per GoP (pages) — each worker reads only its GoPs.
    gop_pages = 16
    #: Encode cost per GoP (cycles).
    encode_cycles = 60_000_000
    #: Encoded output per GoP (bytes).
    encoded_bytes = 98_304
    #: Bitstream-write cost per GoP (cycles).
    write_cycles = 100_000
    #: Fraction of the encode that can overlap across TLS iterations
    #: before the inner-loop synchronized dependence serializes the rest.
    tls_overlap_fraction = 0.05
    #: Live versions of the encoder state arrays.
    version_depth = 8

    def __init__(self, iterations=40, misspec_iterations=None):
        super().__init__(iterations, misspec_iterations)

    def build(self, uva, owner, store):
        self.frames_base = uva.malloc_page_aligned(
            owner, self.iterations * self.gop_pages * PAGE_BYTES, read_only=True
        )
        self.state_versions = VersionedBuffer(
            uva, owner, nbytes=PAGE_BYTES, depth=self.version_depth, name="encoder-state"
        )
        self.bitstream_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        for i in range(self.iterations):
            store.write(self.frames_base + i * self.gop_pages * PAGE_BYTES, i + 100)

    def _gop_pages_of(self, iteration):
        first = iteration * self.gop_pages
        return range(first, first + self.gop_pages)

    def _encode(self, ctx, speculative: bool):
        i = ctx.iteration
        seed = yield from touch_pages(ctx, self.frames_base, self._gop_pages_of(i))
        if speculative:
            ctx.speculate(not self.injected_misspec(i), "encoder error path")
        ctx.compute(self.encode_cycles)
        return (seed * 6364136223846793005 + 1) & 0xFFFFFFFF

    # -- sequential semantics -------------------------------------------------------------

    def sequential_body(self, ctx):
        i = ctx.iteration
        payload = yield from self._encode(ctx, speculative=False)
        ctx.compute(self.write_cycles)
        yield from ctx.store(self.bitstream_base + 8 * i, payload)

    # -- Spec-DSWP plan ----------------------------------------------------------------------

    def _stage0(self, ctx):
        i = ctx.iteration
        payload = yield from self._encode(ctx, speculative=True)
        # Encoder scratch state goes to this MTX's buffer version.
        yield from ctx.store(self.state_versions.element(i, 0), payload, forward=False)
        yield from ctx.produce("encoded", payload, nbytes=self.encoded_bytes)

    def _stage1(self, ctx):
        payload = ctx.consume("encoded")
        ctx.compute(self.write_cycles)
        yield from ctx.store(self.bitstream_base + 8 * ctx.iteration, payload,
                             forward=False)

    def dsmtx_plan(self):
        return ParallelPlan(
            self,
            scheme="dsmtx",
            pipeline=PipelineConfig.from_kinds(["DOALL", "S"]),
            stage_bodies=[self._stage0, self._stage1],
            label="Spec-DSWP+[DOALL,S]",
        )

    # -- TLS plan --------------------------------------------------------------------------------

    def _tls_body(self, ctx):
        i = ctx.iteration
        seed = yield from touch_pages(ctx, self.frames_base, self._gop_pages_of(i))
        ctx.speculate(not self.injected_misspec(i), "encoder error path")
        # A small prefix of the encode overlaps; then the synchronized
        # dependence inside the inner loop forces this iteration to wait
        # for its predecessor before the bulk of the work.
        ctx.compute(self.encode_cycles * self.tls_overlap_fraction)
        yield from ctx.sync_recv("ratecontrol")
        ctx.compute(self.encode_cycles * (1.0 - self.tls_overlap_fraction))
        payload = (seed * 6364136223846793005 + 1) & 0xFFFFFFFF
        ctx.compute(self.write_cycles)
        yield from ctx.store(self.bitstream_base + 8 * i, payload, forward=False,
                             nbytes=self.encoded_bytes)
        yield from ctx.sync_send("ratecontrol", 1)

    def tls_plan(self):
        return ParallelPlan(
            self,
            scheme="tls",
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[self._tls_body],
            label="TLS",
        )
