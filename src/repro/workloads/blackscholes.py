"""blackscholes — option pricing (PARSEC).

Paper parallelization: **DSWP+[Spec-DOALL,S]** with control-flow
speculation on an error condition.  The parallel stage prices options
independently (genuine Black-Scholes arithmetic on values held in
simulated memory); a small sequential stage collects results.  TLS peaks
around 52 cores because its ordered commit puts inter-thread
communication latency on the critical path (section 5.2).
"""

from __future__ import annotations

import math

from repro.core.config import PipelineConfig
from repro.memory import PAGE_BYTES
from repro.workloads.base import ParallelPlan, Workload
from repro.workloads.common import check_access, mix_range, store_words

__all__ = ["BlackScholes"]


def _cnd(x: float) -> float:
    """Cumulative standard normal distribution (Abramowitz-Stegun)."""
    k = 1.0 / (1.0 + 0.2316419 * abs(x))
    poly = k * (0.319381530 + k * (-0.356563782 + k * (1.781477937 + k * (
        -1.821255978 + k * 1.330274429))))
    value = 1.0 - math.exp(-0.5 * x * x) / math.sqrt(2.0 * math.pi) * poly
    return value if x >= 0 else 1.0 - value


def black_scholes_call(spot: float, strike: float, rate: float,
                       volatility: float, expiry: float) -> float:
    """Black-Scholes European call price."""
    d1 = (math.log(spot / strike) + (rate + 0.5 * volatility ** 2) * expiry) / (
        volatility * math.sqrt(expiry))
    d2 = d1 - volatility * math.sqrt(expiry)
    return spot * _cnd(d1) - strike * math.exp(-rate * expiry) * _cnd(d2)


class BlackScholes(Workload):
    name = "blackscholes"
    suite = "PARSEC"
    description = "option pricing"
    paradigm = "DSWP+[Spec-DOALL,S]"
    speculation = ("CFS",)

    #: Pricing cost per option batch (cycles).
    price_cycles = 240_000
    #: Collection cost in the sequential stage (cycles).
    collect_cycles = 400
    #: Pages of shared option-parameter tables (volatility surfaces
    #: etc.); small, so per-worker Copy-On-Access traffic stays minor.
    table_pages = 2
    #: Options priced per iteration in the ``word``/``block`` access
    #: legs (scalar math in both, so committed prices are identical).
    options_per_iteration = 16

    def __init__(self, iterations=3072, misspec_iterations=None, access="paged"):
        super().__init__(iterations, misspec_iterations)
        self.access = check_access(access)

    def build(self, uva, owner, store):
        self.tables_base = uva.malloc_page_aligned(
            owner, self.table_pages * PAGE_BYTES, read_only=True
        )
        out_words = self.iterations * (
            1 if self.access == "paged" else self.options_per_iteration
        )
        self.prices_base = uva.malloc_page_aligned(owner, out_words * 8)
        self.total_addr = uva.malloc(owner, 8)
        store.write(self.total_addr, 0.0)
        for page in range(self.table_pages):
            store.write(self.tables_base + page * PAGE_BYTES, round(0.15 + 0.02 * page, 6))

    def _price(self, ctx, speculative: bool):
        i = ctx.iteration
        page = i % self.table_pages
        volatility = yield from ctx.load(self.tables_base + page * PAGE_BYTES)
        if speculative:
            # The error path (bad inputs) is speculated not taken.
            ctx.speculate(not self.injected_misspec(i), "pricing error condition")
        ctx.compute(self.price_cycles)
        spot = round(mix_range(i, 80.0, 120.0), 6)
        strike = round(mix_range(i, 90.0, 110.0, 1), 6)
        price = black_scholes_call(spot, strike, rate=0.05,
                                   volatility=volatility, expiry=1.0)
        return round(price, 6)

    # -- word/block access legs (A/B pair for the batched access paths) ------------------

    def _price_batch(self, ctx, speculative: bool):
        """Price ``options_per_iteration`` options — scalar math in both
        legs, so the committed prices are bit-identical; the per-option
        cycle charges differ only in Python call count."""
        i = ctx.iteration
        page = i % self.table_pages
        volatility = yield from ctx.load(self.tables_base + page * PAGE_BYTES)
        if speculative:
            ctx.speculate(not self.injected_misspec(i), "pricing error condition")
        count = self.options_per_iteration
        per_option = self.price_cycles // count
        if self.access == "block":
            ctx.compute_batch(per_option, count)
        else:
            for _ in range(count):
                ctx.compute(per_option)
        prices = []
        for j in range(count):
            option = i * count + j
            spot = round(mix_range(option, 80.0, 120.0), 6)
            strike = round(mix_range(option, 90.0, 110.0, 1), 6)
            prices.append(round(black_scholes_call(
                spot, strike, rate=0.05, volatility=volatility, expiry=1.0), 6))
        return prices

    def _collect_batch(self, ctx, prices):
        ctx.compute(self.collect_cycles)
        base = self.prices_base + 8 * self.options_per_iteration * ctx.iteration
        yield from store_words(ctx, base, prices, self.access, forward=False)
        total = yield from ctx.load(self.total_addr)
        for price in prices:
            total = round(total + price, 6)
        yield from ctx.store(self.total_addr, total, forward=False)

    # -- sequential semantics ------------------------------------------------------------

    def sequential_body(self, ctx):
        if self.access != "paged":
            prices = yield from self._price_batch(ctx, speculative=False)
            yield from self._collect_batch(ctx, prices)
            return
        price = yield from self._price(ctx, speculative=False)
        yield from ctx.store(self.prices_base + 8 * ctx.iteration, price)
        ctx.compute(self.collect_cycles)
        total = yield from ctx.load(self.total_addr)
        yield from ctx.store(self.total_addr, round(total + price, 6))

    # -- Spec-DSWP plan ---------------------------------------------------------------------

    def _stage0(self, ctx):
        if self.access != "paged":
            prices = yield from self._price_batch(ctx, speculative=True)
            yield from ctx.produce("prices", tuple(prices))
            return
        price = yield from self._price(ctx, speculative=True)
        yield from ctx.produce("price", price)

    def _stage1(self, ctx):
        # The sequential stage owns the result array: keeping the store
        # off the parallel stage avoids every worker COA-faulting the
        # shared output pages.
        if self.access != "paged":
            prices = ctx.consume("prices")
            yield from self._collect_batch(ctx, prices)
            return
        price = ctx.consume("price")
        ctx.compute(self.collect_cycles)
        yield from ctx.store(self.prices_base + 8 * ctx.iteration, price, forward=False)
        total = yield from ctx.load(self.total_addr)
        yield from ctx.store(self.total_addr, round(total + price, 6), forward=False)

    def dsmtx_plan(self):
        return ParallelPlan(
            self,
            scheme="dsmtx",
            pipeline=PipelineConfig.from_kinds(["DOALL", "S"]),
            stage_bodies=[self._stage0, self._stage1],
            label="DSWP+[Spec-DOALL,S]",
        )

    # -- TLS plan --------------------------------------------------------------------------------

    def _tls_body(self, ctx):
        # The running total is a synchronized loop-carried dependence:
        # its value chains from each iteration's worker to the next, the
        # cyclic pattern that caps TLS scalability.
        price = yield from self._price(ctx, speculative=True)
        yield from ctx.store(self.prices_base + 8 * ctx.iteration, price, forward=False)
        ctx.compute(self.collect_cycles)
        prev = yield from ctx.sync_recv("total")
        if prev is None:
            prev = yield from ctx.load(self.total_addr)
        total = round(prev + price, 6)
        yield from ctx.store(self.total_addr, total, forward=False)
        yield from ctx.sync_send("total", total)

    def tls_plan(self):
        if self.access != "paged":
            from repro.errors import ConfigurationError
            raise ConfigurationError(
                "the word/block access legs exist for the DSMTX plan only"
            )
        return ParallelPlan(
            self,
            scheme="tls",
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[self._tls_body],
            label="TLS",
        )
