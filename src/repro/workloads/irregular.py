"""Irregular workloads for the deterministic-reservations paradigm.

The PBBS-style problems ``speculative_for`` shines on — spanning
forest, maximal independent set, and list contraction — modelled the
same way as the paper's Table 2 benchmarks: real values in simulated
memory plus calibrated cycle costs.  Each workload runs under *all*
paradigms:

* ``sequential_body`` — the reference loop (speedup baseline, SEQ
  recovery phase);
* ``dsmtx_plan`` / ``tls_plan`` — single-stage Spec-DOALL bodies whose
  loads of the mutable shared cells are marked speculative, so the
  value-validation pipeline detects *genuine* cross-iteration
  conflicts: misspeculation rates rise and fall with the ``density``
  knob, not with an injection schedule;
* ``reservation_site`` / ``specfor_step`` — the ``write_min``
  reserve/commit formulation for
  :class:`~repro.paradigms.specfor.SpecForSystem`.

All three step formulations are sequential-equivalent by the standard
deterministic-reservations argument: an iteration only wins when no
pending lower iteration reserved any slot it depends on, and same-round
winners have disjoint reservation sets, so their effects commute.  The
committed memory image is therefore identical to the sequential loop's
— the cross-paradigm equivalence tests pin exactly that.

``density`` in [0, 1] controls conflict density: 0 spreads the
structure out (reservations rarely collide, speculation rarely
misspeculates), 1 concentrates it (heavy contention under both
paradigms).  The conflict-density campaign sweeps this knob head-to-head
against TLS/DSMTX.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import PipelineConfig
from repro.errors import ConfigurationError
from repro.paradigms.specfor import ReservationSite
from repro.workloads.base import ParallelPlan, Workload
from repro.workloads.common import mix, with_commit_token

__all__ = ["SpanningForest", "MaximalIndependentSet", "ListContraction"]


def _check_density(density: float) -> float:
    if not 0.0 <= density <= 1.0:
        raise ConfigurationError(
            f"density must be within [0, 1], got {density!r}"
        )
    return density


class _IrregularWorkload(Workload):
    """Shared shape of the reservation-site workload family."""

    suite = "PBBS"
    paradigm = "speculative_for / Spec-DOALL"
    speculation = ("MVS", "MV")

    def __init__(self, iterations, misspec_iterations=None, density=0.5):
        super().__init__(iterations, misspec_iterations)
        self.density = _check_density(density)

    # The DSMTX/TLS single-stage bodies share one implementation with
    # the sequential reference; only the speculative markings differ.

    def sequential_body(self, ctx):
        yield from self._body(ctx, speculative=False)

    def _stage_body(self, ctx):
        yield from self._body(ctx, speculative=True)

    def dsmtx_plan(self) -> ParallelPlan:
        return ParallelPlan(
            self,
            scheme="dsmtx",
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[self._stage_body],
            label="Spec-DOALL",
        )

    def tls_plan(self) -> ParallelPlan:
        return ParallelPlan(
            self,
            scheme="tls",
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[with_commit_token(self._stage_body)],
            label="TLS",
        )

    def _body(self, ctx, speculative):
        raise NotImplementedError
        yield  # pragma: no cover - generator protocol


# -- spanning forest -----------------------------------------------------------


class _SpanningForestStep:
    """Reserve both endpoint roots; the winner links max-root under
    min-root.  Roots are found on the round-start snapshot with no path
    compression — non-root parent pointers are written once and never
    change, so a pending lower iteration can only perturb this find by
    writing a *root*, which it must have reserved."""

    def __init__(self, workload: "SpanningForest") -> None:
        self.w = workload

    def _find(self, ctx, vertex: int) -> int:
        w = self.w
        while True:
            parent = ctx.read(w.parents_base + (vertex << 3))
            if parent == vertex:
                return vertex
            vertex = parent

    def reserve(self, ctx, iteration: int) -> int:
        from repro.paradigms.specfor import TRY_COMMIT

        w = self.w
        u, v = w.edges[iteration]
        ctx.compute(w.edge_cycles)
        ru = self._find(ctx, u)
        rv = self._find(ctx, v)
        if ru != rv:
            ctx.reserve(min(ru, rv))
            ctx.reserve(max(ru, rv))
        return TRY_COMMIT

    def commit(self, ctx, iteration: int) -> bool:
        w = self.w
        u, v = w.edges[iteration]
        ru = self._find(ctx, u)
        rv = self._find(ctx, v)
        if ru == rv:
            ctx.write(w.in_forest_base + (iteration << 3), 0)
        else:
            ctx.write(w.parents_base + (max(ru, rv) << 3), min(ru, rv))
            ctx.write(w.in_forest_base + (iteration << 3), 1)
        return True


class SpanningForest(_IrregularWorkload):
    name = "spanning_forest"
    description = "incremental spanning forest over a random edge list"

    #: Union/find bookkeeping per edge (cycles).
    edge_cycles = 15_000

    def __init__(self, iterations=96, misspec_iterations=None, density=0.5):
        super().__init__(iterations, misspec_iterations, density)
        # Conflict density = endpoint sharing: a dense graph draws its
        # edges from a small vertex pool, so roots collide constantly; a
        # sparse one spreads endpoints out.
        self.num_vertices = max(2, int(iterations * (1.6 - 1.4 * self.density)))
        edges = []
        for i in range(iterations):
            u = int(mix(i, salt=11) * self.num_vertices)
            v = int(mix(i, salt=12) * self.num_vertices)
            if u == v:
                v = (u + 1) % self.num_vertices
            edges.append((u, v))
        self.edges = edges

    def build(self, uva, owner, store):
        self.parents_base = uva.malloc_page_aligned(owner, self.num_vertices * 8)
        self.in_forest_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        store.write_array(self.parents_base, range(self.num_vertices))

    def reservation_site(self):
        return ReservationSite(slots=self.num_vertices, label="vertex root")

    def specfor_step(self):
        return _SpanningForestStep(self)

    def _seq_find(self, ctx, vertex, speculative):
        while True:
            parent = yield from ctx.load(
                self.parents_base + (vertex << 3), speculative
            )
            if parent == vertex:
                return vertex
            vertex = parent

    def _body(self, ctx, speculative):
        i = ctx.iteration
        u, v = self.edges[i]
        ctx.compute(self.edge_cycles)
        # Parent cells are the mutable shared state: speculative loads
        # here are what the try-commit unit validates, so a concurrent
        # union on the same root is a genuine misspeculation.
        ru = yield from self._seq_find(ctx, u, speculative)
        rv = yield from self._seq_find(ctx, v, speculative)
        if speculative:
            ctx.speculate(not self.injected_misspec(i), "no union conflict assumed")
        if ru == rv:
            yield from ctx.store(self.in_forest_base + (i << 3), 0, forward=False)
        else:
            yield from ctx.store(
                self.parents_base + (max(ru, rv) << 3), min(ru, rv), forward=False
            )
            yield from ctx.store(self.in_forest_base + (i << 3), 1, forward=False)


# -- maximal independent set ---------------------------------------------------


class _MISStep:
    """A vertex with an IN neighbor (snapshot) goes OUT outright; an
    undecided vertex reserves itself plus every undecided neighbor and,
    if it wins them all, enters the set and knocks those neighbors out.
    Winning its own slot means no pending lower neighbor exists, so IN
    agrees with the lexicographically-first sequential MIS."""

    IN = 1
    OUT = 2

    def __init__(self, workload: "MaximalIndependentSet") -> None:
        self.w = workload

    def reserve(self, ctx, iteration: int) -> int:
        from repro.paradigms.specfor import DONE, TRY_COMMIT

        w = self.w
        ctx.compute(w.vertex_cycles)
        if ctx.read(w.flags_base + (iteration << 3)) != 0:
            return DONE
        undecided = []
        for neighbor in w.neighbors[iteration]:
            flag = ctx.read(w.flags_base + (neighbor << 3))
            if flag == self.IN:
                return TRY_COMMIT  # no reservations: going OUT is final
            if flag == 0:
                undecided.append(neighbor)
        ctx.reserve(iteration)
        for neighbor in undecided:
            ctx.reserve(neighbor)
        return TRY_COMMIT

    def commit(self, ctx, iteration: int) -> bool:
        w = self.w
        own = w.flags_base + (iteration << 3)
        for neighbor in w.neighbors[iteration]:
            if ctx.read(w.flags_base + (neighbor << 3)) == self.IN:
                ctx.write(own, self.OUT)
                return True
        ctx.write(own, self.IN)
        for neighbor in w.neighbors[iteration]:
            if ctx.read(w.flags_base + (neighbor << 3)) == 0:
                ctx.write(w.flags_base + (neighbor << 3), self.OUT)
        return True


class MaximalIndependentSet(_IrregularWorkload):
    name = "maximal_independent_set"
    description = "lexicographically-first MIS of a random graph"

    #: Per-vertex decision cost (cycles).
    vertex_cycles = 12_000

    def __init__(self, iterations=64, misspec_iterations=None, density=0.5):
        super().__init__(iterations, misspec_iterations, density)
        # Conflict density = average degree: more neighbors, more
        # overlapping reservations and more speculative-read conflicts.
        degree = 1 + int(round(self.density * 6))
        adjacency = [set() for _ in range(iterations)]
        for v in range(iterations):
            for k in range(degree):
                u = int(mix(v, salt=31 + k) * iterations)
                if u != v:
                    adjacency[v].add(u)
                    adjacency[u].add(v)
        self.neighbors = [sorted(adjacency[v]) for v in range(iterations)]

    def build(self, uva, owner, store):
        self.flags_base = uva.malloc_page_aligned(owner, self.iterations * 8)

    def reservation_site(self):
        return ReservationSite(slots=self.iterations, label="vertex")

    def specfor_step(self):
        return _MISStep(self)

    def _body(self, ctx, speculative):
        v = ctx.iteration
        ctx.compute(self.vertex_cycles)
        in_neighbor = False
        # The sequential greedy: IN unless some (lower, already decided)
        # neighbor is IN.  Neighbor flags are the contended cells.
        for neighbor in self.neighbors[v]:
            flag = yield from ctx.load(
                self.flags_base + (neighbor << 3), speculative
            )
            if flag == _MISStep.IN:
                in_neighbor = True
        if speculative:
            ctx.speculate(not self.injected_misspec(v), "stable neighborhood assumed")
        verdict = _MISStep.OUT if in_neighbor else _MISStep.IN
        yield from ctx.store(self.flags_base + (v << 3), verdict, forward=False)


# -- list contraction ----------------------------------------------------------


class _ListContractionStep:
    """Splice a node out of a doubly linked list: reserve the prev /
    self / next triple, and the winner rewires its neighbors and folds
    its value into the successor.  Same-round winners are at list
    distance >= 3, so their splices touch disjoint node triples."""

    def __init__(self, workload: "ListContraction") -> None:
        self.w = workload

    def reserve(self, ctx, iteration: int) -> int:
        from repro.paradigms.specfor import TRY_COMMIT

        w = self.w
        ctx.compute(w.splice_cycles)
        prev = ctx.read(w.prev_base + (iteration << 3))
        nxt = ctx.read(w.next_base + (iteration << 3))
        slots = sorted(
            {iteration}
            | ({prev - 1} if prev else set())
            | ({nxt - 1} if nxt else set())
        )
        for slot in slots:
            ctx.reserve(slot)
        return TRY_COMMIT

    def commit(self, ctx, iteration: int) -> bool:
        w = self.w
        prev = ctx.read(w.prev_base + (iteration << 3))
        nxt = ctx.read(w.next_base + (iteration << 3))
        value = ctx.read(w.value_base + (iteration << 3))
        if prev:
            ctx.write(w.next_base + ((prev - 1) << 3), nxt)
        if nxt:
            ctx.write(w.prev_base + ((nxt - 1) << 3), prev)
            accumulated = ctx.read(w.value_base + ((nxt - 1) << 3))
            ctx.write(w.value_base + ((nxt - 1) << 3), accumulated + value)
        ctx.write(w.out_base + (iteration << 3), value)
        return True


class ListContraction(_IrregularWorkload):
    name = "list_contraction"
    description = "value-folding contraction of a doubly linked list"

    #: Splice bookkeeping per node (cycles).
    splice_cycles = 10_000

    def __init__(self, iterations=64, misspec_iterations=None, density=0.5):
        super().__init__(iterations, misspec_iterations, density)
        # Conflict density = list locality: at 1 the list is in index
        # order, so a round's prefix is a run of adjacent nodes (every
        # splice collides with its neighbors); at 0 the permutation
        # scatters neighbors far apart in iteration order.
        n = iterations
        self.order = sorted(
            range(n),
            key=lambda i: (self.density * (i / n) + (1.0 - self.density) * mix(i, salt=51), i),
        )
        self.values = [1 + int(mix(i, salt=52) * 9) for i in range(n)]

    def build(self, uva, owner, store):
        n = self.iterations
        self.prev_base = uva.malloc_page_aligned(owner, n * 8)
        self.next_base = uva.malloc_page_aligned(owner, n * 8)
        self.value_base = uva.malloc_page_aligned(owner, n * 8)
        self.out_base = uva.malloc_page_aligned(owner, n * 8)
        prev_of = [0] * n
        next_of = [0] * n
        for position, node in enumerate(self.order):
            if position > 0:
                prev_of[node] = self.order[position - 1] + 1
            if position + 1 < n:
                next_of[node] = self.order[position + 1] + 1
        store.write_array(self.prev_base, prev_of)
        store.write_array(self.next_base, next_of)
        store.write_array(self.value_base, self.values)

    def reservation_site(self):
        return ReservationSite(slots=self.iterations, label="list node")

    def specfor_step(self):
        return _ListContractionStep(self)

    def _body(self, ctx, speculative):
        i = ctx.iteration
        ctx.compute(self.splice_cycles)
        # prev/next/value cells of the node's neighborhood are the
        # contended state: a concurrent splice next door rewires them.
        prev = yield from ctx.load(self.prev_base + (i << 3), speculative)
        nxt = yield from ctx.load(self.next_base + (i << 3), speculative)
        value = yield from ctx.load(self.value_base + (i << 3), speculative)
        if speculative:
            ctx.speculate(not self.injected_misspec(i), "no adjacent splice assumed")
        if prev:
            yield from ctx.store(self.next_base + ((prev - 1) << 3), nxt, forward=False)
        if nxt:
            yield from ctx.store(self.prev_base + ((nxt - 1) << 3), prev, forward=False)
            accumulated = yield from ctx.load(
                self.value_base + ((nxt - 1) << 3), speculative
            )
            yield from ctx.store(
                self.value_base + ((nxt - 1) << 3), accumulated + value, forward=False
            )
        yield from ctx.store(self.out_base + (i << 3), value, forward=False)
