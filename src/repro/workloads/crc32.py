"""crc32 — polynomial code checksum (reference implementation).

Paper parallelization: **DSWP+[Spec-DOALL,S]** with control-flow
speculation.  On a cluster with a network file system the original
program spends most of its time reading files, so character reads are
replaced with block reads (``getc`` -> ``fread``); the program is then
speculatively parallelized assuming no errors occur in the CRC
computation.  Speedup is limited by the number of input files
(section 5.2) — with one worker per file the curve goes flat, and
variable file sizes leave a straggler tail.
"""

from __future__ import annotations

from repro.core.config import PipelineConfig
from repro.memory import PAGE_BYTES
from repro.workloads.base import ParallelPlan, Workload
from repro.workloads.common import check_access, load_words, mix_range, page_addr, touch_pages

__all__ = ["Crc32"]


class Crc32(Workload):
    name = "crc32"
    suite = "Ref. Impl."
    description = "polynomial code checksum"
    paradigm = "DSWP+[Spec-DOALL,S]"
    speculation = ("CFS", "MV")

    #: File size bounds (pages) — iteration = one input file.
    min_file_pages = 4
    max_file_pages = 20
    #: CRC cost per file page (cycles).
    crc_cycles_per_page = 700_000
    #: Report cost in the sequential stage (cycles).
    report_cycles = 2_000
    #: Words read per file page in the ``word``/``block`` access legs
    #: (the ``fread`` of a page's contents, word-granular vs. batched).
    read_words_per_page = 64

    def __init__(self, iterations=48, misspec_iterations=None, access="paged"):
        super().__init__(iterations, misspec_iterations)
        self.access = check_access(access)
        self._file_pages = [
            int(mix_range(i, self.min_file_pages, self.max_file_pages + 1, salt=4))
            for i in range(self.iterations)
        ]
        self._file_first_page = []
        first = 0
        for pages in self._file_pages:
            self._file_first_page.append(first)
            first += pages
        self._total_pages = first

    def build(self, uva, owner, store):
        self.files_base = uva.malloc_page_aligned(
            owner, self._total_pages * PAGE_BYTES, read_only=True
        )
        self.checksums_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        for i, first in enumerate(self._file_first_page):
            store.write(self.files_base + first * PAGE_BYTES, i * 17 + 9)

    def _checksum(self, ctx, speculative: bool):
        i = ctx.iteration
        pages = self._file_pages[i]
        first = self._file_first_page[i]
        if self.access == "paged":
            # Block read: fread pulls the file through COA page by page.
            seed = yield from touch_pages(ctx, self.files_base, range(first, first + pages))
        else:
            # A/B legs: read a run of words from every file page —
            # per-word loads vs. one block load, identical simulated
            # cost and values.
            seed = 0
            for page_index in range(first, first + pages):
                values = yield from load_words(
                    ctx, page_addr(self.files_base, page_index),
                    self.read_words_per_page, self.access,
                )
                seed += sum(v for v in values if isinstance(v, (int, float)))
        if speculative:
            ctx.speculate(not self.injected_misspec(i), "CRC error assumed absent")
        ctx.compute(self.crc_cycles_per_page * pages)
        return (seed * 0xEDB88320 + pages) & 0xFFFFFFFF

    # -- sequential semantics --------------------------------------------------------------

    def sequential_body(self, ctx):
        i = ctx.iteration
        crc = yield from self._checksum(ctx, speculative=False)
        ctx.compute(self.report_cycles)
        yield from ctx.store(self.checksums_base + 8 * i, crc)

    # -- Spec-DSWP plan -----------------------------------------------------------------------

    def _stage0(self, ctx):
        crc = yield from self._checksum(ctx, speculative=True)
        yield from ctx.produce("crc", crc)

    def _stage1(self, ctx):
        crc = ctx.consume("crc")
        ctx.compute(self.report_cycles)
        yield from ctx.store(self.checksums_base + 8 * ctx.iteration, crc, forward=False)

    def dsmtx_plan(self):
        return ParallelPlan(
            self,
            scheme="dsmtx",
            pipeline=PipelineConfig.from_kinds(["DOALL", "S"]),
            stage_bodies=[self._stage0, self._stage1],
            label="DSWP+[Spec-DOALL,S]",
        )

    # -- TLS plan ----------------------------------------------------------------------------------

    def _tls_body(self, ctx):
        i = ctx.iteration
        crc = yield from self._checksum(ctx, speculative=True)
        ctx.compute(self.report_cycles)
        yield from ctx.store(self.checksums_base + 8 * i, crc, forward=False)
        # Report ordering chains between iterations.
        position = yield from ctx.sync_recv("reportpos")
        if position is None:
            position = 0
        yield from ctx.sync_send("reportpos", position + 1)

    def tls_plan(self):
        return ParallelPlan(
            self,
            scheme="tls",
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[self._tls_body],
            label="TLS",
        )
