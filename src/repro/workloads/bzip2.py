"""256.bzip2 — file compressor (SPEC CINT 2000).

Paper parallelization: **Spec-DSWP+[S,DOALL,S]** with control-flow
speculation (error paths not taken) and memory versioning.  Unlike
164.gzip, the block size is known in the first stage, so no Y-branch is
needed; DSMTX creates multiple versions of the block array.

The amount of data transferred is similar to gzip, but bzip2's
computation per block is much larger, so its bandwidth requirement — and
therefore its sensitivity to the interconnect — is far lower
(section 5.3, Figure 5(a)).  One asymmetry matters: Spec-DSWP sends the
whole input file to each DOALL thread (each worker's Copy-On-Access
gradually replicates the shared file buffer), while TLS sends only the
file descriptor and each worker reads just its own blocks.  With
communication bandwidth the limiting factor, TLS ends up slightly
*better* than Spec-DSWP here (section 5.2) — the one benchmark where
that happens.
"""

from __future__ import annotations

from repro.core.config import PipelineConfig
from repro.memory import PAGE_BYTES, VersionedBuffer
from repro.workloads.base import ParallelPlan, Workload
from repro.workloads.common import mix, touch_pages

__all__ = ["Bzip2"]


class Bzip2(Workload):
    name = "256.bzip2"
    suite = "SPEC CINT 2000"
    description = "file compressor"
    paradigm = "Spec-DSWP+[S,DOALL,S]"
    speculation = ("CFS", "MV")

    #: Uncompressed block size (bytes).
    block_bytes = 28_672
    #: Pages per block.
    block_pages = block_bytes // PAGE_BYTES
    #: Compressed output per block (bytes).
    output_bytes = 9_216
    #: Pages of the shared file buffer each DOALL worker ends up copying
    #: under Spec-DSWP (the "whole input file to each thread" effect).
    shared_buffer_pages = 64
    #: Block-read cost (cycles).
    read_cycles = 10_000
    #: Burrows-Wheeler + Huffman cost per block (cycles).
    compress_cycles = 2_600_000
    #: Output-append cost (cycles).
    write_cycles = 8_000
    #: Live versions of the block arrays.
    version_depth = 8

    def __init__(self, iterations=1100, misspec_iterations=None):
        super().__init__(iterations, misspec_iterations)

    def build(self, uva, owner, store):
        self.file_base = uva.malloc_page_aligned(
            owner, self.iterations * self.block_pages * PAGE_BYTES, read_only=True
        )
        self.shared_base = uva.malloc_page_aligned(
            owner, self.shared_buffer_pages * PAGE_BYTES, read_only=True
        )
        self.block_versions = VersionedBuffer(
            uva, owner, nbytes=PAGE_BYTES, depth=self.version_depth, name="block"
        )
        self.output_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        for i in range(self.iterations):
            store.write(self.file_base + i * self.block_pages * PAGE_BYTES, i * 11 + 3)
        for page in range(self.shared_buffer_pages):
            store.write(self.shared_base + page * PAGE_BYTES, page)

    def _compress(self, ctx, seed):
        ctx.compute(self.compress_cycles)
        return (seed * 40503 + 12345) & 0xFFFFFFFF

    def _shared_pages_of(self, iteration):
        first = int(mix(iteration, 5) * self.shared_buffer_pages)
        return [first, (first + 1) % self.shared_buffer_pages]

    # -- sequential semantics -----------------------------------------------------------

    def sequential_body(self, ctx):
        i = ctx.iteration
        ctx.compute(self.read_cycles)
        seed = yield from touch_pages(ctx, self.file_base, [i * self.block_pages])
        extra = yield from touch_pages(ctx, self.shared_base, self._shared_pages_of(i))
        digest = self._compress(ctx, seed + extra)
        ctx.compute(self.write_cycles)
        yield from ctx.store(self.output_base + 8 * i, digest)

    # -- Spec-DSWP plan --------------------------------------------------------------------

    def _stage0(self, ctx):
        i = ctx.iteration
        ctx.compute(self.read_cycles)
        # Error-handling control-flow paths are speculated not taken.
        ctx.speculate(not self.injected_misspec(i), "read error path")
        seed = i * 11 + 3
        yield from ctx.produce("block", seed, nbytes=self.block_bytes)

    def _stage1(self, ctx):
        i = ctx.iteration
        seed = ctx.consume("block")
        if ctx.first_on_worker:
            # "Spec-DSWP sends the whole input file to each DOALL
            # thread" (section 5.2): the worker's first access pulls the
            # whole shared file buffer over via Copy-On-Access.
            yield from touch_pages(ctx, self.shared_base, range(self.shared_buffer_pages))
        extra = yield from touch_pages(ctx, self.shared_base, self._shared_pages_of(i))
        digest = self._compress(ctx, seed + extra)
        yield from ctx.store(self.block_versions.element(i, 0), digest, forward=False)
        yield from ctx.produce("compressed", digest, nbytes=self.output_bytes)

    def _stage2(self, ctx):
        i = ctx.iteration
        digest = ctx.consume("compressed")
        ctx.compute(self.write_cycles)
        yield from ctx.store(self.output_base + 8 * i, digest, forward=False,
                             nbytes=self.output_bytes)

    def dsmtx_plan(self):
        return ParallelPlan(
            self,
            scheme="dsmtx",
            pipeline=PipelineConfig.from_kinds(["S", "DOALL", "S"]),
            stage_bodies=[self._stage0, self._stage1, self._stage2],
            label="Spec-DSWP+[S,DOALL,S]",
        )

    # -- TLS plan --------------------------------------------------------------------------------

    def _tls_body(self, ctx):
        i = ctx.iteration
        ctx.compute(self.read_cycles)
        ctx.speculate(not self.injected_misspec(i), "read error path")
        # TLS receives only the file descriptor: each worker reads just
        # its own block (and the shared-buffer pages it actually needs).
        seed = yield from touch_pages(
            ctx, self.file_base,
            range(i * self.block_pages, (i + 1) * self.block_pages),
        )
        extra = yield from touch_pages(ctx, self.shared_base, self._shared_pages_of(i))
        digest = self._compress(ctx, seed + extra)
        ctx.compute(self.write_cycles)
        yield from ctx.store(self.output_base + 8 * i, digest, forward=False,
                             nbytes=self.output_bytes)
        position = yield from ctx.sync_recv("outpos")
        if position is None:
            position = 0
        yield from ctx.sync_send("outpos", position + self.output_bytes)

    def tls_plan(self):
        return ParallelPlan(
            self,
            scheme="tls",
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[self._tls_body],
            label="TLS",
        )
