"""456.hmmer — gene sequence database search (SPEC CINT 2006).

Paper parallelization: **Spec-DSWP+[DOALL,S]** with memory versioning.
The first stage calculates sequence scores in parallel; the second
computes a histogram of the scores sequentially, with max-reduction for
the best score.  Spec-DSWP scales to high core counts because the
histogram stage is tiny and decoupled; TLS instead carries the histogram
and maximum through a cyclic synchronized dependence, putting
inter-thread communication latency on the critical path — its speedup
peaks and then flattens as threads (and inter-node hops) increase
(section 5.2).
"""

from __future__ import annotations

from repro.core.config import PipelineConfig
from repro.memory import PAGE_BYTES
from repro.workloads.base import ParallelPlan, Workload
from repro.workloads.common import check_access, load_words, mix_range, store_words, touch_pages

__all__ = ["Hmmer"]

#: Histogram bin count.
BINS = 64


class Hmmer(Workload):
    name = "456.hmmer"
    suite = "SPEC CINT 2006"
    description = "gene sequence database search"
    paradigm = "Spec-DSWP+[DOALL,S]"
    speculation = ("MV",)

    #: Viterbi scoring cost per sequence (cycles).
    score_cycles = 280_000
    #: Histogram update cost (cycles).
    histogram_cycles = 800
    #: Pages of HMM model tables every worker reads.
    model_pages = 2
    #: Sequences scored per iteration in the ``word``/``block`` access
    #: legs: the histogram stage then reads and rewrites the whole
    #: 64-bin histogram per iteration — per-word vs. batched.
    seqs_per_iteration = 16

    def __init__(self, iterations=2560, misspec_iterations=None, access="paged"):
        super().__init__(iterations, misspec_iterations)
        self.access = check_access(access)

    def build(self, uva, owner, store):
        self.model_base = uva.malloc_page_aligned(
            owner, self.model_pages * PAGE_BYTES, read_only=True
        )
        self.hist_base = uva.malloc_page_aligned(owner, BINS * 8)
        self.max_addr = uva.malloc(owner, 8)
        store.write(self.max_addr, 0)
        for page in range(self.model_pages):
            store.write(self.model_base + page * PAGE_BYTES, 17 + page)

    def _score(self, ctx):
        i = ctx.iteration
        bias = yield from touch_pages(ctx, self.model_base, [i % self.model_pages])
        ctx.speculate(not self.injected_misspec(i), "sequence error")
        ctx.compute(self.score_cycles)
        return int(mix_range(i, 0, 1000) + bias)

    def _histogram_update(self, ctx, score):
        ctx.compute(self.histogram_cycles)
        bin_addr = self.hist_base + 8 * (score % BINS)
        count = yield from ctx.load(bin_addr)
        yield from ctx.store(bin_addr, count + 1, forward=False)
        best = yield from ctx.load(self.max_addr)
        if score > best:
            # Max-reduction: only the new maximum is written back.
            yield from ctx.store(self.max_addr, score, forward=False)

    # -- word/block access legs (A/B pair for the batched access paths) ---------------

    def _scores_batch(self, ctx, speculative: bool):
        """Score ``seqs_per_iteration`` sequences; identical charges and
        values in the ``word`` and ``block`` legs."""
        i = ctx.iteration
        bias = yield from touch_pages(ctx, self.model_base, [i % self.model_pages])
        if speculative:
            ctx.speculate(not self.injected_misspec(i), "sequence error")
        if self.access == "block":
            ctx.compute_batch(self.score_cycles, self.seqs_per_iteration)
        else:
            for _ in range(self.seqs_per_iteration):
                ctx.compute(self.score_cycles)
        return [
            int(mix_range(i * self.seqs_per_iteration + j, 0, 1000) + bias)
            for j in range(self.seqs_per_iteration)
        ]

    def _histogram_fold_batch(self, ctx, scores):
        """Read-modify-write the whole histogram plus the running max —
        ``word``: 64 loads + 64 stores; ``block``: one load_block + one
        store_block.  Same simulated cost, same committed values."""
        ctx.compute(self.histogram_cycles * len(scores))
        hist = yield from load_words(ctx, self.hist_base, BINS, self.access)
        best = yield from ctx.load(self.max_addr)
        for score in scores:
            hist[score % BINS] += 1
            if score > best:
                best = score
        yield from store_words(ctx, self.hist_base, hist, self.access, forward=False)
        yield from ctx.store(self.max_addr, best, forward=False)

    # -- sequential semantics ----------------------------------------------------------

    def sequential_body(self, ctx):
        if self.access != "paged":
            scores = yield from self._scores_batch(ctx, speculative=False)
            yield from self._histogram_fold_batch(ctx, scores)
            return
        i = ctx.iteration
        bias = yield from touch_pages(ctx, self.model_base, [i % self.model_pages])
        ctx.compute(self.score_cycles)
        score = int(mix_range(i, 0, 1000) + bias)
        yield from self._histogram_update(ctx, score)

    # -- Spec-DSWP plan -------------------------------------------------------------------

    def _stage0(self, ctx):
        if self.access != "paged":
            scores = yield from self._scores_batch(ctx, speculative=True)
            yield from ctx.produce("scores", tuple(scores))
            return
        score = yield from self._score(ctx)
        yield from ctx.produce("score", score)

    def _stage1(self, ctx):
        if self.access != "paged":
            scores = ctx.consume("scores")
            yield from self._histogram_fold_batch(ctx, scores)
            return
        score = ctx.consume("score")
        yield from self._histogram_update(ctx, score)

    def dsmtx_plan(self):
        return ParallelPlan(
            self,
            scheme="dsmtx",
            pipeline=PipelineConfig.from_kinds(["DOALL", "S"]),
            stage_bodies=[self._stage0, self._stage1],
            label="Spec-DSWP+[DOALL,S]",
        )

    # -- TLS plan ------------------------------------------------------------------------------

    def _tls_body(self, ctx):
        score = yield from self._score(ctx)
        # The histogram and running maximum are synchronized loop-carried
        # dependences: each iteration's worker forwards them to the next,
        # a cyclic pattern whose latency bounds throughput.
        prev_max = yield from ctx.sync_recv("max")
        if prev_max is None:
            prev_max = yield from ctx.load(self.max_addr)
        hist = yield from ctx.sync_recv("hist")
        if hist is None:
            hist = {}
        ctx.compute(self.histogram_cycles)
        bin_index = score % BINS
        if bin_index in hist:
            count = hist[bin_index]
        else:
            count = yield from ctx.load(self.hist_base + 8 * bin_index)
        hist = dict(hist)
        hist[bin_index] = count + 1
        yield from ctx.store(self.hist_base + 8 * bin_index, count + 1, forward=False)
        best = max(prev_max, score)
        yield from ctx.store(self.max_addr, best, forward=False)
        yield from ctx.sync_send("max", best)
        yield from ctx.sync_send("hist", hist)

    def tls_plan(self):
        if self.access != "paged":
            from repro.errors import ConfigurationError
            raise ConfigurationError(
                "the word/block access legs exist for the DSMTX plan only"
            )
        return ParallelPlan(
            self,
            scheme="tls",
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[self._tls_body],
            label="TLS",
        )
