"""456.hmmer — gene sequence database search (SPEC CINT 2006).

Paper parallelization: **Spec-DSWP+[DOALL,S]** with memory versioning.
The first stage calculates sequence scores in parallel; the second
computes a histogram of the scores sequentially, with max-reduction for
the best score.  Spec-DSWP scales to high core counts because the
histogram stage is tiny and decoupled; TLS instead carries the histogram
and maximum through a cyclic synchronized dependence, putting
inter-thread communication latency on the critical path — its speedup
peaks and then flattens as threads (and inter-node hops) increase
(section 5.2).
"""

from __future__ import annotations

from repro.core.config import PipelineConfig
from repro.memory import PAGE_BYTES
from repro.workloads.base import ParallelPlan, Workload
from repro.workloads.common import mix_range, touch_pages

__all__ = ["Hmmer"]

#: Histogram bin count.
BINS = 64


class Hmmer(Workload):
    name = "456.hmmer"
    suite = "SPEC CINT 2006"
    description = "gene sequence database search"
    paradigm = "Spec-DSWP+[DOALL,S]"
    speculation = ("MV",)

    #: Viterbi scoring cost per sequence (cycles).
    score_cycles = 280_000
    #: Histogram update cost (cycles).
    histogram_cycles = 800
    #: Pages of HMM model tables every worker reads.
    model_pages = 2

    def __init__(self, iterations=2560, misspec_iterations=None):
        super().__init__(iterations, misspec_iterations)

    def build(self, uva, owner, store):
        self.model_base = uva.malloc_page_aligned(
            owner, self.model_pages * PAGE_BYTES, read_only=True
        )
        self.hist_base = uva.malloc_page_aligned(owner, BINS * 8)
        self.max_addr = uva.malloc(owner, 8)
        store.write(self.max_addr, 0)
        for page in range(self.model_pages):
            store.write(self.model_base + page * PAGE_BYTES, 17 + page)

    def _score(self, ctx):
        i = ctx.iteration
        bias = yield from touch_pages(ctx, self.model_base, [i % self.model_pages])
        ctx.speculate(not self.injected_misspec(i), "sequence error")
        ctx.compute(self.score_cycles)
        return int(mix_range(i, 0, 1000) + bias)

    def _histogram_update(self, ctx, score):
        ctx.compute(self.histogram_cycles)
        bin_addr = self.hist_base + 8 * (score % BINS)
        count = yield from ctx.load(bin_addr)
        yield from ctx.store(bin_addr, count + 1, forward=False)
        best = yield from ctx.load(self.max_addr)
        if score > best:
            # Max-reduction: only the new maximum is written back.
            yield from ctx.store(self.max_addr, score, forward=False)

    # -- sequential semantics ----------------------------------------------------------

    def sequential_body(self, ctx):
        i = ctx.iteration
        bias = yield from touch_pages(ctx, self.model_base, [i % self.model_pages])
        ctx.compute(self.score_cycles)
        score = int(mix_range(i, 0, 1000) + bias)
        yield from self._histogram_update(ctx, score)

    # -- Spec-DSWP plan -------------------------------------------------------------------

    def _stage0(self, ctx):
        score = yield from self._score(ctx)
        yield from ctx.produce("score", score)

    def _stage1(self, ctx):
        score = ctx.consume("score")
        yield from self._histogram_update(ctx, score)

    def dsmtx_plan(self):
        return ParallelPlan(
            self,
            scheme="dsmtx",
            pipeline=PipelineConfig.from_kinds(["DOALL", "S"]),
            stage_bodies=[self._stage0, self._stage1],
            label="Spec-DSWP+[DOALL,S]",
        )

    # -- TLS plan ------------------------------------------------------------------------------

    def _tls_body(self, ctx):
        score = yield from self._score(ctx)
        # The histogram and running maximum are synchronized loop-carried
        # dependences: each iteration's worker forwards them to the next,
        # a cyclic pattern whose latency bounds throughput.
        prev_max = yield from ctx.sync_recv("max")
        if prev_max is None:
            prev_max = yield from ctx.load(self.max_addr)
        hist = yield from ctx.sync_recv("hist")
        if hist is None:
            hist = {}
        ctx.compute(self.histogram_cycles)
        bin_index = score % BINS
        if bin_index in hist:
            count = hist[bin_index]
        else:
            count = yield from ctx.load(self.hist_base + 8 * bin_index)
        hist = dict(hist)
        hist[bin_index] = count + 1
        yield from ctx.store(self.hist_base + 8 * bin_index, count + 1, forward=False)
        best = max(prev_max, score)
        yield from ctx.store(self.max_addr, best, forward=False)
        yield from ctx.sync_send("max", best)
        yield from ctx.sync_send("hist", hist)

    def tls_plan(self):
        return ParallelPlan(
            self,
            scheme="tls",
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[self._tls_body],
            label="TLS",
        )
