"""164.gzip — file compressor (SPEC CINT 2000).

Paper parallelization: **Spec-DSWP+[S,DOALL,S]** with memory versioning.
Compression works in three stages: (1) read a block from the input
file, (2) compress blocks in parallel, (3) write the compressed block.
gzip uses a variable block size — the start of the next block is known
only after the current block compresses — so the Y-branch is used to
break that dependence and start blocks at fixed intervals; DSMTX's
dynamic memory versioning provides the multiple block-array versions.

gzip has the highest bandwidth requirement of the suite (Figure 5(a)):
every block moves through the pipeline queues in bulk, and the NIC of
the first stage's node saturates — which is exactly what limits its
speedup (section 5.2).
"""

from __future__ import annotations

from repro.core.config import PipelineConfig
from repro.memory import PAGE_BYTES, VersionedBuffer
from repro.workloads.base import ParallelPlan, Workload
from repro.workloads.common import check_access, store_words, touch_pages

__all__ = ["Gzip"]


class Gzip(Workload):
    name = "164.gzip"
    suite = "SPEC CINT 2000"
    description = "file compressor"
    paradigm = "Spec-DSWP+[S,DOALL,S]"
    speculation = ("MV",)

    #: Uncompressed block size moved into the parallel stage (bytes).
    block_bytes = 24_576
    #: Compressed block size moved out (bytes).
    output_bytes = 12_288
    #: Pages per input block (the file region each block covers).
    block_pages = block_bytes // PAGE_BYTES
    #: Cost to carve a block out of the input stream (cycles).
    read_cycles = 8_000
    #: Compression cost per block (cycles).
    compress_cycles = 900_000
    #: Cost to append a compressed block to the output file (cycles).
    write_cycles = 6_000
    #: Live versions of the block arrays (dynamic memory versioning).
    version_depth = 8
    #: Scratch words of compressed output written into the block-array
    #: version in the ``word``/``block`` access legs (the compressed
    #: block's contents, per-word vs. batched).
    output_words = 32

    def __init__(self, iterations=1400, misspec_iterations=None, access="paged"):
        super().__init__(iterations, misspec_iterations)
        self.access = check_access(access)

    def build(self, uva, owner, store):
        self.file_base = uva.malloc_page_aligned(
            owner, self.iterations * self.block_pages * PAGE_BYTES, read_only=True
        )
        self.block_versions = VersionedBuffer(
            uva, owner, nbytes=PAGE_BYTES, depth=self.version_depth, name="block"
        )
        self.output_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        # One representative word per input page (the page's "contents").
        for i in range(self.iterations):
            store.write(self.file_base + i * self.block_pages * PAGE_BYTES, i * 7 + 1)

    def _block_pages_of(self, iteration):
        first = iteration * self.block_pages
        return range(first, first + self.block_pages)

    def _compress(self, ctx, seed):
        ctx.compute(self.compress_cycles)
        # A toy "compression": a deterministic digest of the block seed.
        digest = (seed * 2654435761) & 0xFFFFFFFF
        return digest

    def _compressed_words(self, digest):
        """The compressed block's scratch contents (word/block legs)."""
        return [(digest + k) & 0xFFFFFFFF for k in range(self.output_words)]

    def _write_scratch(self, ctx, iteration, digest):
        """Write the compressed block into this MTX's version of the
        block array — per-word stores vs. one block store."""
        yield from store_words(
            ctx, self.block_versions.element(iteration, 0),
            self._compressed_words(digest), self.access, forward=False,
        )

    # -- sequential semantics ----------------------------------------------------------

    def sequential_body(self, ctx):
        i = ctx.iteration
        ctx.compute(self.read_cycles)
        seed = yield from touch_pages(ctx, self.file_base, self._block_pages_of(i))
        digest = self._compress(ctx, seed + i)
        if self.access != "paged":
            yield from self._write_scratch(ctx, i, digest)
        ctx.compute(self.write_cycles)
        yield from ctx.store(self.output_base + 8 * i, digest)

    # -- Spec-DSWP plan ------------------------------------------------------------------

    def _stage0(self, ctx):
        i = ctx.iteration
        ctx.compute(self.read_cycles)
        # The Y-branch speculates that starting the next block at a fixed
        # interval is safe; injected misspeculation models its failure.
        ctx.speculate(not self.injected_misspec(i), "Y-branch block boundary")
        # The reader stage owns the input stream (fread into its local
        # buffer), so the block reaches the parallel stage through the
        # pipeline queue — the bulk transfer that saturates this node's
        # NIC and bounds gzip's scalability.
        seed = i * 7 + 1
        yield from ctx.produce("block", seed + i, nbytes=self.block_bytes)

    def _stage1(self, ctx):
        i = ctx.iteration
        seed = ctx.consume("block")
        digest = self._compress(ctx, seed)
        # Scratch state lives in this MTX's version of the block array.
        if self.access != "paged":
            yield from self._write_scratch(ctx, i, digest)
        else:
            yield from ctx.store(self.block_versions.element(i, 0), digest, forward=False)
        yield from ctx.produce("compressed", digest, nbytes=self.output_bytes)

    def _stage2(self, ctx):
        i = ctx.iteration
        digest = ctx.consume("compressed")
        ctx.compute(self.write_cycles)
        yield from ctx.store(self.output_base + 8 * i, digest, forward=False,
                             nbytes=self.output_bytes)

    def dsmtx_plan(self):
        return ParallelPlan(
            self,
            scheme="dsmtx",
            pipeline=PipelineConfig.from_kinds(["S", "DOALL", "S"]),
            stage_bodies=[self._stage0, self._stage1, self._stage2],
            label="Spec-DSWP+[S,DOALL,S]",
        )

    # -- TLS plan --------------------------------------------------------------------------

    def _tls_body(self, ctx):
        i = ctx.iteration
        ctx.compute(self.read_cycles)
        ctx.speculate(not self.injected_misspec(i), "block boundary speculation")
        # Each worker reads its own block from the file via COA.
        seed = yield from touch_pages(ctx, self.file_base, self._block_pages_of(i))
        digest = self._compress(ctx, seed + i)
        ctx.compute(self.write_cycles)
        # The whole compressed block is part of this transaction's
        # write-set, shipped to validation and commit at full volume.
        yield from ctx.store(self.output_base + 8 * i, digest, forward=False,
                             nbytes=self.output_bytes)
        # Ordered in-place output: the file write position chains from
        # iteration to iteration (variable compressed size).
        position = yield from ctx.sync_recv("outpos")
        if position is None:
            position = 0
        yield from ctx.sync_send("outpos", position + self.output_bytes)

    def tls_plan(self):
        if self.access != "paged":
            from repro.errors import ConfigurationError
            raise ConfigurationError(
                "the word/block access legs exist for the DSMTX plan only"
            )
        return ParallelPlan(
            self,
            scheme="tls",
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[self._tls_body],
            label="TLS",
        )
