"""197.parser — English link-grammar parser (SPEC CINT 2000).

Paper parallelization: **Spec-DSWP+[S,DOALL,S]** with control-flow
speculation (error cases), memory value speculation (global data
structures speculated to be reset at the end of each iteration), and
memory versioning.

Two data movements dominate: an entire dictionary must be copied from
the commit unit on (first) access by each worker thread, and sentences
are transferred from the first stage to later stages.  The per-worker
dictionary replication makes communication bandwidth the bottleneck as
the number of threads grows beyond 32 — parser's speedup plateaus there
(section 5.2, Figure 5(a)).
"""

from __future__ import annotations

from repro.core.config import PipelineConfig
from repro.memory import PAGE_BYTES
from repro.workloads.base import ParallelPlan, Workload
from repro.workloads.common import mix, touch_pages

__all__ = ["Parser"]

#: Speculatively read global words per sentence (reset each iteration).
GLOBAL_WORDS = 4


class Parser(Workload):
    name = "197.parser"
    suite = "SPEC CINT 2000"
    description = "English parser"
    paradigm = "Spec-DSWP+[S,DOALL,S]"
    speculation = ("CFS", "MVS", "MV")

    #: Dictionary size in pages; every worker eventually copies it all.
    dictionary_pages = 32
    #: Dictionary pages consulted per sentence.
    pages_per_sentence = 2
    #: Sentence text size moved down the pipeline (bytes).
    sentence_bytes = 160
    #: Tokenization cost in stage 0 (cycles).
    read_cycles = 6_000
    #: Parse cost per sentence (cycles).
    parse_cycles = 380_000
    #: Output cost in stage 2 (cycles).
    emit_cycles = 4_000

    def __init__(self, iterations=2048, misspec_iterations=None):
        super().__init__(iterations, misspec_iterations)

    def build(self, uva, owner, store):
        self.dictionary_base = uva.malloc_page_aligned(
            owner, self.dictionary_pages * PAGE_BYTES, read_only=True
        )
        self.globals_base = uva.malloc_page_aligned(owner, PAGE_BYTES)
        self.results_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        for page in range(self.dictionary_pages):
            store.write(self.dictionary_base + page * PAGE_BYTES, 7 * page + 1)
        for word in range(GLOBAL_WORDS):
            store.write(self.globals_base + 8 * word, 0)

    def _dict_pages_of(self, iteration):
        first = int(mix(iteration, 9) * self.dictionary_pages)
        return [
            (first + k) % self.dictionary_pages
            for k in range(self.pages_per_sentence)
        ]

    def _parse(self, ctx, sentence_seed, speculative: bool):
        i = ctx.iteration
        lexical = yield from touch_pages(
            ctx, self.dictionary_base, self._dict_pages_of(i)
        )
        for word in range(GLOBAL_WORDS):
            if speculative:
                # The globals are speculated to be back at their reset
                # values; the loads are value-checked by try-commit.
                value = yield from ctx.load(self.globals_base + 8 * word, speculative=True)
            else:
                value = yield from ctx.load(self.globals_base + 8 * word)
            lexical += value
        if speculative and self.injected_misspec(i):
            # Injected memory-value misspeculation (parser's MVS type):
            # a global was *not* back at its reset value.  Detection
            # happens at the try-commit unit when the logged observation
            # fails the value check — delayed by log batching (sec 5.4).
            ctx.mispredict(self.globals_base, "stale-global")
        ctx.compute(self.parse_cycles)
        return (sentence_seed * 31 + lexical) & 0xFFFFFFFF

    # -- sequential semantics ------------------------------------------------------------

    def sequential_body(self, ctx):
        i = ctx.iteration
        ctx.compute(self.read_cycles)
        sentence_seed = i * 13 + 5
        linkage = yield from self._parse(ctx, sentence_seed, speculative=False)
        ctx.compute(self.emit_cycles)
        yield from ctx.store(self.results_base + 8 * i, linkage)

    # -- Spec-DSWP plan --------------------------------------------------------------------

    def _stage0(self, ctx):
        i = ctx.iteration
        ctx.compute(self.read_cycles)
        yield from ctx.produce("sentence", i * 13 + 5, nbytes=self.sentence_bytes)

    def _stage1(self, ctx):
        sentence_seed = ctx.consume("sentence")
        linkage = yield from self._parse(ctx, sentence_seed, speculative=True)
        yield from ctx.produce("linkage", linkage)

    def _stage2(self, ctx):
        linkage = ctx.consume("linkage")
        ctx.compute(self.emit_cycles)
        yield from ctx.store(self.results_base + 8 * ctx.iteration, linkage, forward=False)

    def dsmtx_plan(self):
        return ParallelPlan(
            self,
            scheme="dsmtx",
            pipeline=PipelineConfig.from_kinds(["S", "DOALL", "S"]),
            stage_bodies=[self._stage0, self._stage1, self._stage2],
            label="Spec-DSWP+[S,DOALL,S]",
        )

    # -- TLS plan ----------------------------------------------------------------------------------

    def _tls_body(self, ctx):
        i = ctx.iteration
        ctx.compute(self.read_cycles)
        sentence_seed = i * 13 + 5
        linkage = yield from self._parse(ctx, sentence_seed, speculative=True)
        ctx.compute(self.emit_cycles)
        yield from ctx.store(self.results_base + 8 * i, linkage, forward=False)
        # Output ordering chains iteration to iteration.
        position = yield from ctx.sync_recv("outpos")
        if position is None:
            position = 0
        yield from ctx.sync_send("outpos", position + self.sentence_bytes)

    def tls_plan(self):
        return ParallelPlan(
            self,
            scheme="tls",
            pipeline=PipelineConfig.from_kinds(["DOALL"]),
            stage_bodies=[self._tls_body],
            label="TLS",
        )
