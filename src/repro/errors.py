"""Exception hierarchy for the DSMTX reproduction.

All library exceptions derive from :class:`ReproError` so callers can catch
everything raised by this package with a single ``except`` clause.  The
sub-hierarchies mirror the package layout: simulation-kernel errors,
cluster/communication errors, memory-system errors, and runtime
(speculation) errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


# --------------------------------------------------------------------------
# Simulation kernel
# --------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event simulation kernel errors."""


class StopSimulation(SimulationError):
    """Internal control-flow signal used to stop :meth:`Environment.run`."""


class EventAlreadyTriggered(SimulationError):
    """An event was succeeded or failed more than once."""


class ProcessInterrupt(SimulationError):
    """Raised *inside* a process generator when another process interrupts it.

    The interrupting party may attach an arbitrary ``cause`` explaining the
    interruption (e.g. a misspeculation notice).
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting.

    The message names every live process and what it is blocked on (see
    :meth:`Environment.blocked_report`), which is what makes hangs
    introduced by dropped or misrouted messages debuggable.
    """


# --------------------------------------------------------------------------
# Cluster / communication substrate
# --------------------------------------------------------------------------


class ClusterError(ReproError):
    """Base class for cluster-substrate errors."""


class ChaosError(ClusterError):
    """An invalid fault plan or chaos-engine misuse (not an injected
    fault: injected faults manifest as the substrate misbehaving, never
    as exceptions in application code)."""


class ClusterFailedError(ClusterError):
    """The cluster lost capacity the runtime cannot recover from: the
    commit or try-commit node crashed, or a pipeline stage lost every
    replica.  Degraded-mode restart handles everything short of this."""


class NodeCrashed:
    """Interrupt *cause* attached when the chaos engine crashes a node.

    Delivered as ``ProcessInterrupt.cause`` into every process pinned to
    the node; unit main loops recognize it and terminate silently (a
    crashed core executes nothing, including exception handlers — the
    catch here is simulator bookkeeping, not modeled computation).
    """

    __slots__ = ("node",)

    def __init__(self, node: int) -> None:
        self.node = node

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NodeCrashed(node={self.node})"


class PlacementError(ClusterError):
    """A thread could not be placed on a core (e.g. too few cores)."""


class CampaignError(ReproError):
    """An invalid campaign or scenario specification (unparseable file,
    unknown field, out-of-range value, duplicate scenario name, ...).
    The message always names the offending field with its path inside
    the campaign document."""


class CampaignValidationWarning(UserWarning):
    """A campaign scenario is valid but will not do what it appears to
    say — e.g. fault-plan fields that are ignored because the scenario
    does not enable the failure-aware runtime.  The warning names every
    ignored field."""


class CommunicationError(ClusterError):
    """Base class for message-passing errors."""


class ChannelClosedError(CommunicationError):
    """A produce or consume was attempted on a closed channel."""


class ChannelFlushedError(CommunicationError):
    """A blocked consume was aborted because the channel was flushed.

    Raised inside consumers during misspeculation recovery, when all
    queues holding speculative state are discarded (paper section 4.3).
    """


# --------------------------------------------------------------------------
# Memory system
# --------------------------------------------------------------------------


class MemoryError_(ReproError):
    """Base class for memory-system errors (named to avoid shadowing the
    built-in :class:`MemoryError`)."""


class ProtectionFault(MemoryError_):
    """An access hit a protected (uninitialized) page.

    Under DSMTX this is not an error condition: the Copy-On-Access
    machinery catches it and fetches the page from the commit unit.
    """

    def __init__(self, address: int, page_number: int) -> None:
        super().__init__(f"protection fault at address {address:#x} (page {page_number})")
        self.address = address
        self.page_number = page_number


class UnmappedAddressError(MemoryError_):
    """An access referenced an address outside every allocated region."""


class AllocationError(MemoryError_):
    """The allocator could not satisfy a request."""


class OwnershipError(MemoryError_):
    """A UVA operation violated the region-ownership discipline."""


# --------------------------------------------------------------------------
# Speculation runtime
# --------------------------------------------------------------------------


class RuntimeError_(ReproError):
    """Base class for DSMTX runtime errors (named to avoid shadowing the
    built-in :class:`RuntimeError`)."""


class ConfigurationError(RuntimeError_):
    """An invalid system or pipeline configuration was supplied."""


class TransactionError(RuntimeError_):
    """An MTX life-cycle rule was violated (e.g. commit before end)."""


class MisspeculationDetected(RuntimeError_):
    """Raised inside a worker body to signal explicit misspeculation.

    Workload bodies raise this (or call ``mtx_misspec``) when a
    speculated condition — a control-flow assumption or a predicted
    value — turns out to be wrong at run time.
    """

    def __init__(self, iteration: int, reason: str = "") -> None:
        super().__init__(f"misspeculation at iteration {iteration}: {reason or 'unspecified'}")
        self.iteration = iteration
        self.reason = reason


class RecoveryError(RuntimeError_):
    """The rollback protocol itself failed (indicates a runtime bug)."""


class RecoveryAbort(RuntimeError_):
    """Internal signal: the unit must abandon speculative work and join
    the recovery barriers.  Raised out of MTX API calls when the system
    entered recovery mode, and caught by each unit's main loop."""


# --------------------------------------------------------------------------
# Parallelization paradigms
# --------------------------------------------------------------------------


class ParadigmError(ReproError):
    """Base class for parallelization-paradigm errors."""


class PartitionError(ParadigmError):
    """A loop could not be partitioned as requested (e.g. a dependence
    recurrence spans the requested stage boundary)."""


class PlanSyntaxError(ParadigmError):
    """A parallelization-plan string such as ``Spec-DSWP+[S,DOALL,S]``
    could not be parsed."""
