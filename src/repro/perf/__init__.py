"""Wall-clock performance harness.

Every other number in this reproduction is *simulated* time; this
package measures the one thing the simulator cannot see about itself —
how fast the pure-Python DES hot path executes on the host.  See
``docs/PERFORMANCE.md`` and the ``repro perf`` CLI subcommand.
"""

from repro.perf.harness import (
    BENCH_JSON_NAME,
    MATRIX,
    BenchResult,
    cmd_perf,
    render_comparison,
    run_matrix,
)

__all__ = [
    "BENCH_JSON_NAME",
    "MATRIX",
    "BenchResult",
    "cmd_perf",
    "render_comparison",
    "run_matrix",
]
